//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range, tuple, [`Just`], and regex-pattern (`&str`) strategies,
//! * [`collection::vec`] / [`collection::hash_set`] with size ranges,
//! * [`sample::Index`], `any::<T>()` for primitive types,
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Failing cases are reported with their case number and the generating
//! seed; there is **no shrinking** — a failure prints the panic from the
//! raw generated input. Determinism: every test function derives its seed
//! from its own name, so runs are reproducible without a persistence file.

#![warn(missing_docs)]

use std::fmt::Debug;

/// The deterministic RNG driving generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically.
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix(&mut sm);
        }
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy built
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical "arbitrary value" strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Index-into-unknown-length-collection support.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A deferred index: generated as a fraction, resolved against a
    /// concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// Strategy for `Vec<T>` of a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `HashSet<T>` of a size drawn from `size` (best-effort:
    /// duplicates may yield a smaller set, but at least the minimum is
    /// attempted with bounded retries).
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq + Debug,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generate hash sets of `element` with size in `size`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size: size.into() }
    }
}

/// Regex-subset string strategy: `&str` patterns generate matching strings.
pub mod string {
    use super::{Strategy, TestRng};

    /// One parsed pattern element with its repetition bounds.
    #[derive(Debug, Clone)]
    enum Node {
        /// Inclusive character ranges (a literal char is a 1-char range).
        Class(Vec<(char, char)>),
        /// `.` — any printable ASCII character plus a few non-ASCII probes.
        Any,
        /// A parenthesized subpattern.
        Group(Vec<(Node, u32, u32)>),
    }

    /// A compiled pattern.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        nodes: Vec<(Node, u32, u32)>,
    }

    fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars>) -> char {
        match chars.next().expect("dangling escape") {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            'x' => {
                let h1 = chars.next().expect("\\x needs two hex digits");
                let h2 = chars.next().expect("\\x needs two hex digits");
                let v = u32::from_str_radix(&format!("{h1}{h2}"), 16).expect("hex escape");
                char::from_u32(v).expect("valid char")
            }
            c => c, // \\, \., \[, \( …
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            let lo = match c {
                ']' => break,
                '\\' => parse_escape(chars),
                other => other,
            };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next(); // consume '-'
                if look.peek() != Some(&']') {
                    chars.next(); // the '-'
                    let hi = match chars.next().expect("unterminated range") {
                        '\\' => parse_escape(chars),
                        other => other,
                    };
                    ranges.push((lo, hi));
                    continue;
                }
            }
            ranges.push((lo, lo));
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((lo, "")) => (lo.parse().expect("min"), lo.parse::<u32>().unwrap() + 8),
                    Some((lo, hi)) => (lo.parse().expect("min"), hi.parse().expect("max")),
                    None => {
                        let n = body.parse().expect("count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse_sequence(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        in_group: bool,
    ) -> Vec<(Node, u32, u32)> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' && in_group {
                chars.next();
                return out;
            }
            chars.next();
            let node = match c {
                '[' => parse_class(chars),
                '(' => Node::Group(parse_sequence(chars, true)),
                '.' => Node::Any,
                '\\' => {
                    let l = parse_escape(chars);
                    Node::Class(vec![(l, l)])
                }
                other => Node::Class(vec![(other, other)]),
            };
            let (lo, hi) = parse_quantifier(chars);
            out.push((node, lo, hi));
        }
        assert!(!in_group, "unterminated group");
        out
    }

    /// Compile a pattern. Supported: character classes with ranges and
    /// `\t` / `\n` / `\xNN` escapes, `.`, groups, literals, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.
    pub fn compile(pattern: &str) -> RegexStrategy {
        let mut chars = pattern.chars().peekable();
        RegexStrategy { nodes: parse_sequence(&mut chars, false) }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Class(ranges) => {
                let pick = ranges[rng.below(ranges.len() as u64) as usize];
                let span = pick.1 as u32 - pick.0 as u32 + 1;
                let c = char::from_u32(pick.0 as u32 + rng.below(span as u64) as u32)
                    .unwrap_or(pick.0);
                out.push(c);
            }
            Node::Any => {
                // Mostly printable ASCII, occasionally a multi-byte char to
                // exercise UTF-8 handling.
                if rng.below(16) == 0 {
                    const PROBES: [char; 6] = ['é', 'ß', 'λ', '→', '中', '𝛼'];
                    out.push(PROBES[rng.below(PROBES.len() as u64) as usize]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap());
                }
            }
            Node::Group(nodes) => {
                for (inner, lo, hi) in nodes {
                    let reps = lo + rng.below((*hi - *lo + 1) as u64) as u32;
                    for _ in 0..reps {
                        emit(inner, rng, out);
                    }
                }
            }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (node, lo, hi) in &self.nodes {
                let reps = lo + rng.below((*hi - *lo + 1) as u64) as u32;
                for _ in 0..reps {
                    emit(node, rng, &mut out);
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            compile(self).generate(rng)
        }
    }
}

/// Runner configuration, settable per `proptest!` block via
/// `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// FNV-1a over a test name: the per-test base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The commonly-imported surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property; failure panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Define property tests. Each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::proptest!(@run config, $name, ($($pat in $strat),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::ProptestConfig::default();
                $crate::proptest!(@run config, $name, ($($pat in $strat),+), $body);
            }
        )*
    };
    (@run $config:ident, $name:ident, ($($pat:pat_param in $strat:expr),+), $body:block) => {
        let base = $crate::seed_of(stringify!($name));
        for case in 0..$config.cases as u64 {
            let mut rng = $crate::TestRng::seed_from_u64(base ^ (case.wrapping_mul(0x9E3779B97F4A7C15)));
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: property {} failed at case {case} (base seed {base:#x})",
                    stringify!($name)
                );
                std::panic::resume_unwind(payload);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c]{1,4}( [a-c]{1,4}){0,2}", &mut rng);
            assert!(!s.is_empty());
            for w in s.split(' ') {
                assert!((1..=4).contains(&w.len()), "{s:?}");
                assert!(w.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            }
            let t = crate::Strategy::generate(&"[\\x20-\\x7e\\t\\n]{0,50}", &mut rng);
            assert!(t.chars().all(|c| c == '\t' || c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn collection_sizes_respected() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u64..10, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let s = crate::Strategy::generate(
                &crate::collection::hash_set(0u64..1000, 5..=5),
                &mut rng,
            );
            assert!(s.len() <= 5 && !s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u64..10, 10u64..20), s in "[a-z]{1,3}") {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b), "{b}");
            prop_assert!(!s.is_empty());
            prop_assert_ne!(a, b);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn flat_map_and_index() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = crate::collection::vec(any::<crate::sample::Index>(), 1..4)
            .prop_flat_map(|v| (Just(v.len()), crate::collection::vec(0u64..5, 2..=2)));
        for _ in 0..50 {
            let (n, v) = crate::Strategy::generate(&strat, &mut rng);
            assert!((1..4).contains(&n));
            assert_eq!(v.len(), 2);
        }
        let idx = crate::Strategy::generate(&any::<crate::sample::Index>(), &mut rng);
        assert!(idx.index(7) < 7);
    }
}
