//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork/join parallelism. Since Rust 1.63 the standard library provides
//! [`std::thread::scope`] with equivalent semantics; this shim adapts the
//! crossbeam 0.8 call shape (a `Result`-returning `scope`, spawn closures
//! receiving the scope handle, `join` returning `thread::Result`) onto it.

#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;

    /// A scope handle; closures spawned on it may borrow from the caller's
    /// stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope handle so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            });
            ScopedJoinHandle { inner: handle, _marker: PhantomData }
        }
    }

    /// Create a scope. Unlike `std::thread::scope`, crossbeam's returns a
    /// `Result`: `Err` when a spawned (and un-joined) thread panicked. The
    /// std implementation propagates such panics instead, so this shim
    /// catches the scope-level unwind and reports it as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("join")
        })
        .expect("scope");
        assert_eq!(r, 42);
    }

    #[test]
    fn panicked_scope_is_err() {
        let r: Result<(), _> = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
