//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges.
//!
//! The generator core is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed. Streams do
//! **not** match upstream rand's ChaCha12-based `StdRng`, so any generated
//! world differs in its concrete draws (but not in its statistical shape)
//! from one produced with the real crate; see EXPERIMENTS.md.

#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution:
/// floats in `[0, 1)`, full-range integers, fair bools.
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`]. Mirrors rand's generic shape —
/// `T` is a type parameter so use-site constraints (e.g. indexing a slice
/// with the result) drive integer-literal inference, exactly as upstream.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as StandardSample>::standard_sample(self) < p
    }

    /// A value uniform over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the lone fixed point; splitmix cannot
            // produce four zero words from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = r.gen_range(-10i32..10);
            assert!((-10..10).contains(&x));
        }
    }
}
