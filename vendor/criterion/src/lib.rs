//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API slice the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on a simple wall-clock protocol: calibrate
//! the per-iteration count to a target sample duration, collect
//! `sample_size` samples, and report min / median / mean per iteration.
//! No statistics beyond that, no HTML reports, no comparison to saved
//! baselines; the numbers print to stdout, one line per benchmark.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `name` plus an optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark measurement driver passed to bench closures.
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration, one entry per sample
    sample_size: usize,
    target_sample: Duration,
}

impl Bencher {
    /// Measure `routine`, running it enough times per sample to fill the
    /// target sample duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up + calibrate: find an iteration count that takes roughly
        // the target sample duration.
        let mut iters = 1u64;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        let target = self.target_sample.as_nanos() as f64;
        let per_sample = ((target / per_iter_ns.max(1.0)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / per_sample as f64);
        }
    }
}

fn report(label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let fmt = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        }
    };
    println!(
        "{label:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        samples.len()
    );
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30, target_sample: Duration::from_millis(20) }
    }
}

impl Criterion {
    /// Parse harness CLI args (accepted and ignored — cargo bench passes
    /// `--bench` and optional filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_sample: self.target_sample,
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            target_sample: self.target_sample,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    target_sample: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_sample: self.target_sample,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, label), &mut b.samples);
    }

    /// Run a benchmark labeled by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Run a benchmark labeled by a plain string.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run(label, f);
        self
    }

    /// Close the group (prints nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion { sample_size: 5, target_sample: Duration::from_micros(200) };
        c.bench_function("fib10", |b| b.iter(|| fib(10)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(12), &12u64, |b, &n| {
            b.iter(|| fib(n))
        });
        g.bench_function("plain", |b| b.iter(|| fib(8)));
        g.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
