//! Golden-trace conformance suite: every pinned query's full `explain`
//! derivation — Eq. 1 ICs, Eq. 2 context frequencies, Eq. 4 path weight,
//! Eq. 5 product — is rendered to a canonical JSON document and compared
//! byte-for-byte against `tests/fixtures/golden_traces.json`.
//!
//! To regenerate after an *intentional* scoring change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q --test golden_traces
//! ```
//!
//! then review the diff of the fixture like any other code change. A
//! mismatch without an intentional change means the scoring pipeline's
//! numerics drifted — that is the bug this suite exists to catch.

mod common;

use std::fmt::Write as _;

use common::{context_labeled, fixture_config, fixture_relaxer, fixture_path, GOLDEN_QUERIES};
use medkb::prelude::*;

const K: usize = 5;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render one query's relaxation as a deterministic JSON object. Floats use
/// `{:?}` (shortest round-trip) so the text pins the exact f64 bits.
fn trace_query(r: &QueryRelaxer, term: &str, label: Option<&str>) -> String {
    let ctx = label.map(|l| context_labeled(r, l));
    let res = r.relax(term, ctx, K).unwrap();
    let name = |c: ExtConceptId| escape(r.ingested().ekg.name(c));
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"term\": \"{}\",", escape(term));
    match label {
        Some(l) => {
            let _ = writeln!(out, "      \"context\": \"{}\",", escape(l));
        }
        None => out.push_str("      \"context\": null,\n"),
    }
    let _ = writeln!(out, "      \"k\": {K},");
    let _ = writeln!(out, "      \"radius_used\": {},", res.radius_used);
    out.push_str("      \"answers\": [");
    for (i, a) in res.answers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        let _ = writeln!(out, "          \"concept\": \"{}\",", name(a.concept));
        let _ = writeln!(out, "          \"score\": {:?},", a.score);
        let _ = writeln!(out, "          \"hops\": {},", a.hops);
        let _ = writeln!(out, "          \"instances\": {},", a.instances.len());
        let ex = a.explain.as_ref().expect("explain enabled in fixture config");
        out.push_str("          \"explain\": {\n");
        let _ = writeln!(out, "            \"ic_query\": {:?},", ex.ic_query);
        let _ = writeln!(out, "            \"ic_candidate\": {:?},", ex.ic_candidate);
        let _ = writeln!(out, "            \"ic_lcs\": {:?},", ex.ic_lcs);
        let _ = writeln!(out, "            \"freq_query\": {:?},", ex.freq_query);
        let _ = writeln!(out, "            \"freq_candidate\": {:?},", ex.freq_candidate);
        let lcs: Vec<String> = ex.lcs.iter().map(|&c| format!("\"{}\"", name(c))).collect();
        let _ = writeln!(out, "            \"lcs\": [{}],", lcs.join(", "));
        let _ = writeln!(out, "            \"generalizations\": {},", ex.generalizations);
        let _ = writeln!(out, "            \"specializations\": {},", ex.specializations);
        let _ = writeln!(out, "            \"sim_ic\": {:?},", ex.sim_ic);
        let _ = writeln!(out, "            \"path_weight\": {:?},", ex.path_weight);
        let _ = writeln!(out, "            \"score\": {:?}", ex.score);
        out.push_str("          }\n");
        out.push_str("        }");
    }
    if res.answers.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }");
    out
}

fn render_traces() -> String {
    let mut config = fixture_config();
    config.obs = ObsConfig { metrics: None, explain: true };
    let r = fixture_relaxer(config);
    let mut out = String::from("{\n  \"queries\": [\n");
    for (i, (term, label)) in GOLDEN_QUERIES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&trace_query(&r, term, *label));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[test]
fn golden_traces_match_pinned_fixture() {
    let rendered = render_traces();
    let path = fixture_path("golden_traces.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden_traces.json");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("read golden_traces.json (run with UPDATE_GOLDEN=1 to create it)");
    assert!(
        rendered == golden,
        "golden trace drift: scoring derivation no longer matches \
         tests/fixtures/golden_traces.json.\nIf the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the fixture diff.\n\
         rendered {} bytes, golden {} bytes",
        rendered.len(),
        golden.len()
    );
}

/// The trace itself is deterministic: two independently built worlds render
/// identical documents (guards against iteration-order leaks into traces).
#[test]
fn golden_traces_are_deterministic_across_builds() {
    assert_eq!(render_traces(), render_traces());
}

/// Every explain block must be internally consistent with Eq. 5:
/// score = sim_ic × path_weight, and the answer's reported score matches.
#[test]
fn explain_blocks_satisfy_eq5_product() {
    let mut config = fixture_config();
    config.obs = ObsConfig { metrics: None, explain: true };
    let r = fixture_relaxer(config);
    let mut checked = 0usize;
    for (term, label) in GOLDEN_QUERIES {
        let ctx = label.map(|l| context_labeled(&r, l));
        let res = r.relax(term, ctx, K).unwrap();
        for a in &res.answers {
            let ex = a.explain.as_ref().expect("explain enabled");
            assert_eq!(ex.sim_ic * ex.path_weight, ex.score, "{term}: Eq. 5 product");
            assert_eq!(ex.score, a.score, "{term}: answer score != explain score");
            assert!(
                ex.generalizations + ex.specializations >= a.hops,
                "{term}: LCS path ({} up + {} down) shorter than the \
                 customized-graph distance {}",
                ex.generalizations,
                ex.specializations,
                a.hops
            );
            assert!(!ex.lcs.is_empty(), "{term}: empty LCS set");
            checked += 1;
        }
    }
    assert!(checked >= 30, "expected a substantive answer pool, got {checked}");
}
