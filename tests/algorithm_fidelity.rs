//! Cross-crate checks that the implementation follows Algorithms 1 and 2
//! line by line.

use std::collections::HashSet;

use medkb::corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
use medkb::prelude::*;

struct Fixture {
    world: MedWorld,
    counts: MentionCounts,
    config: RelaxConfig,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let world = MedWorld::generate(&WorldConfig::tiny(seed));
        let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
            .generate(&CorpusConfig::tiny(seed ^ 0x55));
        let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        Self { world, counts, config }
    }

    fn ingest(&self) -> IngestOutput {
        ingest(
            &self.world.kb,
            self.world.terminology.ekg.clone(),
            &self.counts,
            None,
            &self.config,
        )
        .expect("ingest succeeds")
    }
}

#[test]
fn algorithm1_contexts_are_the_relationship_set() {
    let f = Fixture::new(201);
    let out = f.ingest();
    // Lines 1–4: one context per relationship, carrying domain and range.
    assert_eq!(out.contexts.len(), f.world.kb.ontology().relationship_count());
    for ctx in &out.contexts {
        let rel = f.world.kb.ontology().relationship(ctx.relationship);
        assert_eq!(ctx.domain, rel.domain);
        assert_eq!(ctx.range, rel.range);
    }
}

#[test]
fn algorithm1_fec_is_exactly_the_mapped_concepts() {
    let f = Fixture::new(202);
    let out = f.ingest();
    // Lines 5–11: FEC = { A : some instance maps to A }.
    let mapped: HashSet<_> = out.mappings.iter().map(|(_, c)| c).collect();
    assert_eq!(out.flagged, mapped);
    // Reverse index is consistent.
    for (inst, concept) in out.mappings.iter() {
        assert!(out.instances(concept).contains(&inst));
    }
}

#[test]
fn algorithm1_shortcuts_satisfy_all_three_conditions() {
    let f = Fixture::new(203);
    let out = f.ingest();
    let original = &f.world.terminology.ekg;
    let mut checked = 0;
    for a in out.ekg.concepts() {
        for edge in out.ekg.parents(a) {
            if !edge.shortcut {
                continue;
            }
            checked += 1;
            let b = edge.to;
            // (1) not directly connected in the original graph,
            assert!(
                !original.parents(a).iter().any(|e| e.to == b),
                "{} -> {} was already a direct edge",
                original.name(a),
                original.name(b)
            );
            // (2) A is a descendant of B,
            assert!(original.is_ancestor(b, a));
            // (3) at least one endpoint is flagged,
            assert!(out.flagged.contains(&a) || out.flagged.contains(&b));
            // and the edge carries the original shortest-path distance.
            assert_eq!(
                original.distance_to_ancestor(a, b),
                Some(edge.weight),
                "weight must be |shortestPath(A, B)|"
            );
        }
    }
    assert!(checked > 0, "the customization should add edges");
    assert_eq!(checked, out.shortcuts_added);
}

#[test]
fn algorithm1_frequencies_monotone_up_native_edges() {
    let f = Fixture::new(204);
    let out = f.ingest();
    // Eq. 2: a parent's rolled-up frequency includes each native child's.
    for c in out.ekg.concepts() {
        for p in out.ekg.native_parents(c) {
            for tag in [ContextTag::Treatment, ContextTag::Risk] {
                assert!(
                    out.freqs.freq(p, tag) >= out.freqs.freq(c, tag) - 1e-12,
                    "freq({}) < freq(child {}) in {tag:?}",
                    out.ekg.name(p),
                    out.ekg.name(c)
                );
            }
        }
    }
}

#[test]
fn algorithm2_results_are_flagged_within_radius_sorted() {
    let f = Fixture::new(205);
    let out = f.ingest();
    let relaxer = QueryRelaxer::new(out, f.config.clone());
    let ctx = f.world.treatment_context();
    let queries: Vec<ExtConceptId> =
        relaxer.ingested().flagged.iter().copied().take(12).collect();
    for q in queries {
        let res = relaxer.relax_concept(q, Some(ctx), 10).expect("relax");
        let reachable: HashSet<ExtConceptId> = relaxer
            .ingested()
            .ekg
            .neighborhood(q, res.radius_used)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        let mut last = f64::INFINITY;
        for ans in &res.answers {
            assert!(relaxer.ingested().flagged.contains(&ans.concept), "unflagged result");
            assert!(reachable.contains(&ans.concept), "outside the search radius");
            assert_ne!(ans.concept, q, "the query concept is not an answer");
            assert!(ans.score <= last + 1e-12, "not sorted by score");
            assert!(!ans.instances.is_empty(), "answers carry their instances");
            last = ans.score;
        }
    }
}

#[test]
fn algorithm2_k_bounds_and_dynamic_radius() {
    let f = Fixture::new(206);
    let out = f.ingest();
    let relaxer = QueryRelaxer::new(out, f.config.clone());
    let q = *relaxer.ingested().flagged.iter().next().unwrap();
    let small = relaxer.relax_concept(q, None, 2).unwrap();
    let large = relaxer.relax_concept(q, None, 20).unwrap();
    assert!(small.instances().len() <= large.instances().len());
    // The loop stops adding whole answers once k instances are reached:
    // dropping the last answer must leave fewer than k instances.
    if small.answers.len() > 1 {
        let without_last: usize =
            small.answers[..small.answers.len() - 1].iter().map(|a| a.instances.len()).sum();
        assert!(without_last < 2);
    }
}

#[test]
fn relaxation_is_deterministic() {
    let f = Fixture::new(207);
    let relaxer = QueryRelaxer::new(f.ingest(), f.config.clone());
    let relaxer2 = QueryRelaxer::new(f.ingest(), f.config.clone());
    let ctx = f.world.risk_context();
    for q in relaxer.ingested().flagged.iter().copied().take(8) {
        let a = relaxer.relax_concept(q, Some(ctx), 10).unwrap();
        let b = relaxer2.relax_concept(q, Some(ctx), 10).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn ablation_flags_change_rankings() {
    let f = Fixture::new(208);
    let out = f.ingest();
    let base = QueryRelaxer::new(out.clone(), f.config.clone());
    let no_path = QueryRelaxer::new(
        out.clone(),
        RelaxConfig { use_path_weight: false, ..f.config.clone() },
    );
    let heavy_gen =
        QueryRelaxer::new(out.clone(), RelaxConfig { w_gen: 0.5, ..f.config.clone() });
    let ctx = f.world.treatment_context();
    let mut any_diff_path = false;
    let mut any_diff_wgen = false;
    for q in out.flagged.iter().copied().take(20) {
        let a = base.relax_concept(q, Some(ctx), 10).unwrap().concepts();
        let b = no_path.relax_concept(q, Some(ctx), 10).unwrap().concepts();
        let c = heavy_gen.relax_concept(q, Some(ctx), 10).unwrap().concepts();
        any_diff_path |= a != b;
        any_diff_wgen |= a != c;
    }
    assert!(any_diff_path, "disabling Eq. 4 must change some ranking");
    assert!(any_diff_wgen, "w_gen = 0.5 must change some ranking");
}
