//! Integration of the relaxation method with the two NLI systems (§6).

use medkb::eval::pipeline::{EvalConfig, EvalStack};
use medkb::nli::nlq::Evidence;
use medkb::nli::trainset::generate_training_queries;
use medkb::nli::Response;
use medkb::prelude::*;

fn stack() -> EvalStack {
    EvalStack::build(EvalConfig::tiny(401)).expect("stack builds")
}

fn engine(stack: &EvalStack, use_qr: bool) -> ConversationEngine {
    let queries = generate_training_queries(
        &stack.world.kb,
        &stack.world.contexts,
        |c| stack.world.tag_of(c),
        6,
        402,
    );
    let classifier = IntentClassifier::train(&queries);
    let extractor = EntityExtractor::build(&stack.world.kb);
    let relaxer = stack.relaxer(stack.config.relax.clone());
    let mut e =
        ConversationEngine::new(stack.world.kb.clone(), relaxer, classifier, extractor);
    e.use_relaxation = use_qr;
    e
}

#[test]
fn conversation_answers_known_questions() {
    let s = stack();
    let mut e = engine(&s, true);
    let rel = s.world.kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
    let target = s
        .world
        .kb
        .instances()
        .map(|(id, _)| id)
        .find(|&id| {
            !s.world.kb.subjects(id, rel).is_empty() && s.ingested.mappings.contains_key(id)
        })
        .expect("treated mapped finding");
    match e.handle(&format!("what drugs treat {}", s.world.kb.name(target))) {
        Response::Answer { results, entity, .. } => {
            assert_eq!(entity, target);
            assert!(!results.is_empty());
        }
        other => panic!("expected an answer, got {other:?}"),
    }
}

#[test]
fn conversation_repair_beats_dont_understand() {
    let s = stack();
    let extractor = EntityExtractor::build(&s.world.kb);
    let unknown = s
        .world
        .unrepresented_findings()
        .into_iter()
        .filter(|&c| s.world.terminology.ekg.depth(c) >= 3)
        .map(|c| s.world.terminology.ekg.name(c).to_string())
        .find(|n| extractor.extract(n).known.is_empty())
        .expect("unknown term");
    let q = format!("what drugs treat {unknown}");

    let mut with_qr = engine(&s, true);
    let mut without = engine(&s, false);
    assert!(
        matches!(with_qr.handle(&q), Response::Repair { .. }),
        "QR system should repair"
    );
    assert!(
        matches!(without.handle(&q), Response::DontUnderstand { .. }),
        "no-QR system cannot"
    );
}

#[test]
fn conversation_state_survives_topic_switches() {
    let s = stack();
    let mut e = engine(&s, true);
    let rel = s.world.kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
    let targets: Vec<InstanceId> = s
        .world
        .kb
        .instances()
        .map(|(id, _)| id)
        .filter(|&id| !s.world.kb.subjects(id, rel).is_empty())
        .take(3)
        .collect();
    assert!(targets.len() >= 2, "need at least two treated findings");
    let first = e.handle(&format!("what drugs treat {}", s.world.kb.name(targets[0])));
    let ctx = match first {
        Response::Answer { context, .. } => context,
        other => panic!("{other:?}"),
    };
    // A bare follow-up keeps the context.
    match e.handle(&format!("what about {}", s.world.kb.name(targets[1]))) {
        Response::Answer { context, entity, .. } => {
            assert_eq!(context, ctx);
            assert_eq!(entity, targets[1]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn nlq_pipeline_interprets_and_executes() {
    let s = stack();
    let relaxer = s.relaxer(s.config.relax.clone());
    let engine = NlqEngine::new(s.world.kb.clone(), relaxer);
    let rel = s.world.kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
    let r_treat = s.world.kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
    let target = s
        .world
        .kb
        .instances()
        .map(|(id, _)| id)
        .find(|&id| !s.world.kb.subjects(id, rel).is_empty())
        .expect("a treated finding");
    let query = format!("which drug treats {}", s.world.kb.name(target));
    let interps = engine.interpret(&query);
    assert!(!interps.is_empty());
    // The top interpretation includes the treat relationship and a data
    // value for the finding.
    let top = &interps[0];
    assert!(
        top.selection
            .iter()
            .any(|(_, e)| matches!(e, Evidence::DataValue { instance, .. } if *instance == target)),
        "{top:?}"
    );
    let results = engine.execute(top);
    // The expected drugs are reachable.
    let expected: Vec<InstanceId> = s
        .world
        .kb
        .subjects(target, rel)
        .into_iter()
        .flat_map(|ind| s.world.kb.subjects(ind, r_treat))
        .collect();
    assert!(expected.iter().any(|d| results.contains(d)), "{results:?} vs {expected:?}");
}

#[test]
fn nlq_relaxes_unknown_spans_into_evidence() {
    let s = stack();
    let relaxer = s.relaxer(s.config.relax.clone());
    let engine = NlqEngine::new(s.world.kb.clone(), relaxer);
    let extractor = EntityExtractor::build(&s.world.kb);
    let unknown = s
        .world
        .unrepresented_findings()
        .into_iter()
        .filter(|&c| s.world.terminology.ekg.depth(c) >= 3)
        .map(|c| s.world.terminology.ekg.name(c).to_string())
        .find(|n| extractor.extract(n).known.is_empty())
        .expect("unknown term");
    let evidences = engine.evidences(&format!("which drug treats {unknown}"));
    let relaxed = evidences
        .iter()
        .find(|e| unknown.contains(&e.span) || e.span.contains(&unknown));
    let Some(relaxed) = relaxed else {
        // The relaxer may legitimately find nothing nearby for some terms;
        // the pipeline must still produce the metadata evidence.
        assert!(!evidences.is_empty());
        return;
    };
    assert!(matches!(relaxed.candidates[0], Evidence::DataValue { .. }));
}
