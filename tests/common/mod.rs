//! Shared fixture world for the conformance suites: the paper fragment as
//! the external knowledge source, a miniature KB flagging the fragment's
//! instance-backed concepts, and mention counts read from the committed
//! `tests/fixtures/fragment_mentions.tsv` — everything pinned so traces
//! and metric totals are reproducible byte for byte.

use std::collections::HashMap;
use std::path::PathBuf;

use medkb::prelude::*;
use medkb::snomed::figures::paper_fragment;
use medkb::snomed::oracle::N_TAGS;

/// Repo-relative path into `tests/fixtures/`.
pub fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Parse `fragment_mentions.tsv` into per-tag direct counts.
///
/// The fixture is committed alongside the tests, so malformed rows are a
/// repo defect — panic, but with the 1-based line number and the offending
/// content so the bad edit is findable without a debugger.
pub fn fixture_mentions() -> MentionCounts {
    let f = paper_fragment();
    let doc = std::fs::read_to_string(fixture_path("fragment_mentions.tsv"))
        .expect("read fragment_mentions.tsv");
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    for (lineno, line) in doc.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| -> ! {
            panic!("fragment_mentions.tsv line {}: {what} in {line:?}", lineno + 1)
        };
        let mut cols = line.split('\t');
        let (Some(name), Some(treat), Some(risk)) = (cols.next(), cols.next(), cols.next())
        else {
            bad("expected 3 tab fields")
        };
        let treat: u64 = treat.parse().unwrap_or_else(|_| bad("bad treatment count"));
        let risk: u64 = risk.parse().unwrap_or_else(|_| bad("bad risk count"));
        let mut row = [0u64; N_TAGS];
        row[ContextTag::Treatment.index()] = treat;
        row[ContextTag::Risk.index()] = risk;
        assert!(
            direct.insert(f.concept(name), row).is_none(),
            "fragment_mentions.tsv line {}: duplicate fixture row for {name:?}",
            lineno + 1
        );
    }
    MentionCounts::from_direct(direct, HashMap::new(), 200)
}

/// Build the fixture relaxer. `config` lets callers toggle observability
/// (metrics registry, explain) on an otherwise-fixed world.
pub fn fixture_relaxer(config: RelaxConfig) -> QueryRelaxer {
    let f = paper_fragment();
    let mut ob = OntologyBuilder::new();
    let finding = ob.concept("Finding");
    let indication = ob.concept("Indication");
    let risk = ob.concept("Risk");
    let drug = ob.concept("Drug");
    ob.relationship("treat", drug, indication);
    ob.relationship("cause", drug, risk);
    ob.relationship("hasFinding", indication, finding);
    ob.relationship("hasFinding", risk, finding);
    let onto = ob.build().unwrap();
    let mut kb = KbBuilder::new(onto);
    let fc = kb.ontology().lookup_concept("Finding").unwrap();
    for name in &f.flagged {
        kb.instance(name, fc);
    }
    let kb = kb.build().unwrap();
    let counts = fixture_mentions();
    let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
    QueryRelaxer::new(out, config)
}

/// The fixture configuration: exact mapping (the fixture KB names match the
/// fragment verbatim), everything else at paper defaults.
pub fn fixture_config() -> RelaxConfig {
    RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() }
}

/// Resolve a generated context by its label (e.g.
/// `"Indication-hasFinding-Finding"`).
pub fn context_labeled(r: &QueryRelaxer, label: &str) -> ContextId {
    r.ingested()
        .contexts
        .iter()
        .find(|c| c.label == label)
        .unwrap_or_else(|| panic!("fixture context {label:?} missing"))
        .id
}

/// The pinned conformance queries: term, context label (None = no context).
/// Chosen to cover both Figure 4 contexts, the no-context fallback, the
/// dynamic-radius growth path (pertussis), modifier-free resolution of a
/// term absent from the KB (pyelectasia), and the hypothermia context trap.
pub const GOLDEN_QUERIES: &[(&str, Option<&str>)] = &[
    ("pyelectasia", Some("Indication-hasFinding-Finding")),
    ("fever", Some("Indication-hasFinding-Finding")),
    ("fever", Some("Risk-hasFinding-Finding")),
    ("headache", Some("Indication-hasFinding-Finding")),
    ("headache", None),
    ("psychogenic fever", Some("Indication-hasFinding-Finding")),
    ("psychogenic fever", Some("Risk-hasFinding-Finding")),
    ("pneumonia", Some("Indication-hasFinding-Finding")),
    ("pertussis", None),
    ("kidney disease", Some("Risk-hasFinding-Finding")),
    ("bronchitis", None),
];
