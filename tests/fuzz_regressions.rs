//! Minimized regression tests for bugs surfaced by the differential
//! fuzzing harness (`crates/fuzz`) and the loader-hardening pass.
//!
//! Each test loads a fixture from `tests/fixtures/fuzz_regressions/` and
//! pins the exact validation behavior: every defect is reported (not just
//! the first), with its document and 1-based line number. See the README
//! in the fixture directory for the bug each file was minimized from.

use medkb::corpus::{Corpus, Document, MentionCounts, Sentence};
use medkb::snomed::ContextTag;
use medkb::text::{normalize, tokenize};
use medkb::types::MedKbError;

const ISTANBUL_NAMES: &str = include_str!("fixtures/fuzz_regressions/istanbul_names.txt");
const DUP_NAMES: &str = include_str!("fixtures/fuzz_regressions/duplicate_concept_names.tsv");
const BAD_CONCEPTS: &str = include_str!("fixtures/fuzz_regressions/multi_defect_concepts.tsv");
const BAD_RELS: &str = include_str!("fixtures/fuzz_regressions/multi_defect_rels.tsv");
const BAD_INSTANCES: &str =
    include_str!("fixtures/fuzz_regressions/kb_multi_defect_instances.tsv");
const BAD_TRIPLES: &str = include_str!("fixtures/fuzz_regressions/kb_multi_defect_triples.tsv");
const BAD_VECTORS: &str = include_str!("fixtures/fuzz_regressions/embed_bad_vectors.tsv");

/// Unpack a `Validation` error into its `(document, line)` pairs.
fn defect_lines(err: MedKbError) -> Vec<(&'static str, Option<usize>)> {
    match err {
        MedKbError::Validation(report) => {
            report.defects().iter().map(|d| (d.document, d.line)).collect()
        }
        other => panic!("expected validation error, got {other:?}"),
    }
}

#[test]
fn rf2_rejects_duplicate_primary_names() {
    // Two raw ids with the same primary name would silently alias onto one
    // interned concept; the loader must refuse instead.
    let err = medkb::snomed::rf2::from_tsv(DUP_NAMES, "").unwrap_err();
    assert_eq!(defect_lines(err), vec![("concepts", Some(2))]);
}

#[test]
fn rf2_reports_every_defect_across_both_documents() {
    // concepts: line 1 bad id, line 2 too few fields, line 4 duplicate raw
    // id (line 3 is the one clean record). relationships: line 1 bad child
    // id, line 2 unknown concept id on both sides.
    let err = medkb::snomed::rf2::from_tsv(BAD_CONCEPTS, BAD_RELS).unwrap_err();
    assert_eq!(
        defect_lines(err),
        vec![
            ("concepts", Some(1)),
            ("concepts", Some(2)),
            ("concepts", Some(4)),
            ("relationships", Some(1)),
            ("relationships", Some(2)),
            ("relationships", Some(2)),
        ]
    );
}

#[test]
fn ontology_loader_rejects_duplicate_names_too() {
    // Same aliasing hazard as rf2: the ontology builder interns by name.
    let err = medkb::ontology::io::from_tsv(DUP_NAMES, "", "").unwrap_err();
    assert_eq!(defect_lines(err), vec![("ontology concepts", Some(2))]);
}

#[test]
fn kb_loader_reports_every_defect_with_line_numbers() {
    let mut b = medkb::ontology::OntologyBuilder::new();
    let drug = b.concept("Drug");
    let finding = b.concept("Finding");
    b.relationship("treats", drug, finding);
    let ontology = b.build().unwrap();
    // instances: line 1 bad id, line 2 unknown concept, line 4 duplicate
    // raw id. triples: line 1 unknown instance, line 2 unknown relationship.
    let err = medkb::kb::io::from_tsv(ontology, BAD_INSTANCES, BAD_TRIPLES).unwrap_err();
    assert_eq!(
        defect_lines(err),
        vec![
            ("instances", Some(1)),
            ("instances", Some(2)),
            ("instances", Some(4)),
            ("triples", Some(1)),
            ("triples", Some(2)),
        ]
    );
}

#[test]
fn word_vector_loader_reports_every_bad_row() {
    // line 3 bad count, line 4 wrong arity, line 5 NaN component (which
    // would poison every cosine downstream), line 6 duplicate word.
    let err = medkb::embed::WordVectors::read_tsv(BAD_VECTORS).unwrap_err();
    assert_eq!(
        defect_lines(err),
        vec![
            ("word vectors", Some(3)),
            ("word vectors", Some(4)),
            ("word vectors", Some(5)),
            ("word vectors", Some(6)),
        ]
    );
}

#[test]
fn multichar_lowercase_names_survive_the_whole_text_stack() {
    // Fuzz regression (seed 33): `İ` lowercases to `i` + U+0307 combining
    // dot above. normalize/tokenize drop the non-alphanumeric expansion
    // char, and the optimized counting trie must agree — its inline
    // lowering used to keep the mark, miss the vocabulary, and silently
    // drop every mention of the concept.
    for name in ISTANBUL_NAMES.lines().filter(|l| !l.is_empty()) {
        let once = normalize(name);
        assert_eq!(once, normalize(&once), "normalize must be idempotent on {name:?}");

        let mut b = medkb::ekg::EkgBuilder::new();
        let root = b.concept("root");
        let c = b.concept(name);
        b.is_a(c, root);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        let tokens = tokenize(&format!("{name} reported"))
            .into_iter()
            .map(|t| corpus.vocab.intern(&t))
            .collect();
        let s = Sentence { tag: ContextTag::Treatment, tokens };
        corpus.docs.push(Document { sentences: vec![s] });
        let fast = MentionCounts::count(&corpus, &ekg);
        assert_eq!(fast, MentionCounts::count_reference(&corpus, &ekg), "name {name:?}");
        assert_eq!(fast.direct_total(c), 1, "name {name:?}");
    }
}
