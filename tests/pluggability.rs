//! The external knowledge source is pluggable (§1 names SNOMED CT, UMLS
//! and the Gene Ontology): the whole two-phase pipeline must run unchanged
//! over a GO-shaped terminology with a gene-annotation KB.

use std::collections::HashMap;

use medkb::prelude::*;
use medkb::snomed::go::{generate, GoConfig};

/// A tiny gene-annotation world: genes annotated with GO terms.
fn go_world() -> (Kb, medkb::ekg::Ekg) {
    let terminology = generate(&GoConfig { terms: 600, ..GoConfig::default() });

    let mut ob = OntologyBuilder::new();
    let gene = ob.concept("Gene");
    let annotation = ob.concept("Annotation");
    let term = ob.concept("GoTerm");
    ob.relationship("annotatedWith", gene, annotation);
    ob.relationship("hasTerm", annotation, term);
    let ontology = ob.build().unwrap();

    let mut kb = KbBuilder::new(ontology);
    let onto = kb.ontology();
    let (gc, ac, tc) = (
        onto.lookup_concept("Gene").unwrap(),
        onto.lookup_concept("Annotation").unwrap(),
        onto.lookup_concept("GoTerm").unwrap(),
    );
    let r_ann = kb.ontology().lookup_relationship("Gene-annotatedWith-Annotation").unwrap();
    let r_term = kb.ontology().lookup_relationship("Annotation-hasTerm-GoTerm").unwrap();

    // Every third GO term below depth 2 becomes a KB instance; a few genes
    // annotate them.
    let mut term_instances = Vec::new();
    for (i, c) in terminology.concepts().enumerate() {
        if terminology.depth(c) >= 2 && i % 3 == 0 {
            term_instances.push(kb.instance(terminology.name(c), tc));
        }
    }
    assert!(term_instances.len() > 20, "enough annotated terms");
    for g in 0..12 {
        let gene_row = kb.instance(&format!("gene brca{g}"), gc);
        for k in 0..3 {
            let ann = kb.instance(&format!("annotation {g}.{k}"), ac);
            let target = term_instances[(g * 7 + k * 13) % term_instances.len()];
            kb.triple(gene_row, r_ann, ann);
            kb.triple(ann, r_term, target);
        }
    }
    (kb.build().unwrap(), terminology)
}

#[test]
fn full_pipeline_runs_over_a_go_terminology() {
    let (kb, terminology) = go_world();
    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let ingested = ingest(&kb, terminology.clone(), &counts, None, &config).unwrap();

    // Algorithm 1 artifacts exist over the foreign terminology.
    assert_eq!(ingested.contexts.len(), 2);
    assert!(!ingested.flagged.is_empty());
    assert!(ingested.shortcuts_added > 0, "GO's multi-parent DAG densifies too");

    // Algorithm 2: relax an *unannotated* GO term to annotated relatives.
    let relaxer = QueryRelaxer::new(ingested, config);
    let query = terminology
        .concepts()
        .find(|&c| {
            terminology.depth(c) >= 2
                && !relaxer.ingested().flagged.contains(&c)
                && terminology
                    .neighborhood(c, 4)
                    .iter()
                    .any(|(n, _)| relaxer.ingested().flagged.contains(n))
        })
        .expect("an unannotated term near annotated ones exists");
    let res = relaxer
        .relax(terminology.name(query), None, 5)
        .expect("relaxation succeeds over GO");
    assert!(!res.answers.is_empty());
    for a in &res.answers {
        assert!(relaxer.ingested().flagged.contains(&a.concept));
        assert!((0.0..=1.0).contains(&a.score));
    }
}

#[test]
fn go_edit_mapping_handles_go_style_typos() {
    let (kb, terminology) = go_world();
    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config =
        RelaxConfig { mapping: MappingMethod::edit_tau2(), ..RelaxConfig::default() };
    let ingested = ingest(&kb, terminology.clone(), &counts, None, &config).unwrap();
    let relaxer = QueryRelaxer::new(ingested, config);
    // Typo in a real GO-like term name still resolves.
    let sample = relaxer
        .ingested()
        .flagged
        .iter()
        .map(|&c| relaxer.ingested().ekg.name(c).to_string())
        .find(|n| n.len() > 10)
        .expect("a long term name");
    let mut typoed = sample.clone();
    typoed.remove(sample.len() / 2);
    let resolved = relaxer.resolve_term(&typoed).expect("edit matcher bridges the typo");
    assert_eq!(relaxer.ingested().ekg.name(resolved), sample);
}
