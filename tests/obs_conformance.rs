//! Observability conformance: the metrics layer must be (a) deterministic —
//! the stable snapshot of a fixed-seed ingest plus a 32-query batch is
//! byte-identical across independent runs at the same thread count — and
//! (b) inert — turning instrumentation or `explain` on changes no ranking,
//! score bit, or radius decision anywhere in the pipeline.

mod common;

use std::sync::Arc;

use common::{context_labeled, fixture_config, fixture_relaxer, GOLDEN_QUERIES};
use medkb::obs::validate_json;
use medkb::prelude::*;

const K: usize = 5;
const BATCH: usize = 32;
const THREADS: usize = 4;

/// One full instrumented run: fixture ingest + a 32-query `relax_batch`
/// sharded over a fixed thread count, returning the stable snapshot JSON.
fn instrumented_run() -> String {
    let registry = Registry::shared();
    let mut config = fixture_config();
    config.obs = ObsConfig::with_registry(Arc::clone(&registry));
    let r = fixture_relaxer(config);
    let queries: Vec<(ExtConceptId, Option<ContextId>)> = (0..BATCH)
        .map(|i| {
            let (term, label) = GOLDEN_QUERIES[i % GOLDEN_QUERIES.len()];
            (r.resolve_term(term).unwrap(), label.map(|l| context_labeled(&r, l)))
        })
        .collect();
    for res in r.relax_concepts_batch_with_threads(&queries, K, THREADS) {
        res.unwrap();
    }
    registry.snapshot().to_json_stable()
}

#[test]
fn stable_snapshot_is_byte_identical_across_runs() {
    let first = instrumented_run();
    let second = instrumented_run();
    assert!(validate_json(&first), "stable snapshot is not valid JSON:\n{first}");
    assert_eq!(first, second, "stable snapshot drifted between identical runs");
}

#[test]
fn stable_snapshot_covers_every_pipeline_stage() {
    let registry = Registry::shared();
    let mut config = fixture_config();
    config.obs = ObsConfig::with_registry(Arc::clone(&registry));
    let r = fixture_relaxer(config);
    let queries: Vec<(&str, Option<ContextId>)> = GOLDEN_QUERIES
        .iter()
        .map(|&(term, label)| (term, label.map(|l| context_labeled(&r, l))))
        .collect();
    for res in r.relax_batch(&queries, K) {
        res.unwrap();
    }
    let snap = registry.snapshot();

    for name in medkb::core::ingest::obs_names::STAGE_TIMERS {
        assert_eq!(snap.histogram_count(name), 1, "missing ingest stage timer {name}");
    }
    use medkb::core::relax::obs_names as relax_obs;
    assert_eq!(snap.counter(relax_obs::QUERIES), GOLDEN_QUERIES.len() as u64);
    assert_eq!(
        snap.counter(relax_obs::CANDIDATES_SCANNED),
        snap.counter(relax_obs::CANDIDATES_KEPT) + snap.counter(relax_obs::CANDIDATES_PRUNED),
        "scanned must partition into kept + pruned"
    );
    assert!(snap.counter(relax_obs::LCS_EVALS) > 0);
    assert_eq!(
        snap.counter(relax_obs::LCS_QUERY_REUSE),
        snap.counter(relax_obs::LCS_EVALS),
        "query-side tables are built once per query, so every candidate \
         evaluation reuses them: the counters must track exactly"
    );
    assert_eq!(snap.histogram_count(relax_obs::LATENCY_US), GOLDEN_QUERIES.len() as u64);
    assert_eq!(snap.counter(relax_obs::BATCH_CALLS), 1);
    assert_eq!(snap.counter(relax_obs::BATCH_QUERIES), GOLDEN_QUERIES.len() as u64);
    assert!(snap.counter(relax_obs::BATCH_SHARDS) >= 1);
}

/// `lcs.query_side_reuse` semantics are exact: the query-side upward
/// distance table is built once per query and reused by *every* candidate
/// evaluation, so per query the reuse delta equals the evals delta — for
/// empty candidate sets (0 == 0) and singletons (1 == 1) alike, with no
/// off-by-one undercount on either end.
#[test]
fn lcs_query_reuse_equals_evals_per_query() {
    let registry = Registry::shared();
    let mut config = fixture_config();
    config.obs = ObsConfig::with_registry(Arc::clone(&registry));
    let r = fixture_relaxer(config);

    let (mut prev_evals, mut prev_reuse) = (0u64, 0u64);
    for &(term, label) in GOLDEN_QUERIES {
        let ctx = label.map(|l| context_labeled(&r, l));
        let res = r.relax(term, ctx, K).unwrap();
        let snap = registry.snapshot();
        use medkb::core::relax::obs_names as relax_obs;
        let evals = snap.counter(relax_obs::LCS_EVALS);
        let reuse = snap.counter(relax_obs::LCS_QUERY_REUSE);
        let (d_evals, d_reuse) = (evals - prev_evals, reuse - prev_reuse);
        assert_eq!(d_reuse, d_evals, "{term}: reuse delta diverged from evals delta");
        assert!(
            d_evals >= res.answers.len() as u64,
            "{term}: every returned answer was evaluated at least once"
        );
        (prev_evals, prev_reuse) = (evals, reuse);
    }
    assert!(prev_evals > 0, "fixture batch must exercise the scorer");
}

/// Score-bounded pruning accounting (DESIGN.md §13): with pruning on (the
/// default) every kept candidate is either LCS-evaluated or skipped on an
/// admissible bound; with pruning off every bound counter stays at zero,
/// every kept candidate is evaluated, and the answers are bit-identical
/// either way — the flag is purely a latency knob.
#[test]
fn bound_counters_partition_kept_candidates() {
    use medkb::core::relax::obs_names as relax_obs;

    let run = |pruning: bool| {
        let registry = Registry::shared();
        let mut config = fixture_config();
        config.pruning = pruning;
        config.obs = ObsConfig::with_registry(Arc::clone(&registry));
        let r = fixture_relaxer(config);
        let mut results = Vec::new();
        for &(term, label) in GOLDEN_QUERIES {
            let ctx = label.map(|l| context_labeled(&r, l));
            results.push(r.relax(term, ctx, K).unwrap());
        }
        (registry.snapshot(), results)
    };

    let (pruned, pruned_results) = run(true);
    assert_eq!(
        pruned.counter(relax_obs::LCS_EVALS) + pruned.counter(relax_obs::BOUND_SKIPS),
        pruned.counter(relax_obs::CANDIDATES_KEPT),
        "kept candidates must partition into LCS evals + bound skips"
    );

    let (off, off_results) = run(false);
    assert_eq!(off.counter(relax_obs::BOUND_SKIPS), 0, "pruning off must never skip");
    assert_eq!(off.counter(relax_obs::RINGS_TERMINATED), 0, "pruning off keeps every ring");
    assert_eq!(
        off.histogram_count(relax_obs::BOUND_TIGHTNESS_PCT),
        0,
        "pruning off computes no bounds, so tightness must stay empty"
    );
    assert_eq!(
        off.counter(relax_obs::LCS_EVALS),
        off.counter(relax_obs::CANDIDATES_KEPT),
        "the exhaustive scan evaluates every kept candidate"
    );

    for ((term, _), (a, b)) in
        GOLDEN_QUERIES.iter().zip(pruned_results.iter().zip(&off_results))
    {
        assert_eq!(a.radius_used, b.radius_used, "{term}: radius diverged");
        assert_eq!(a.answers.len(), b.answers.len(), "{term}: answer count diverged");
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.concept, y.concept, "{term}: ranking diverged");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{term}: score bits diverged");
        }
    }
}

/// Instrumentation and `explain` must not perturb results: same concepts,
/// bit-identical scores, same hops/instances/radius as the plain run.
#[test]
fn observability_is_inert_on_results() {
    let plain = fixture_relaxer(fixture_config());

    let mut config = fixture_config();
    config.obs = ObsConfig { metrics: Some(Registry::shared()), explain: true };
    let observed = fixture_relaxer(config);

    for (term, label) in GOLDEN_QUERIES {
        let ctx_p = label.map(|l| context_labeled(&plain, l));
        let ctx_o = label.map(|l| context_labeled(&observed, l));
        let a = plain.relax(term, ctx_p, K).unwrap();
        let b = observed.relax(term, ctx_o, K).unwrap();
        assert_eq!(a.radius_used, b.radius_used, "{term}: radius diverged");
        assert_eq!(a.answers.len(), b.answers.len(), "{term}: answer count diverged");
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.concept, y.concept, "{term}: ranking diverged");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{term}: score bits diverged");
            assert_eq!(x.hops, y.hops, "{term}: hops diverged");
            assert_eq!(x.instances, y.instances, "{term}: instances diverged");
            assert!(x.explain.is_none(), "{term}: plain run carries explain");
            assert!(y.explain.is_some(), "{term}: explain run missing breakdown");
        }
    }
}

/// A disabled-obs relaxer sharing a registry must write nothing to it:
/// the allocation-free "one branch" guarantee, observed from outside.
#[test]
fn disabled_obs_writes_nothing() {
    let r = fixture_relaxer(fixture_config());
    let registry = Registry::shared();
    let before = registry.snapshot().to_json_stable();
    let ctx = context_labeled(&r, "Indication-hasFinding-Finding");
    r.relax("fever", Some(ctx), K).unwrap();
    assert_eq!(registry.snapshot().to_json_stable(), before);
}
