//! The paper's published claims, pinned end-to-end (on reduced worlds —
//! the `medkb-bench` binaries regenerate the full-scale tables).

use medkb::eval::pipeline::{EvalConfig, EvalStack};
use medkb::eval::{evaluate_mappings, evaluate_relaxation, run_user_study, StudyConfig};
use medkb::prelude::*;
use std::collections::HashMap;

fn stack() -> EvalStack {
    EvalStack::build(EvalConfig::tiny(401)).expect("stack builds")
}

#[test]
fn figure4_frequency_totals() {
    // freq("pain of head and neck region") = 18878 + 283 + 3 = 19164 in
    // the Indication context and 1656 in the Risk context.
    let f = medkb::snomed::figures::paper_fragment();
    let mut direct = HashMap::new();
    for &(name, treat, risk) in &f.fig4_direct_counts {
        let mut row = [0u64; medkb::snomed::oracle::N_TAGS];
        row[ContextTag::Treatment.index()] = treat;
        row[ContextTag::Risk.index()] = risk;
        direct.insert(f.concept(name), row);
    }
    let counts = MentionCounts::from_direct(direct, HashMap::new(), 100);
    let freqs =
        Frequencies::compute(&f.ekg, &counts, FrequencyMode::PaperRecursive, false);
    let raw = |name: &str, tag: ContextTag| {
        (freqs.freq(f.concept(name), tag) * freqs.total(tag)).round() as u64
    };
    assert_eq!(raw("pain of head and neck region", ContextTag::Treatment), 19_164);
    assert_eq!(raw("craniofacial pain", ContextTag::Treatment), 18_878);
    assert_eq!(raw("pain of head and neck region", ContextTag::Risk), 1_656);
}

#[test]
fn figure6_path_weights() {
    // 0.9^6 vs 0.9^3 depending on which endpoint is the query term.
    let f = medkb::snomed::figures::paper_fragment();
    let pneumonia = f.concept("pneumonia");
    let lrti = f.concept("lower respiratory tract infection");
    let (fwd, _) = medkb::ekg::path::path_between(&f.ekg, pneumonia, lrti);
    let (rev, _) = medkb::ekg::path::path_between(&f.ekg, lrti, pneumonia);
    assert!((fwd.weight(0.9, 1.0) - 0.9f64.powi(6)).abs() < 1e-12);
    assert!((rev.weight(0.9, 1.0) - 0.9f64.powi(3)).abs() < 1e-12);
}

#[test]
fn table1_shape_exact_edit_embedding() {
    let s = stack();
    let rows = evaluate_mappings(&s);
    let get = |m: &str| rows.iter().find(|r| r.method == m).unwrap().prf;
    // EXACT: perfect precision, lowest recall.
    assert!((get("EXACT").precision - 100.0).abs() < 1e-9);
    assert!(get("EDIT").recall >= get("EXACT").recall);
    // EMBEDDING: best recall and best F1 (the paper's headline shape).
    assert!(get("EMBEDDING").recall >= get("EDIT").recall);
    assert!(get("EMBEDDING").f1 >= get("EXACT").f1);
}

#[test]
fn table2_shape_qr_beats_baselines() {
    let s = stack();
    let rows = evaluate_relaxation(&s, 30);
    let f1 = |m: &str| rows.iter().find(|r| r.method == m).unwrap().prf.f1;
    assert!(f1("QR") > f1("IC"), "QR {} vs IC {}", f1("QR"), f1("IC"));
    assert!(
        f1("QR") > f1("Embedding-pre-trained"),
        "QR {} vs pre-trained {}",
        f1("QR"),
        f1("Embedding-pre-trained")
    );
    assert!(
        f1("Embedding-trained") > f1("Embedding-pre-trained"),
        "trained {} vs pre-trained {}",
        f1("Embedding-trained"),
        f1("Embedding-pre-trained")
    );
}

#[test]
fn table3_shape_qr_raises_satisfaction() {
    let s = stack();
    let report = run_user_study(&s, &StudyConfig::tiny(303));
    assert!(report.qr_t1.average > report.noqr_t1.average);
    assert!(report.qr_t2.average > report.noqr_t2.average);
    // Within each system T1 (guided) should not be harder than T2 (free).
    assert!(report.qr_t1.average >= report.qr_t2.average - 0.4);
}

#[test]
fn scenario1_repair_and_scenario2_expansion_end_to_end() {
    let s = stack();
    let relaxer = s.relaxer(s.config.relax.clone());
    // Scenario 1: a term that exists in the terminology but not the KB.
    let unknown = s
        .world
        .unrepresented_findings()
        .into_iter()
        .find(|&c| {
            s.world.terminology.ekg.depth(c) >= 3
                && s.world
                    .terminology
                    .ekg
                    .neighborhood(c, 4)
                    .iter()
                    .any(|(n, _)| s.ingested.flagged.contains(n))
        })
        .expect("unrepresented finding near flagged concepts");
    let name = s.world.terminology.ekg.name(unknown).to_string();
    let res = relaxer.relax(&name, Some(s.world.treatment_context()), 7).unwrap();
    assert!(!res.answers.is_empty(), "scenario 1 produces repair candidates");

    // Scenario 2: a known concept still yields related expansions.
    let (_inst, known) = s.ingested.mappings.iter().next().unwrap();
    let res = relaxer.relax_concept(known, Some(s.world.treatment_context()), 7).unwrap();
    assert!(res.answers.iter().all(|a| a.concept != known));
    assert!(!res.answers.is_empty());
}
