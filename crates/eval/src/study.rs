//! Table 3: the simulated user study (§7.2, "User study").
//!
//! 20 human SMEs are people-gated, so simulated participants reproduce the
//! study's *mechanics*:
//!
//! * **T1** — each participant asks 20 questions around given condition
//!   names; **T2** — 10 free questions, a small fraction of which have no
//!   answer in the KB (the paper observed 9 of 200).
//! * Participants phrase conditions imperfectly (typos, colloquial and
//!   reordered forms) and converge towards the precise name over retries —
//!   this is the querying-vocabulary mismatch the whole paper is about.
//! * Grading follows the retry protocol: 5 points, minus one per failed
//!   attempt, at most 4 rephrasings, floor 1.
//! * The paper's orthogonal incident categories (answers missing from the
//!   KB, conversational-flow complaints, unexplained low grades,
//!   overwhelming-information complaints) are injected at the reported
//!   rates and counted.
//!
//! Correctness is judged by the oracle: an answer is correct when it is
//! about the asked concept (directly, or — for repair suggestions — a
//! concept the oracle deems relevant in the question's context).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_core::QueryRelaxer;
use medkb_nli::trainset::generate_training_queries;
use medkb_nli::{ConversationEngine, EntityExtractor, IntentClassifier, Response};
use medkb_snomed::oracle::DEFAULT_RELEVANCE_THRESHOLD;
use medkb_snomed::{vocab, ContextTag, Oracle};
use medkb_types::{ExtConceptId, InstanceId};

use crate::pipeline::EvalStack;

/// Study parameters (defaults reproduce the paper's setup).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of simulated participants (paper: 20).
    pub participants: usize,
    /// Questions per participant in T1 (paper: 20).
    pub t1_questions: usize,
    /// Questions per participant in T2 (paper: 10).
    pub t2_questions: usize,
    /// Fraction of T2 questions with no KB answer (paper: 9/200).
    pub t2_unanswerable_rate: f64,
    /// Maximum attempts per question (paper: 1 + 4 rephrasings).
    pub max_attempts: usize,
    /// Probability a first phrasing is imprecise.
    pub imprecise_phrasing_rate: f64,
    /// Per-question incident probabilities `(kb gap, flow complaint,
    /// unexplained low grade, information overload)` — paper: 7, 11, 10
    /// and 6 incidents over 2 × 600 graded questions.
    pub incident_rates: (f64, f64, f64, f64),
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0007,
            participants: 20,
            t1_questions: 20,
            t2_questions: 10,
            t2_unanswerable_rate: 9.0 / 200.0,
            max_attempts: 5,
            imprecise_phrasing_rate: 0.85,
            incident_rates: (7.0 / 1200.0, 11.0 / 1200.0, 10.0 / 1200.0, 6.0 / 1200.0),
        }
    }
}

impl StudyConfig {
    /// A fast configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, participants: 4, t1_questions: 6, t2_questions: 4, ..Self::default() }
    }
}

/// Incident counters (the paper's feedback analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncidentCounts {
    /// Expected answer not contained in the KB.
    pub kb_gap: usize,
    /// Complaints about the conversational flow.
    pub flow: usize,
    /// Low grade without negative feedback.
    pub unexplained: usize,
    /// Overwhelming amount of (correct) information.
    pub overload: usize,
}

/// Grade distribution and average of one (system, task) cell.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Percentage of grades 1..=5.
    pub distribution: [f64; 5],
    /// Average grade.
    pub average: f64,
    /// Raw grades.
    pub grades: Vec<u8>,
    /// Injected incidents.
    pub incidents: IncidentCounts,
}

impl TaskResult {
    fn from_grades(grades: Vec<u8>, incidents: IncidentCounts) -> Self {
        let mut counts = [0usize; 5];
        for &g in &grades {
            counts[(g as usize).clamp(1, 5) - 1] += 1;
        }
        let n = grades.len().max(1) as f64;
        let distribution = counts.map(|c| 100.0 * c as f64 / n);
        let average = grades.iter().map(|&g| f64::from(g)).sum::<f64>() / n;
        Self { distribution, average, grades, incidents }
    }
}

/// The full Table 3 report.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// With relaxation, task 1.
    pub qr_t1: TaskResult,
    /// With relaxation, task 2.
    pub qr_t2: TaskResult,
    /// Without relaxation, task 1.
    pub noqr_t1: TaskResult,
    /// Without relaxation, task 2.
    pub noqr_t2: TaskResult,
}

/// One study question.
struct Question {
    /// The target concept in the terminology (None for unanswerable).
    concept: Option<ExtConceptId>,
    /// The target KB instance, when one exists.
    instance: Option<InstanceId>,
    /// The name the participant has in mind.
    name: String,
    /// The semantic context of the question.
    tag: ContextTag,
}

/// Run the study on both systems (with and without QR).
pub fn run_user_study(stack: &EvalStack, config: &StudyConfig) -> StudyReport {
    let queries = generate_training_queries(
        &stack.world.kb,
        &stack.world.contexts,
        |c| stack.world.tag_of(c),
        6,
        config.seed ^ 0x1111,
    );
    let classifier = IntentClassifier::train(&queries);
    let extractor = EntityExtractor::build(&stack.world.kb);

    let build_engine = |use_qr: bool| {
        let relaxer: QueryRelaxer = stack.relaxer(stack.config.relax.clone());
        let mut e = ConversationEngine::new(
            stack.world.kb.clone(),
            relaxer,
            classifier.clone(),
            extractor.clone(),
        );
        e.use_relaxation = use_qr;
        e
    };
    let mut qr_engine = build_engine(true);
    let mut noqr_engine = build_engine(false);

    let report = |use_qr: bool, task1: bool, engine: &mut ConversationEngine| {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ if use_qr { 0xAA } else { 0xBB } ^ if task1 { 0x1 } else { 0x2 },
        );
        run_task(stack, config, engine, &mut rng, task1)
    };
    let qr_t1 = report(true, true, &mut qr_engine);
    let qr_t2 = report(true, false, &mut qr_engine);
    let noqr_t1 = report(false, true, &mut noqr_engine);
    let noqr_t2 = report(false, false, &mut noqr_engine);
    StudyReport { qr_t1, qr_t2, noqr_t1, noqr_t2 }
}

fn run_task(
    stack: &EvalStack,
    config: &StudyConfig,
    engine: &mut ConversationEngine,
    rng: &mut StdRng,
    task1: bool,
) -> TaskResult {
    let mut grades = Vec::new();
    let mut incidents = IncidentCounts::default();
    let per_participant = if task1 { config.t1_questions } else { config.t2_questions };
    for _ in 0..config.participants {
        for _ in 0..per_participant {
            let question = draw_question(stack, config, rng, task1);
            let mut grade = ask_until_correct(stack, config, engine, rng, &question);
            // Orthogonal incidents (paper's feedback analysis).
            let (p_gap, p_flow, p_unexplained, p_overload) = config.incident_rates;
            if rng.gen_bool(p_gap) {
                incidents.kb_gap += 1;
                grade = grade.min(2);
            }
            if rng.gen_bool(p_flow) {
                incidents.flow += 1;
                grade = grade.saturating_sub(1 + u8::from(rng.gen_bool(0.5))).max(1);
            }
            if rng.gen_bool(p_unexplained) {
                incidents.unexplained += 1;
                grade = if rng.gen_bool(0.5) { 1 } else { 3 };
            }
            if rng.gen_bool(p_overload) {
                incidents.overload += 1;
                grade = grade.min(3);
            }
            grades.push(grade.clamp(1, 5));
        }
    }
    TaskResult::from_grades(grades, incidents)
}

/// Draw a question: T1 targets given (mapped, answerable) conditions; T2 is
/// a free mix including terminology-only and unanswerable terms.
fn draw_question(
    stack: &EvalStack,
    config: &StudyConfig,
    rng: &mut StdRng,
    task1: bool,
) -> Question {
    let world = &stack.world;
    let tag = if rng.gen_bool(0.6) { ContextTag::Treatment } else { ContextTag::Risk };

    let mapped: Vec<(InstanceId, ExtConceptId)> = stack
        .ingested
        .mappings
        .iter()
        .filter(|&(i, _)| {
            // T1's "given concepts" are answerable: a triple exists.
            !task1 || !world.kb.incoming(i).is_empty()
        })
        .collect();

    if !task1 && rng.gen_bool(config.t2_unanswerable_rate) {
        // A condition that exists in neither the KB nor the terminology.
        return Question {
            concept: None,
            instance: None,
            name: format!(
                "{}{} disorder",
                vocab::GENUS_STARTS[rng.gen_range(0..vocab::GENUS_STARTS.len())],
                vocab::SPECIES[rng.gen_range(0..vocab::SPECIES.len())]
            ),
            tag,
        };
    }
    if !task1 && rng.gen_bool(0.3) {
        // Terminology-only condition (the "pyelectasia" case).
        let pool = world.unrepresented_findings();
        if !pool.is_empty() {
            let c = pool[rng.gen_range(0..pool.len())];
            return Question {
                concept: Some(c),
                instance: None,
                name: world.terminology.ekg.name(c).to_string(),
                tag,
            };
        }
    }
    let mut sorted = mapped;
    sorted.sort_unstable();
    let (inst, concept) = sorted[rng.gen_range(0..sorted.len())];
    Question {
        concept: Some(concept),
        instance: Some(inst),
        name: world.kb.name(inst).to_string(),
        tag,
    }
}

/// Run the retry loop, returning the grade (5 minus failed attempts).
fn ask_until_correct(
    stack: &EvalStack,
    config: &StudyConfig,
    engine: &mut ConversationEngine,
    rng: &mut StdRng,
    question: &Question,
) -> u8 {
    engine.reset();
    let templates: &[&str] = match question.tag {
        ContextTag::Treatment => &[
            "what drugs treat {e}",
            "which medication is used for {e}",
            "what is the treatment for {e}",
            "which drugs are indicated for {e}",
            "how do you treat {e}",
        ],
        _ => &[
            "what drugs cause {e}",
            "which medication has the risk of causing {e}",
            "what are the drugs with {e} as a side effect",
            "can any drug lead to {e}",
            "which drugs should be avoided with {e}",
        ],
    };
    let mut imprecision = config.imprecise_phrasing_rate;
    for attempt in 0..config.max_attempts {
        let name = phrase(rng, &question.name, imprecision);
        imprecision *= 0.85; // the participant converges to the exact name
        let utterance = templates[attempt % templates.len()].replace("{e}", &name);
        let response = engine.handle(&utterance);
        match judge(stack, question, &response) {
            Outcome::Full => return (5 - attempt as u8).max(1),
            // A correct repair still costs the user a confirmation turn:
            // participants graded such exchanges one point lower.
            Outcome::Partial => return (4 - attempt as u8).max(1),
            Outcome::Wrong => {}
        }
    }
    1
}

/// How a response fares against the question.
enum Outcome {
    /// Direct correct answer.
    Full,
    /// Correct but indirect (a repair suggestion the user must confirm).
    Partial,
    /// Incorrect.
    Wrong,
}

/// Produce the participant's phrasing of a name.
fn phrase(rng: &mut StdRng, name: &str, imprecision: f64) -> String {
    if !rng.gen_bool(imprecision.clamp(0.0, 1.0)) {
        return name.to_string();
    }
    match rng.gen_range(0..3) {
        0 => vocab::typo(rng, name),
        1 => vocab::reword(rng, name),
        _ => {
            // Drop a leading modifier ("chronic renal pain" → "renal pain").
            let words: Vec<&str> = name.split_whitespace().collect();
            if words.len() >= 3 {
                words[1..].join(" ")
            } else {
                vocab::typo(rng, name)
            }
        }
    }
}

/// Oracle judgment of one response.
fn judge(stack: &EvalStack, question: &Question, response: &Response) -> Outcome {
    let world = &stack.world;
    match response {
        Response::Answer { entity, results, .. } => {
            let on_topic = question.instance == Some(*entity)
                || relevant_concept(stack, question, world.origins[*entity].concept);
            if on_topic && !results.is_empty() {
                Outcome::Full
            } else {
                Outcome::Wrong
            }
        }
        Response::Repair { suggestions, .. } => {
            let hit = suggestions.iter().take(3).any(|&(inst, _)| {
                question.instance == Some(inst)
                    || relevant_concept(stack, question, world.origins[inst].concept)
            });
            if hit {
                Outcome::Partial
            } else {
                Outcome::Wrong
            }
        }
        Response::Verification { object, holds, .. } => {
            // The study templates never ask polar questions, but be
            // robust: a true verification about the asked entity counts.
            if *holds && question.instance == Some(*object) {
                Outcome::Full
            } else {
                Outcome::Wrong
            }
        }
        Response::DontUnderstand { .. } => Outcome::Wrong,
    }
}

fn relevant_concept(
    stack: &EvalStack,
    question: &Question,
    candidate: Option<ExtConceptId>,
) -> bool {
    let (Some(target), Some(cand)) = (question.concept, candidate) else {
        return false;
    };
    if target == cand {
        return true;
    }
    let term = &stack.world.terminology;
    let ext_q = Oracle::extension(&term.ekg, target);
    stack.world.oracle.relevance(term, &ext_q, target, cand, question.tag)
        >= DEFAULT_RELEVANCE_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EvalConfig;

    fn report() -> StudyReport {
        let stack = EvalStack::build(EvalConfig::tiny(131)).unwrap();
        run_user_study(&stack, &StudyConfig::tiny(132))
    }

    #[test]
    fn distributions_sum_to_100() {
        let r = report();
        for task in [&r.qr_t1, &r.qr_t2, &r.noqr_t1, &r.noqr_t2] {
            let sum: f64 = task.distribution.iter().sum();
            assert!((sum - 100.0).abs() < 1e-6, "{sum}");
            assert!(!task.grades.is_empty());
        }
    }

    #[test]
    fn averages_within_grade_range() {
        let r = report();
        for task in [&r.qr_t1, &r.qr_t2, &r.noqr_t1, &r.noqr_t2] {
            assert!((1.0..=5.0).contains(&task.average), "{}", task.average);
        }
    }

    #[test]
    fn qr_outperforms_no_qr() {
        let r = report();
        assert!(
            r.qr_t1.average > r.noqr_t1.average,
            "T1: QR {} vs no-QR {}",
            r.qr_t1.average,
            r.noqr_t1.average
        );
        assert!(
            r.qr_t2.average > r.noqr_t2.average,
            "T2: QR {} vs no-QR {}",
            r.qr_t2.average,
            r.noqr_t2.average
        );
    }

    #[test]
    fn deterministic() {
        let stack = EvalStack::build(EvalConfig::tiny(133)).unwrap();
        let a = run_user_study(&stack, &StudyConfig::tiny(134));
        let b = run_user_study(&stack, &StudyConfig::tiny(134));
        assert_eq!(a.qr_t1.grades, b.qr_t1.grades);
        assert_eq!(a.noqr_t2.grades, b.noqr_t2.grades);
    }
}
