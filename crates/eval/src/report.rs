//! Markdown rendering of experiment tables.

use medkb_obs::MetricsSnapshot;

use crate::mapping_eval::MappingRow;
use crate::relax_eval::RelaxRow;
use crate::study::StudyReport;

/// Render Table 1 as Markdown.
pub fn render_table1(rows: &[MappingRow]) -> String {
    let mut out = String::from("| Methods | Precision | Recall | F1 |\n|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} |\n",
            r.method, r.prf.precision, r.prf.recall, r.prf.f1
        ));
    }
    out
}

/// Render Table 2 as Markdown (the paper's three columns plus the graded
/// nDCG@10 this reproduction adds).
pub fn render_table2(rows: &[RelaxRow]) -> String {
    let mut out =
        String::from("| Methods | P@10 | R@10 | F1 | nDCG@10 |\n|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.method, r.prf.precision, r.prf.recall, r.prf.f1, r.ndcg
        ));
    }
    out
}

/// Render Table 3 as Markdown.
pub fn render_table3(report: &StudyReport) -> String {
    let mut out = String::from(
        "| Score | QR T1 | QR T2 | no-QR T1 | no-QR T2 |\n|---|---|---|---|---|\n",
    );
    let labels = [
        "1 (Very dissatisfied)",
        "2 (Dissatisfied)",
        "3 (Okay)",
        "4 (Satisfied)",
        "5 (Very satisfied)",
    ];
    for (i, label) in labels.iter().enumerate() {
        out.push_str(&format!(
            "| {label} | {:.2}% | {:.2}% | {:.2}% | {:.2}% |\n",
            report.qr_t1.distribution[i],
            report.qr_t2.distribution[i],
            report.noqr_t1.distribution[i],
            report.noqr_t2.distribution[i],
        ));
    }
    out.push_str(&format!(
        "| AVG | {:.2} | {:.2} | {:.2} | {:.2} |\n",
        report.qr_t1.average, report.qr_t2.average, report.noqr_t1.average, report.noqr_t2.average
    ));
    out
}

/// Render a pipeline metrics snapshot as a Markdown report section:
/// one table for counters and gauges, one for histograms (count, mean,
/// max-bucket). Empty sections are omitted; an empty snapshot renders a
/// placeholder line so callers can always append the section.
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("### Pipeline metrics\n\n");
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("_no metrics recorded_\n");
        return out;
    }
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        out.push_str("| Metric | Kind | Value |\n|---|---|---|\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("| {name} | counter | {v} |\n"));
        }
        for (name, v) in &snap.gauges {
            out.push_str(&format!("| {name} | gauge | {v} |\n"));
        }
        out.push('\n');
    }
    if !snap.histograms.is_empty() {
        out.push_str("| Histogram | Count | Mean | p-max bucket |\n|---|---|---|---|\n");
        for (name, h) in &snap.histograms {
            let mean =
                if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
            // The highest non-empty bucket's upper bound — a cheap tail
            // indicator ("overflow" past the last bound).
            let tail = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .map(|i| match h.bounds.get(i) {
                    Some(b) => format!("<= {b}"),
                    None => "overflow".to_string(),
                })
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("| {name} | {} | {mean:.1} | {tail} |\n", h.count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Prf;

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![MappingRow {
            method: "EXACT",
            prf: Prf::new(100.0, 83.33),
            produced: 10,
            mappable: 12,
        }];
        let md = render_table1(&rows);
        assert!(md.contains("| EXACT | 100.00 | 83.33 |"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn table2_renders_all_rows() {
        let rows = vec![RelaxRow {
            method: "QR",
            prf: Prf::new(90.0, 80.0),
            queries: 100,
            p_ci: (88.0, 92.0),
            r_ci: (78.0, 82.0),
            ndcg: 88.0,
        }];
        let md = render_table2(&rows);
        assert!(md.contains("| QR | 90.00 | 80.00 |"));
    }

    #[test]
    fn metrics_section_renders_counters_and_histograms() {
        let registry = medkb_obs::Registry::new();
        registry.counter("relax.queries").add(32);
        registry.gauge("ingest.threads").set(4);
        let h = registry.histogram("relax.latency_us", &[100, 1_000]);
        h.record(40);
        h.record(5_000);
        let md = render_metrics(&registry.snapshot());
        assert!(md.contains("| relax.queries | counter | 32 |"), "{md}");
        assert!(md.contains("| ingest.threads | gauge | 4 |"), "{md}");
        assert!(md.contains("| relax.latency_us | 2 |"), "{md}");
        assert!(md.contains("overflow"), "{md}");
        // Empty snapshots still render a section.
        let empty = render_metrics(&medkb_obs::MetricsSnapshot::default());
        assert!(empty.contains("no metrics recorded"));
    }
}
