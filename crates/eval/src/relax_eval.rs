//! Table 2: overall effectiveness of the relaxation methods.
//!
//! The protocol mirrors §7.2, which is a *pooled judgment* protocol: the
//! participants were shown the concepts the methods returned and judged
//! whether each "is indeed related" to the query concept; recall is
//! measured against the relevant results found. Accordingly:
//!
//! 1. The workload is a set of commonly used condition concepts (popular,
//!    flagged, depth ≥ 3 clinical findings), asked alternately in the
//!    treatment and the risk context.
//! 2. Every method returns its top-10 concepts per query.
//! 3. The oracle — standing in for the 20 SMEs — judges the *pool* (the
//!    union of all methods' top-10) for binary relevance.
//! 4. `P@10` = judged-relevant among a method's top-10 / 10;
//!    `R@10` = judged-relevant found by the method / all judged-relevant
//!    in the pool; averaged over queries, `F1` of the averages.

use std::collections::{HashMap, HashSet};

use medkb_core::baselines::{ConceptRanker, EmbeddingRanker};
use medkb_serve::{RelaxServer, ServeConfig};
use medkb_snomed::oracle::DEFAULT_RELEVANCE_THRESHOLD;
use medkb_snomed::{ContextTag, Hierarchy, Oracle};
use medkb_types::{ContextId, ExtConceptId};

use crate::metrics::{mean, Prf};
use crate::pipeline::EvalStack;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct RelaxRow {
    /// Method label as in the paper.
    pub method: &'static str,
    /// P@10 / R@10 / F1 (0–100).
    pub prf: Prf,
    /// Number of workload queries with a non-empty judged-relevant pool.
    pub queries: usize,
    /// Bootstrap 95% CI of P@10 (0–100).
    pub p_ci: (f64, f64),
    /// Bootstrap 95% CI of R@10 (0–100).
    pub r_ci: (f64, f64),
    /// nDCG@10 against the oracle's *graded* relevance (0–100).
    pub ndcg: f64,
}

/// The evaluation workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `(query concept, context, tag)` triples.
    pub queries: Vec<(ExtConceptId, ContextId, ContextTag)>,
    /// The retrieval universe for graph-free rankers (flagged findings).
    pub universe: Vec<ExtConceptId>,
}

impl Workload {
    /// Restrict the workload to queries of one context tag (for the
    /// per-context breakdown the `table2` binary prints).
    pub fn only_tag(&self, tag: ContextTag) -> Workload {
        Workload {
            queries: self.queries.iter().copied().filter(|&(_, _, t)| t == tag).collect(),
            universe: self.universe.clone(),
        }
    }
}

/// Build the workload of up to `n` popular flagged condition concepts.
pub fn build_workload(stack: &EvalStack, n: usize) -> Workload {
    let world = &stack.world;
    let term = &world.terminology;
    let flagged = &stack.ingested.flagged;

    let universe: Vec<ExtConceptId> = term
        .of_hierarchy_below(Hierarchy::ClinicalFinding, 2)
        .into_iter()
        .filter(|c| flagged.contains(c))
        .collect();

    // Queries: specific conditions (depth ≥ 3), most popular first.
    let mut conditions: Vec<ExtConceptId> =
        universe.iter().copied().filter(|&c| term.ekg.depth(c) >= 3).collect();
    conditions.sort_by(|a, b| {
        term.meta[*b].popularity.total_cmp(&term.meta[*a].popularity).then(a.cmp(b))
    });

    let treatment = world.treatment_context();
    let risk = world.risk_context();
    let queries = conditions
        .into_iter()
        .take(n)
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                (q, treatment, ContextTag::Treatment)
            } else {
                (q, risk, ContextTag::Risk)
            }
        })
        .collect();
    Workload { queries, universe }
}

/// Evaluate all Table 2 methods on the stack with a workload of `n`
/// queries at the default relevance threshold.
pub fn evaluate_relaxation(stack: &EvalStack, n: usize) -> Vec<RelaxRow> {
    let workload = build_workload(stack, n);
    evaluate_relaxation_on(stack, &workload, DEFAULT_RELEVANCE_THRESHOLD)
}

/// Evaluate all Table 2 methods on a prebuilt workload with a given
/// oracle relevance threshold.
pub fn evaluate_relaxation_on(
    stack: &EvalStack,
    workload: &Workload,
    threshold: f64,
) -> Vec<RelaxRow> {
    let k = 10usize;
    let base = stack.config.relax.clone();
    let labels: [&'static str; 6] = [
        "QR",
        "QR-no-context",
        "QR-no-corpus",
        "IC",
        "Embedding-pre-trained",
        "Embedding-trained",
    ];

    // —— Run every method on every query ——
    // QR-family methods shard the *queries* across threads and read
    // through the serving layer's result cache (queries vastly outnumber
    // methods, so this parallelizes much better than one thread per
    // method, and repeated workload queries relax once per config —
    // serving is answer-invisible, so the scores are unchanged).
    let qr_configs = [
        base.clone(),
        base.clone().no_context(),
        base.clone().no_corpus(),
        base.clone().ic_baseline(),
    ];
    let batch_queries: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> =
        workload.queries.iter().map(|&(q, ctx, _)| (q, Some(ctx))).collect();
    let mut runs: Vec<Vec<Vec<ExtConceptId>>> = Vec::with_capacity(labels.len());
    for config in qr_configs {
        let server =
            RelaxServer::new(stack.ingested.clone(), config, ServeConfig::default());
        runs.push(
            server
                .serve_concepts_batch(&batch_queries, k)
                .into_iter()
                .map(|res| {
                    res.map(|r| r.result.concepts().into_iter().take(k).collect())
                        .unwrap_or_default()
                })
                .collect(),
        );
    }
    // The embedding baselines keep one thread per model.
    let embedding_runs: Vec<Vec<Vec<ExtConceptId>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = [stack.sif_pretrained.clone(), stack.sif_trained.clone()]
            .into_iter()
            .map(|model| {
                scope.spawn(move |_| {
                    let ranker = EmbeddingRanker::new(&stack.ingested.ekg, model);
                    workload
                        .queries
                        .iter()
                        .map(|&(q, _, _)| {
                            let pool: Vec<ExtConceptId> = workload
                                .universe
                                .iter()
                                .filter(|&&c| c != q)
                                .copied()
                                .collect();
                            ranker.rank(q, &pool).into_iter().take(k).map(|(c, _)| c).collect()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("method shard")).collect()
    })
    .expect("method scope");
    runs.extend(embedding_runs);

    pool_and_score(stack, workload, threshold, &labels, &runs, k)
}

/// Pool the per-query returns of several methods, judge the pool with the
/// oracle, and compute averaged P@k / R@k / F1 per method.
///
/// `runs[m][q]` is method `m`'s ranked return for query `q`. This is the
/// shared back-end of [`evaluate_relaxation_on`] and the ablation harness.
pub fn pool_and_score(
    stack: &EvalStack,
    workload: &Workload,
    threshold: f64,
    labels: &[&'static str],
    runs: &[Vec<Vec<ExtConceptId>>],
    k: usize,
) -> Vec<RelaxRow> {
    let world = &stack.world;
    let term = &world.terminology;
    let mut ext_cache: HashMap<ExtConceptId, HashSet<ExtConceptId>> = HashMap::new();
    let mut per_method_p: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut per_method_r: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut per_method_ndcg: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut judged_queries = 0usize;
    for (qi, &(q, _, tag)) in workload.queries.iter().enumerate() {
        let mut pool: HashSet<ExtConceptId> = HashSet::new();
        for run in runs {
            pool.extend(run[qi].iter().copied());
        }
        pool.remove(&q);
        let ext_q = Oracle::extension(&term.ekg, q);
        // Graded judgments over the pool; binary gold is the threshold cut.
        let graded: HashMap<ExtConceptId, f64> = pool
            .into_iter()
            .map(|b| {
                let ext_b = ext_cache
                    .entry(b)
                    .or_insert_with(|| Oracle::extension(&term.ekg, b));
                (b, world.oracle.relevance_from_parts(term, &ext_q, ext_b, q, b, tag))
            })
            .collect();
        let gold: HashSet<ExtConceptId> =
            graded.iter().filter(|&(_, &s)| s >= threshold).map(|(&b, _)| b).collect();
        if gold.is_empty() {
            continue; // nothing relevant anywhere: SMEs would discard it
        }
        judged_queries += 1;
        for (mi, run) in runs.iter().enumerate() {
            let (p, r) = crate::metrics::precision_recall_at_k(&run[qi], &gold, k);
            per_method_p[mi].push(p);
            per_method_r[mi].push(r);
            per_method_ndcg[mi].push(crate::metrics::ndcg_at_k(&run[qi], &graded, k));
        }
    }

    labels
        .iter()
        .enumerate()
        .map(|(mi, &label)| {
            let (plo, phi) = crate::metrics::bootstrap_ci(&per_method_p[mi], 1000, 0xC1);
            let (rlo, rhi) = crate::metrics::bootstrap_ci(&per_method_r[mi], 1000, 0xC2);
            RelaxRow {
                method: label,
                prf: Prf::new(
                    100.0 * mean(&per_method_p[mi]),
                    100.0 * mean(&per_method_r[mi]),
                ),
                queries: judged_queries,
                p_ci: (100.0 * plo, 100.0 * phi),
                r_ci: (100.0 * rlo, 100.0 * rhi),
                ndcg: 100.0 * mean(&per_method_ndcg[mi]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EvalConfig;

    fn stack() -> EvalStack {
        EvalStack::build(EvalConfig::tiny(401)).unwrap()
    }

    #[test]
    fn workload_targets_specific_conditions() {
        let s = stack();
        let w = build_workload(&s, 20);
        assert!(!w.queries.is_empty());
        for &(q, _, _) in &w.queries {
            assert!(s.world.terminology.ekg.depth(q) >= 3);
            assert!(s.ingested.flagged.contains(&q));
        }
    }

    #[test]
    fn all_methods_produce_rows() {
        let s = stack();
        let rows = evaluate_relaxation(&s, 12);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.prf.precision), "{r:?}");
            assert!((0.0..=100.0).contains(&r.prf.recall), "{r:?}");
            assert!(r.queries > 0);
        }
    }

    #[test]
    fn qr_beats_plain_ic() {
        let s = stack();
        let rows = evaluate_relaxation(&s, 25);
        let f1 = |m: &str| rows.iter().find(|r| r.method == m).unwrap().prf.f1;
        assert!(
            f1("QR") > f1("IC"),
            "QR {} should beat IC {}",
            f1("QR"),
            f1("IC")
        );
    }

    #[test]
    fn qr_beats_pretrained_embeddings() {
        let s = stack();
        let rows = evaluate_relaxation(&s, 25);
        let f1 = |m: &str| rows.iter().find(|r| r.method == m).unwrap().prf.f1;
        assert!(
            f1("QR") > f1("Embedding-pre-trained"),
            "QR {} vs pre-trained {}",
            f1("QR"),
            f1("Embedding-pre-trained")
        );
    }
}
