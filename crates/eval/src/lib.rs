//! Evaluation harness: gold standards, metrics, and the three experiments
//! of §7.
//!
//! * [`metrics`] — precision / recall / F1 and their @k variants.
//! * [`pipeline`] — builds the full experimental stack once (world,
//!   corpora, counts, embeddings, ingestion) and shares it across
//!   experiments.
//! * [`mapping_eval`] — **Table 1**: accuracy of the EXACT / EDIT(τ=2) /
//!   EMBEDDING mapping methods against the world's gold instance→concept
//!   mapping.
//! * [`relax_eval`] — **Table 2**: P@10 / R@10 / F1 of QR, QR-no-context,
//!   QR-no-corpus, IC, Embedding-pre-trained, and Embedding-trained on a
//!   workload of condition query terms, judged by the oracle that stands
//!   in for the paper's 20 SMEs.
//! * [`study`] — **Table 3**: the simulated user study of the
//!   conversational system with and without query relaxation (tasks T1 and
//!   T2, the 5-point retry grading protocol, and the paper's orthogonal
//!   incident categories).
//! * [`report`] — Markdown rendering of the result tables.

#![warn(missing_docs)]

pub mod mapping_eval;
pub mod metrics;
pub mod pipeline;
pub mod relax_eval;
pub mod report;
pub mod study;

pub use mapping_eval::{evaluate_mappings, MappingRow};
pub use metrics::{f1, precision_recall_at_k, Prf};
pub use pipeline::{EvalConfig, EvalStack};
pub use relax_eval::{evaluate_relaxation, RelaxRow};
pub use study::{run_user_study, StudyConfig, StudyReport};
