//! Table 1: accuracy of the instance → external concept mapping methods.
//!
//! For every KB instance the world knows the gold concept (or that none
//! exists). A method's *precision* is the fraction of produced mappings
//! that hit the gold concept; *recall* is the fraction of gold-mappable
//! instances that were correctly mapped. Mapping an unmappable trap
//! instance anywhere costs precision, exactly as an SME would judge it.

use medkb_core::MappingMethod;

use crate::metrics::Prf;
use crate::pipeline::EvalStack;

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct MappingRow {
    /// Method label as in the paper.
    pub method: &'static str,
    /// Precision / recall / F1 (0–100).
    pub prf: Prf,
    /// Number of mappings produced.
    pub produced: usize,
    /// Number of gold-mappable instances.
    pub mappable: usize,
}

/// Evaluate the three mapping methods of §7.2 over the stack's KB.
///
/// Like the paper — which judged "100 commonly used concepts of medical
/// conditions" — the evaluation covers the *entity* instances (findings,
/// diseases, symptoms, drugs) and the unmappable condition traps, not the
/// structural rows (indication/adverse-event records), which have no
/// terminology counterpart by design.
pub fn evaluate_mappings(stack: &EvalStack) -> Vec<MappingRow> {
    evaluate_mappings_with(
        stack,
        &[
            ("EXACT", MappingMethod::Exact),
            ("EDIT", MappingMethod::edit_tau2()),
            ("EMBEDDING", MappingMethod::embedding_default()),
        ],
    )
}

/// [`evaluate_mappings`] over an arbitrary method list (the ablation
/// harness adds the extra PHONETIC matcher).
pub fn evaluate_mappings_with(
    stack: &EvalStack,
    methods: &[(&'static str, MappingMethod)],
) -> Vec<MappingRow> {
    let onto = stack.world.kb.ontology();
    let entity_concepts: Vec<_> = ["Finding", "Disease", "Symptom", "Drug"]
        .iter()
        .filter_map(|n| onto.lookup_concept(n))
        .collect();
    let evaluated: Vec<medkb_types::InstanceId> = stack
        .world
        .kb
        .instances()
        .filter(|(_, inst)| entity_concepts.contains(&inst.concept))
        .map(|(id, _)| id)
        .collect();
    let mappable = evaluated
        .iter()
        .filter(|&&i| stack.world.origins[i].concept.is_some())
        .count();
    // The ingestions are independent; run them on their own threads.
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = methods
            .iter()
            .copied()
            .map(|(label, method)| {
                let evaluated = &evaluated;
                scope.spawn(move |_| {
                    let out = stack.ingest_with(method).expect("ingestion succeeds");
                    let mut correct = 0usize;
                    let mut produced = 0usize;
                    for &inst in evaluated {
                        let Some(concept) = out.mappings.get(inst) else { continue };
                        produced += 1;
                        if stack.world.origins[inst].concept == Some(concept) {
                            correct += 1;
                        }
                    }
                    let precision = if produced == 0 {
                        0.0
                    } else {
                        100.0 * correct as f64 / produced as f64
                    };
                    let recall = if mappable == 0 {
                        0.0
                    } else {
                        100.0 * correct as f64 / mappable as f64
                    };
                    MappingRow {
                        method: label,
                        prf: Prf::new(precision, recall),
                        produced,
                        mappable,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mapping shard")).collect()
    })
    .expect("mapping scope")
}

/// Precision/recall of the EMBEDDING mapper as its acceptance threshold
/// sweeps — one mapper build, one scored lookup per instance, thresholds
/// applied post hoc via [`medkb_core::ConceptMapper::map_scored`].
pub fn embedding_threshold_sweep(stack: &EvalStack, thresholds: &[f64]) -> Vec<(f64, Prf)> {
    use medkb_core::ConceptMapper;
    let mapper = ConceptMapper::build(
        &stack.world.terminology.ekg,
        MappingMethod::Embedding { threshold: -1.0 },
        Some(stack.sif_trained.clone()),
    )
    .expect("mapper builds");
    let onto = stack.world.kb.ontology();
    let entity_concepts: Vec<_> = ["Finding", "Disease", "Symptom", "Drug"]
        .iter()
        .filter_map(|n| onto.lookup_concept(n))
        .collect();
    // One scored lookup per entity instance.
    let scored: Vec<(medkb_types::InstanceId, Option<(medkb_types::ExtConceptId, f64)>)> = stack
        .world
        .kb
        .instances()
        .filter(|(_, inst)| entity_concepts.contains(&inst.concept))
        .map(|(id, inst)| (id, mapper.map_scored(&stack.world.terminology.ekg, &inst.name)))
        .collect();
    let mappable =
        scored.iter().filter(|(id, _)| stack.world.origins[*id].concept.is_some()).count();
    thresholds
        .iter()
        .map(|&t| {
            let mut produced = 0usize;
            let mut correct = 0usize;
            for (id, hit) in &scored {
                let Some((concept, score)) = hit else { continue };
                if *score < t {
                    continue;
                }
                produced += 1;
                if stack.world.origins[*id].concept == Some(*concept) {
                    correct += 1;
                }
            }
            let p = if produced == 0 { 0.0 } else { 100.0 * correct as f64 / produced as f64 };
            let r = if mappable == 0 { 0.0 } else { 100.0 * correct as f64 / mappable as f64 };
            (t, Prf::new(p, r))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EvalConfig;

    fn rows() -> Vec<MappingRow> {
        let stack = EvalStack::build(EvalConfig::tiny(111)).unwrap();
        evaluate_mappings(&stack)
    }

    #[test]
    fn exact_has_perfect_precision() {
        let rows = rows();
        let exact = rows.iter().find(|r| r.method == "EXACT").unwrap();
        assert!((exact.prf.precision - 100.0).abs() < 1e-9, "{:?}", exact.prf);
    }

    #[test]
    fn edit_recall_at_least_exact() {
        let rows = rows();
        let exact = rows.iter().find(|r| r.method == "EXACT").unwrap();
        let edit = rows.iter().find(|r| r.method == "EDIT").unwrap();
        assert!(
            edit.prf.recall >= exact.prf.recall,
            "EDIT {:?} vs EXACT {:?}",
            edit.prf,
            exact.prf
        );
    }

    #[test]
    fn all_rows_have_sane_ranges() {
        for r in rows() {
            assert!((0.0..=100.0).contains(&r.prf.precision), "{r:?}");
            assert!((0.0..=100.0).contains(&r.prf.recall), "{r:?}");
            assert!(r.mappable > 0, "{r:?}");
        }
    }

    #[test]
    fn threshold_sweep_trades_recall_for_precision() {
        let stack = EvalStack::build(EvalConfig::tiny(112)).unwrap();
        let sweep = embedding_threshold_sweep(&stack, &[0.0, 0.7, 0.9, 0.99]);
        assert_eq!(sweep.len(), 4);
        // Recall is monotonically non-increasing in the threshold…
        for w in sweep.windows(2) {
            assert!(w[0].1.recall + 1e-9 >= w[1].1.recall, "{sweep:?}");
        }
        // …and a high threshold should not lower precision below the
        // accept-everything setting.
        assert!(sweep.last().unwrap().1.precision + 1e-9 >= sweep[0].1.precision, "{sweep:?}");
    }

    #[test]
    fn embedding_precision_stays_high() {
        let rows = rows();
        let emb = rows.iter().find(|r| r.method == "EMBEDDING").unwrap();
        assert!(
            emb.prf.precision > 80.0,
            "embedding mapper precision collapsed: {:?}",
            emb.prf
        );
    }
}
