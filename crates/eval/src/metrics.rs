//! Set-based retrieval metrics.

use std::collections::HashSet;
use std::hash::Hash;

/// A precision / recall / F1 triple (percentages, as the paper reports).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    /// Precision, 0–100.
    pub precision: f64,
    /// Recall, 0–100.
    pub recall: f64,
    /// F1 (harmonic mean), 0–100.
    pub f1: f64,
}

impl Prf {
    /// Build from precision and recall (0–100 scales).
    pub fn new(precision: f64, recall: f64) -> Self {
        Self { precision, recall, f1: f1(precision, recall) }
    }
}

/// Harmonic mean of precision and recall (any consistent scale).
pub fn f1(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Precision@k and Recall@k of a ranked list against a gold set
/// (fractions in `[0, 1]`).
///
/// * `P@k` = relevant among the top *min(k, returned)* / that many
///   returned (an empty return yields 0).
/// * `R@k` = relevant among the top k / |gold| (an empty gold set yields
///   1 if nothing was expected — by convention 0 here, callers filter
///   gold-empty queries).
pub fn precision_recall_at_k<T: Eq + Hash + Copy>(
    ranked: &[T],
    gold: &HashSet<T>,
    k: usize,
) -> (f64, f64) {
    let top: Vec<T> = ranked.iter().take(k).copied().collect();
    if top.is_empty() || gold.is_empty() {
        return (0.0, 0.0);
    }
    let hits = top.iter().filter(|t| gold.contains(t)).count();
    (hits as f64 / top.len() as f64, hits as f64 / gold.len() as f64)
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Deterministic percentile-bootstrap 95% confidence interval of the mean.
///
/// Returns `(lo, hi)`; degenerates to `(mean, mean)` for fewer than two
/// observations.
pub fn bootstrap_ci(values: &[f64], iterations: usize, seed: u64) -> (f64, f64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if values.len() < 2 {
        let m = mean(values);
        return (m, m);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..iterations.max(10))
        .map(|_| {
            let total: f64 =
                (0..values.len()).map(|_| values[rng.gen_range(0..values.len())]).sum();
            total / values.len() as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let lo = means[(means.len() as f64 * 0.025) as usize];
    let hi = means[((means.len() as f64 * 0.975) as usize).min(means.len() - 1)];
    (lo, hi)
}

/// Normalized discounted cumulative gain at `k` over graded relevance.
///
/// `gains` maps items to graded relevance (missing = 0). The ideal ranking
/// is the gains sorted descending; an empty or all-zero gain set yields 0.
pub fn ndcg_at_k<T: Eq + std::hash::Hash + Copy>(
    ranked: &[T],
    gains: &std::collections::HashMap<T, f64>,
    k: usize,
) -> f64 {
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, t)| gains.get(t).copied().unwrap_or(0.0) / ((i + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = gains.values().copied().filter(|&g| g > 0.0).collect();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 =
        ideal.iter().take(k).enumerate().map(|(i, g)| g / ((i + 2) as f64).log2()).sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_basics() {
        assert_eq!(f1(0.0, 0.0), 0.0);
        assert!((f1(100.0, 100.0) - 100.0).abs() < 1e-12);
        assert!((f1(100.0, 50.0) - 66.6666).abs() < 1e-2);
    }

    #[test]
    fn prf_builder() {
        let p = Prf::new(90.0, 80.0);
        assert!((p.f1 - f1(90.0, 80.0)).abs() < 1e-12);
    }

    #[test]
    fn p_at_k_counts_top_k_only() {
        let gold: HashSet<u32> = [1, 2, 3].into_iter().collect();
        let ranked = vec![1u32, 9, 2, 8, 3];
        let (p, r) = precision_recall_at_k(&ranked, &gold, 3);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shorter_return_than_k() {
        let gold: HashSet<u32> = [1].into_iter().collect();
        let ranked = vec![1u32];
        let (p, r) = precision_recall_at_k(&ranked, &gold, 10);
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn empty_cases() {
        let gold: HashSet<u32> = [1].into_iter().collect();
        assert_eq!(precision_recall_at_k::<u32>(&[], &gold, 5), (0.0, 0.0));
        let empty: HashSet<u32> = HashSet::new();
        assert_eq!(precision_recall_at_k(&[1u32], &empty, 5), (0.0, 0.0));
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let gains: std::collections::HashMap<u32, f64> =
            [(1, 3.0), (2, 2.0), (3, 1.0)].into_iter().collect();
        assert!((ndcg_at_k(&[1u32, 2, 3], &gains, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_inversions() {
        let gains: std::collections::HashMap<u32, f64> =
            [(1, 3.0), (2, 2.0), (3, 1.0)].into_iter().collect();
        let perfect = ndcg_at_k(&[1u32, 2, 3], &gains, 10);
        let inverted = ndcg_at_k(&[3u32, 2, 1], &gains, 10);
        assert!(inverted < perfect);
        assert!(inverted > 0.0);
    }

    #[test]
    fn ndcg_degenerate_cases() {
        let empty: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        assert_eq!(ndcg_at_k(&[1u32, 2], &empty, 5), 0.0);
        let gains: std::collections::HashMap<u32, f64> = [(9, 1.0)].into_iter().collect();
        assert_eq!(ndcg_at_k::<u32>(&[], &gains, 5), 0.0);
    }

    #[test]
    fn ndcg_respects_k() {
        let gains: std::collections::HashMap<u32, f64> = [(1, 1.0)].into_iter().collect();
        // Relevant item at rank 3 with k = 2 contributes nothing.
        assert_eq!(ndcg_at_k(&[7u32, 8, 1], &gains, 2), 0.0);
        assert!(ndcg_at_k(&[7u32, 8, 1], &gains, 3) > 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let values: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let (lo, hi) = bootstrap_ci(&values, 500, 7);
        let m = mean(&values);
        assert!(lo <= m && m <= hi, "{lo} <= {m} <= {hi}");
        assert!(hi - lo < 3.0, "CI too wide: {lo}..{hi}");
    }

    #[test]
    fn bootstrap_ci_is_deterministic() {
        let values = vec![0.2, 0.4, 0.9, 0.1, 0.5, 0.6];
        assert_eq!(bootstrap_ci(&values, 200, 3), bootstrap_ci(&values, 200, 3));
    }

    #[test]
    fn bootstrap_ci_degenerate_inputs() {
        assert_eq!(bootstrap_ci(&[], 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci(&[0.7], 100, 1), (0.7, 0.7));
    }

    #[test]
    fn bootstrap_ci_narrows_with_constant_data() {
        let values = vec![0.5; 40];
        let (lo, hi) = bootstrap_ci(&values, 200, 5);
        assert_eq!((lo, hi), (0.5, 0.5));
    }
}
