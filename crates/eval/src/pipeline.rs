//! One-stop construction of the experimental stack.
//!
//! Everything expensive — world generation, corpus generation, mention
//! counting, embedding training, ingestion — happens once in
//! [`EvalStack::build`] and is shared by the Table 1/2/3 evaluators, the
//! examples, and the benchmarks.

use std::sync::Arc;

use medkb_core::{ingest, IngestOutput, MappingMethod, QueryRelaxer, RelaxConfig};
use medkb_corpus::{Corpus, CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_embed::{SgnsConfig, SifModel, WordVectors};
use medkb_snomed::{MedWorld, WorldConfig};
use medkb_types::Result;

/// Configuration of the full stack.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// In-domain corpus parameters.
    pub corpus: CorpusConfig,
    /// Embedding training parameters (in-domain).
    pub sgns: SgnsConfig,
    /// Out-of-domain corpus size (for the pre-trained baseline).
    pub ood_docs: usize,
    /// Base relaxation configuration (mapping method is varied by the
    /// evaluators).
    pub relax: RelaxConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            corpus: CorpusConfig::default(),
            sgns: SgnsConfig::default(),
            ood_docs: 800,
            relax: RelaxConfig::default(),
        }
    }
}

impl EvalConfig {
    /// A fast configuration for unit tests: small world, small corpus,
    /// quick embeddings.
    pub fn tiny(seed: u64) -> Self {
        Self {
            world: WorldConfig::tiny(seed),
            corpus: CorpusConfig::tiny(seed ^ 0x11),
            sgns: SgnsConfig::tiny(seed ^ 0x22),
            ood_docs: 150,
            relax: RelaxConfig::default(),
        }
    }

    /// The paper-scale configuration used by the benchmark binaries.
    pub fn paper(seed: u64) -> Self {
        Self {
            world: WorldConfig {
                seed,
                snomed: medkb_snomed::SnomedConfig {
                    seed: seed ^ 0xA1,
                    ..medkb_snomed::SnomedConfig::default()
                },
                ..WorldConfig::default()
            },
            corpus: CorpusConfig { seed: seed ^ 0xB2, ..CorpusConfig::default() },
            sgns: SgnsConfig { seed: seed ^ 0xC3, epochs: 4, ..SgnsConfig::default() },
            ood_docs: 800,
            relax: RelaxConfig::default(),
        }
    }
}

/// The shared experimental stack.
pub struct EvalStack {
    /// The generated world (terminology, oracle, KB, gold data).
    pub world: MedWorld,
    /// In-domain corpus.
    pub corpus: Corpus,
    /// Mention counts of the in-domain corpus against the terminology.
    pub counts: MentionCounts,
    /// SIF model trained on the in-domain corpus.
    pub sif_trained: Arc<SifModel>,
    /// SIF model trained on the out-of-domain corpus (the "pre-trained
    /// biomedical vectors" stand-in).
    pub sif_pretrained: Arc<SifModel>,
    /// Ingestion output with the default (embedding) mapping.
    pub ingested: IngestOutput,
    /// The configuration the stack was built from.
    pub config: EvalConfig,
}

impl EvalStack {
    /// Build the full stack.
    pub fn build(config: EvalConfig) -> Result<Self> {
        Self::build_with_cache(config, None)
    }

    /// Build the full stack, caching the trained embedding models (the
    /// slowest deterministic step) under `cache_dir` keyed by the
    /// generation seeds. A second build with the same configuration loads
    /// the models instead of retraining.
    pub fn build_cached(config: EvalConfig, cache_dir: &std::path::Path) -> Result<Self> {
        Self::build_with_cache(config, Some(cache_dir))
    }

    fn build_with_cache(config: EvalConfig, cache_dir: Option<&std::path::Path>) -> Result<Self> {
        let threads = config.relax.parallel.effective_threads();
        // One registry (when configured) observes every stage of the build:
        // mention counting, SGNS training, and ingestion all record into
        // `config.relax.obs`.
        let obs = config.relax.obs.registry();
        let world = MedWorld::generate(&config.world);
        let generator = CorpusGenerator::new(&world.terminology, &world.oracle);
        let corpus = generator.generate(&config.corpus);
        let counts = MentionCounts::count_with_threads_obs(
            &corpus,
            &world.terminology.ekg,
            threads,
            obs,
        );

        // "v2": the minibatch trainer produces different (still
        // deterministic) vectors than the v1 online trainer; the batch size
        // is part of the key because it changes the result.
        let key = format!(
            "v2-w{}-s{}-c{}-d{}-e{}-g{}-b{}",
            config.world.seed,
            config.world.snomed.seed,
            config.corpus.seed,
            config.corpus.docs,
            config.sgns.seed,
            config.sgns.epochs,
            config.sgns.batch_sentences,
        );
        let cached = |name: &str| cache_dir.map(|d| d.join(format!("{key}-{name}.tsv")));
        let load_or =
            |path: Option<std::path::PathBuf>, train: &dyn Fn() -> SifModel| -> SifModel {
                if let Some(p) = &path {
                    if let Ok(doc) = std::fs::read_to_string(p) {
                        if let Ok(model) = SifModel::read_tsv(&doc) {
                            return model;
                        }
                    }
                }
                let model = train();
                if let Some(p) = &path {
                    let _ = std::fs::create_dir_all(p.parent().unwrap_or(p));
                    let _ = std::fs::write(p, model.write_tsv());
                }
                model
            };

        let sif_trained = Arc::new(load_or(cached("trained"), &|| {
            let wv = WordVectors::train_with_threads_obs(&corpus, &config.sgns, threads, obs);
            SifModel::fit(wv, &corpus, 1e-3)
        }));
        let sif_pretrained = Arc::new(load_or(cached("pretrained"), &|| {
            let ood = CorpusGenerator::out_of_domain(config.sgns.seed ^ 0x77, config.ood_docs);
            let wv_ood = WordVectors::train_with_threads_obs(&ood, &config.sgns, threads, obs);
            SifModel::fit(wv_ood, &ood, 1e-3)
        }));

        let ingested = ingest(
            &world.kb,
            world.terminology.ekg.clone(),
            &counts,
            Some(sif_trained.clone()),
            &config.relax,
        )?;

        Ok(Self { world, corpus, counts, sif_trained, sif_pretrained, ingested, config })
    }

    /// A relaxer over the shared ingestion with the given runtime
    /// configuration (the ingestion-time knobs — mapping, shortcuts,
    /// tf-idf, frequency mode — are fixed by the stack).
    pub fn relaxer(&self, config: RelaxConfig) -> QueryRelaxer {
        QueryRelaxer::new(self.ingested.clone(), config)
    }

    /// Run a fresh ingestion with a different mapping method (Table 1
    /// compares them).
    pub fn ingest_with(&self, mapping: MappingMethod) -> Result<IngestOutput> {
        self.ingest_with_config(&RelaxConfig { mapping, ..self.config.relax.clone() })
    }

    /// Run a fresh ingestion under an arbitrary configuration (the
    /// ablation harness varies ingest-time knobs: shortcuts, tf-idf,
    /// frequency mode).
    pub fn ingest_with_config(&self, config: &RelaxConfig) -> Result<IngestOutput> {
        let sif = match config.mapping {
            MappingMethod::Embedding { .. } => Some(self.sif_trained.clone()),
            _ => None,
        };
        ingest(&self.world.kb, self.world.terminology.ekg.clone(), &self.counts, sif, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_builds_end_to_end() {
        let stack = EvalStack::build(EvalConfig::tiny(101)).unwrap();
        assert!(stack.world.kb.instance_count() > 50);
        assert!(!stack.ingested.mappings.is_empty());
        assert!(stack.ingested.shortcuts_added > 0);
        assert!(stack.sif_trained.vectors().vocab_size() > 50);
    }

    #[test]
    fn relaxer_answers_a_query() {
        let stack = EvalStack::build(EvalConfig::tiny(102)).unwrap();
        let relaxer = stack.relaxer(stack.config.relax.clone());
        // Use a mapped concept directly.
        let (inst, concept) = stack.ingested.mappings.iter().next().unwrap();
        let _ = inst;
        let res = relaxer
            .relax_concept(concept, Some(stack.world.treatment_context()), 10)
            .unwrap();
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn cached_build_matches_fresh_build() {
        let dir = std::env::temp_dir().join(format!("medkb-stack-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = EvalStack::build_cached(EvalConfig::tiny(104), &dir).unwrap();
        // Second build must hit the cache and produce identical embeddings.
        let b = EvalStack::build_cached(EvalConfig::tiny(104), &dir).unwrap();
        let name = a.world.terminology.ekg.name(a.ingested.flagged.iter().next().copied().unwrap());
        let (va, vb) = (a.sif_trained.embed(name), b.sif_trained.embed(name));
        match (va, vb) {
            (Some(x), Some(y)) => {
                for (p, q) in x.iter().zip(&y) {
                    assert!((p - q).abs() < 1e-4);
                }
            }
            (None, None) => {}
            other => panic!("embedding presence diverged: {other:?}"),
        }
        assert_eq!(a.ingested.mappings.len(), b.ingested.mappings.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_with_other_mapping_differs() {
        let stack = EvalStack::build(EvalConfig::tiny(103)).unwrap();
        let exact = stack.ingest_with(MappingMethod::Exact).unwrap();
        let embed = &stack.ingested;
        // The embedding mapper should map at least as many instances.
        assert!(embed.mappings.len() >= exact.mappings.len());
    }
}
