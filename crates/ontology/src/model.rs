//! Ontology data model and builder.

use std::collections::{HashMap, HashSet};

use medkb_types::{
    Id, IdVec, MedKbError, OntoConceptId, RelationshipId, Result, StringInterner,
};

/// A relationship (role) of the domain ontology with its domain and range
/// constraints.
///
/// The same relationship *name* may occur with several domain/range pairs —
/// Figure 1 has `hasFinding` both as `Indication → Finding` and
/// `Risk → Finding` — so relationships are identified by the full triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relationship {
    /// Role name, e.g. `hasFinding`.
    pub name: Box<str>,
    /// Source concept.
    pub domain: OntoConceptId,
    /// Destination concept.
    pub range: OntoConceptId,
}

/// Builder for [`Ontology`].
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    concepts: StringInterner<OntoConceptId>,
    subsumptions: Vec<(OntoConceptId, OntoConceptId)>,
    relationships: Vec<Relationship>,
}

impl OntologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a concept by name.
    pub fn concept(&mut self, name: &str) -> OntoConceptId {
        self.concepts.intern(name)
    }

    /// Record that `child` is a sub-concept of `parent` within the TBox.
    pub fn sub_concept(&mut self, child: OntoConceptId, parent: OntoConceptId) {
        self.subsumptions.push((child, parent));
    }

    /// Register a relationship `domain --name--> range`.
    pub fn relationship(
        &mut self,
        name: &str,
        domain: OntoConceptId,
        range: OntoConceptId,
    ) -> RelationshipId {
        let id = RelationshipId::from_usize(self.relationships.len());
        self.relationships.push(Relationship { name: name.into(), domain, range });
        id
    }

    /// Number of registered concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of registered relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Validate and freeze.
    ///
    /// # Errors
    /// * Duplicate relationship triples or subsumption pairs.
    /// * Cyclic concept subsumption.
    pub fn build(self) -> Result<Ontology> {
        let n = self.concepts.len();
        let mut triples = HashSet::new();
        for r in &self.relationships {
            if !triples.insert((r.name.clone(), r.domain, r.range)) {
                return Err(MedKbError::invalid(format!(
                    "duplicate relationship {} from {:?} to {:?}",
                    r.name,
                    self.concepts.resolve(r.domain),
                    self.concepts.resolve(r.range)
                )));
            }
        }

        let mut parents: IdVec<OntoConceptId, Vec<OntoConceptId>> = IdVec::filled(Vec::new(), n);
        let mut children: IdVec<OntoConceptId, Vec<OntoConceptId>> = IdVec::filled(Vec::new(), n);
        let mut pairs = HashSet::new();
        for &(child, parent) in &self.subsumptions {
            if child == parent || !pairs.insert((child, parent)) {
                return Err(MedKbError::invalid(format!(
                    "bad subsumption {:?} -> {:?}",
                    self.concepts.resolve(child),
                    self.concepts.resolve(parent)
                )));
            }
            parents[child].push(parent);
            children[parent].push(child);
        }

        // Cycle check via DFS coloring over child -> parent edges.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: IdVec<OntoConceptId, Color> = IdVec::filled(Color::White, n);
        fn dfs(
            c: OntoConceptId,
            parents: &IdVec<OntoConceptId, Vec<OntoConceptId>>,
            color: &mut IdVec<OntoConceptId, Color>,
        ) -> bool {
            color[c] = Color::Gray;
            for &p in &parents[c] {
                match color[p] {
                    Color::Gray => return false,
                    Color::White => {
                        if !dfs(p, parents, color) {
                            return false;
                        }
                    }
                    Color::Black => {}
                }
            }
            color[c] = Color::Black;
            true
        }
        for c in (0..n).map(OntoConceptId::from_usize) {
            if color[c] == Color::White && !dfs(c, &parents, &mut color) {
                return Err(MedKbError::CycleDetected {
                    detail: format!("TBox subsumption around {:?}", self.concepts.resolve(c)),
                });
            }
        }

        // Relationship adjacency per concept (as domain / as range).
        let mut by_domain: IdVec<OntoConceptId, Vec<RelationshipId>> = IdVec::filled(Vec::new(), n);
        let mut by_range: IdVec<OntoConceptId, Vec<RelationshipId>> = IdVec::filled(Vec::new(), n);
        for (i, r) in self.relationships.iter().enumerate() {
            let id = RelationshipId::from_usize(i);
            by_domain[r.domain].push(id);
            by_range[r.range].push(id);
        }

        let relationships: IdVec<RelationshipId, Relationship> =
            self.relationships.into_iter().collect();
        Ok(Ontology {
            concepts: self.concepts,
            relationships,
            parents,
            children,
            by_domain,
            by_range,
        })
    }
}

/// The frozen domain ontology.
#[derive(Debug, Clone)]
pub struct Ontology {
    concepts: StringInterner<OntoConceptId>,
    relationships: IdVec<RelationshipId, Relationship>,
    parents: IdVec<OntoConceptId, Vec<OntoConceptId>>,
    children: IdVec<OntoConceptId, Vec<OntoConceptId>>,
    by_domain: IdVec<OntoConceptId, Vec<RelationshipId>>,
    by_range: IdVec<OntoConceptId, Vec<RelationshipId>>,
}

impl Ontology {
    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Name of `concept`.
    pub fn concept_name(&self, concept: OntoConceptId) -> &str {
        self.concepts.resolve(concept)
    }

    /// Resolve a concept by exact name.
    pub fn lookup_concept(&self, name: &str) -> Option<OntoConceptId> {
        self.concepts.get(name)
    }

    /// The relationship behind `id`.
    pub fn relationship(&self, id: RelationshipId) -> &Relationship {
        &self.relationships[id]
    }

    /// All relationships as `(id, relationship)`.
    pub fn relationships(&self) -> impl Iterator<Item = (RelationshipId, &Relationship)> {
        self.relationships.iter()
    }

    /// All concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = OntoConceptId> {
        (0..self.concepts.len()).map(OntoConceptId::from_usize)
    }

    /// Direct TBox parents of `concept`.
    pub fn concept_parents(&self, concept: OntoConceptId) -> &[OntoConceptId] {
        &self.parents[concept]
    }

    /// Direct TBox children of `concept` — e.g. `Risk`'s children
    /// `Black Box Warning`, `Adverse Effect`, `Contra Indication` in
    /// Figure 1.
    pub fn concept_children(&self, concept: OntoConceptId) -> &[OntoConceptId] {
        &self.children[concept]
    }

    /// All TBox descendants of `concept` (strict).
    pub fn concept_descendants(&self, concept: OntoConceptId) -> Vec<OntoConceptId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<OntoConceptId> = self.children[concept].to_vec();
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                out.push(c);
                stack.extend(self.children[c].iter().copied());
            }
        }
        out
    }

    /// Relationships whose domain is `concept`.
    pub fn relationships_from(&self, concept: OntoConceptId) -> &[RelationshipId] {
        &self.by_domain[concept]
    }

    /// Relationships whose range is `concept`.
    pub fn relationships_to(&self, concept: OntoConceptId) -> &[RelationshipId] {
        &self.by_range[concept]
    }

    /// Whether `anc` strictly subsumes `desc` in the TBox.
    pub fn concept_subsumes(&self, anc: OntoConceptId, desc: OntoConceptId) -> bool {
        if anc == desc {
            return false;
        }
        let mut seen = HashSet::new();
        let mut stack: Vec<OntoConceptId> = self.parents[desc].to_vec();
        while let Some(c) = stack.pop() {
            if c == anc {
                return true;
            }
            if seen.insert(c) {
                stack.extend(self.parents[c].iter().copied());
            }
        }
        false
    }

    /// The canonical `Domain-name-Range` label of a relationship, used as
    /// the context label throughout the paper (e.g.
    /// `Indication-hasFinding-Finding`).
    pub fn relationship_label(&self, id: RelationshipId) -> String {
        let r = &self.relationships[id];
        format!(
            "{}-{}-{}",
            self.concept_name(r.domain),
            r.name,
            self.concept_name(r.range)
        )
    }

    /// Find a relationship by its `Domain-name-Range` label.
    pub fn lookup_relationship(&self, label: &str) -> Option<RelationshipId> {
        self.relationships().find(|(id, _)| self.relationship_label(*id) == label).map(|(id, _)| id)
    }

    /// Map each relationship name to its ids (a name may be reused across
    /// domain/range pairs).
    pub fn relationships_named(&self, name: &str) -> Vec<RelationshipId> {
        self.relationships
            .iter()
            .filter(|(_, r)| &*r.name == name)
            .map(|(id, _)| id)
            .collect()
    }

    /// Group relationships by name.
    pub fn relationship_name_index(&self) -> HashMap<&str, Vec<RelationshipId>> {
        let mut m: HashMap<&str, Vec<RelationshipId>> = HashMap::new();
        for (id, r) in self.relationships.iter() {
            m.entry(&r.name).or_default().push(id);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Ontology {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        let risk = b.concept("Risk");
        let finding = b.concept("Finding");
        let bbw = b.concept("BlackBoxWarning");
        let ae = b.concept("AdverseEffect");
        let ci = b.concept("ContraIndication");
        b.sub_concept(bbw, risk);
        b.sub_concept(ae, risk);
        b.sub_concept(ci, risk);
        b.relationship("treat", drug, indication);
        b.relationship("cause", drug, risk);
        b.relationship("hasFinding", indication, finding);
        b.relationship("hasFinding", risk, finding);
        b.build().unwrap()
    }

    #[test]
    fn builds_figure1_fragment() {
        let o = figure1();
        assert_eq!(o.concept_count(), 7);
        assert_eq!(o.relationship_count(), 4);
    }

    #[test]
    fn same_name_different_triples_allowed() {
        let o = figure1();
        assert_eq!(o.relationships_named("hasFinding").len(), 2);
    }

    #[test]
    fn duplicate_triple_rejected() {
        let mut b = OntologyBuilder::new();
        let a = b.concept("A");
        let c = b.concept("B");
        b.relationship("r", a, c);
        b.relationship("r", a, c);
        assert!(b.build().is_err());
    }

    #[test]
    fn relationship_label_format() {
        let o = figure1();
        let risk = o.lookup_concept("Risk").unwrap();
        let to_finding = o
            .relationships_from(risk)
            .iter()
            .map(|&id| o.relationship_label(id))
            .collect::<Vec<_>>();
        assert_eq!(to_finding, vec!["Risk-hasFinding-Finding"]);
        assert!(o.lookup_relationship("Risk-hasFinding-Finding").is_some());
        assert!(o.lookup_relationship("Risk-hasFinding-Drug").is_none());
    }

    #[test]
    fn finding_is_range_of_two_relationships() {
        let o = figure1();
        let finding = o.lookup_concept("Finding").unwrap();
        assert_eq!(o.relationships_to(finding).len(), 2);
    }

    #[test]
    fn risk_descendants_per_example3() {
        let o = figure1();
        let risk = o.lookup_concept("Risk").unwrap();
        let mut kids: Vec<&str> =
            o.concept_children(risk).iter().map(|&c| o.concept_name(c)).collect();
        kids.sort_unstable();
        assert_eq!(kids, vec!["AdverseEffect", "BlackBoxWarning", "ContraIndication"]);
        assert_eq!(o.concept_descendants(risk).len(), 3);
        let bbw = o.lookup_concept("BlackBoxWarning").unwrap();
        assert!(o.concept_subsumes(risk, bbw));
        assert!(!o.concept_subsumes(bbw, risk));
    }

    #[test]
    fn subsumption_cycle_rejected() {
        let mut b = OntologyBuilder::new();
        let a = b.concept("A");
        let c = b.concept("B");
        b.sub_concept(a, c);
        b.sub_concept(c, a);
        assert!(matches!(b.build(), Err(MedKbError::CycleDetected { .. })));
    }

    #[test]
    fn self_subsumption_rejected() {
        let mut b = OntologyBuilder::new();
        let a = b.concept("A");
        b.sub_concept(a, a);
        assert!(b.build().is_err());
    }
}
