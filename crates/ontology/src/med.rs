//! The *MED*-shaped domain ontology.
//!
//! §7.1: "The ontology corresponding to *MED* consists of 43 concepts and
//! 58 relationships." The real ontology is proprietary, so this module
//! reconstructs a medication/disease/toxicology ontology of exactly that
//! size, embedding the published Figure 1 fragment verbatim:
//!
//! ```text
//! Drug --treat--> Indication --hasFinding--> Finding
//! Drug --cause--> Risk       --hasFinding--> Finding
//! Risk ⊒ {BlackBoxWarning, AdverseEffect, ContraIndication}
//! ```
//!
//! Everything else is filled in with the structures the paper's narrative
//! mentions (dosage, interactions, toxicology, patient education) so that
//! context generation produces a realistic context space: `Finding` alone
//! participates in several contexts, which is what makes per-context
//! frequencies (Example 1) non-trivial.

use crate::model::{Ontology, OntologyBuilder};

/// Concept names of the MED ontology (43 entries).
pub const MED_CONCEPTS: [&str; 43] = [
    "Drug",
    "DrugClass",
    "Indication",
    "Risk",
    "Finding",
    "BlackBoxWarning",
    "AdverseEffect",
    "ContraIndication",
    "Dosage",
    "DoseForm",
    "Route",
    "Interaction",
    "InteractingDrug",
    "Warning",
    "Precaution",
    "Monitoring",
    "Disease",
    "Symptom",
    "BodySystem",
    "Organism",
    "PatientGroup",
    "Pregnancy",
    "Lactation",
    "Pediatric",
    "Geriatric",
    "RenalImpairment",
    "HepaticImpairment",
    "Toxicology",
    "Overdose",
    "Antidote",
    "Poison",
    "MechanismOfAction",
    "Pharmacokinetics",
    "Metabolism",
    "Excretion",
    "Absorption",
    "HalfLife",
    "Brand",
    "Manufacturer",
    "Strength",
    "Package",
    "Evidence",
    "Guideline",
];

/// TBox subsumptions (child, parent) of the MED ontology.
///
/// `Risk` has exactly the three children shown in Figure 1 and discussed in
/// Example 3.
pub const MED_SUBSUMPTIONS: [(&str, &str); 15] = [
    ("BlackBoxWarning", "Risk"),
    ("AdverseEffect", "Risk"),
    ("ContraIndication", "Risk"),
    ("Disease", "Finding"),
    ("Symptom", "Finding"),
    ("Pregnancy", "PatientGroup"),
    ("Lactation", "PatientGroup"),
    ("Pediatric", "PatientGroup"),
    ("Geriatric", "PatientGroup"),
    ("RenalImpairment", "PatientGroup"),
    ("HepaticImpairment", "PatientGroup"),
    ("Overdose", "Toxicology"),
    ("Poison", "Toxicology"),
    ("Metabolism", "Pharmacokinetics"),
    ("Excretion", "Pharmacokinetics"),
];

/// Relationships (name, domain, range) of the MED ontology (58 entries).
pub const MED_RELATIONSHIPS: [(&str, &str, &str); 58] = [
    // —— The Figure 1 fragment ——
    ("treat", "Drug", "Indication"),
    ("cause", "Drug", "Risk"),
    ("hasFinding", "Indication", "Finding"),
    ("hasFinding", "Risk", "Finding"),
    // —— Dosage and administration ——
    ("hasDosage", "Drug", "Dosage"),
    ("hasForm", "Drug", "DoseForm"),
    ("viaRoute", "Dosage", "Route"),
    ("formRoute", "DoseForm", "Route"),
    ("hasStrength", "Drug", "Strength"),
    ("dosageStrength", "Dosage", "Strength"),
    ("packagedAs", "Drug", "Package"),
    ("packageForm", "Package", "DoseForm"),
    // —— Interactions ——
    ("hasInteraction", "Drug", "Interaction"),
    ("withDrug", "Interaction", "InteractingDrug"),
    ("leadsTo", "Interaction", "Risk"),
    ("hasFinding", "Interaction", "Finding"),
    ("interactionSeverity", "Interaction", "Evidence"),
    // —— Risks, warnings, precautions ——
    ("hasWarning", "Drug", "Warning"),
    ("warnsAbout", "Warning", "Finding"),
    ("hasPrecaution", "Drug", "Precaution"),
    ("hasFinding", "Precaution", "Finding"),
    ("appliesTo", "Precaution", "PatientGroup"),
    ("contraindicatedIn", "ContraIndication", "PatientGroup"),
    ("requiresMonitoring", "Drug", "Monitoring"),
    ("monitorsFinding", "Monitoring", "Finding"),
    ("riskEvidence", "Risk", "Evidence"),
    // —— Diseases and symptoms ——
    ("forDisease", "Indication", "Disease"),
    ("hasSymptom", "Disease", "Symptom"),
    ("affects", "Disease", "BodySystem"),
    ("causedBy", "Disease", "Organism"),
    ("presentsIn", "Disease", "PatientGroup"),
    ("comorbidWith", "Disease", "Disease"),
    ("symptomOf", "Symptom", "BodySystem"),
    // —— Drug classification ——
    ("memberOf", "Drug", "DrugClass"),
    ("classTreats", "DrugClass", "Indication"),
    ("classCauses", "DrugClass", "Risk"),
    ("subclassOf", "DrugClass", "DrugClass"),
    // —— Toxicology ——
    ("hasToxicology", "Drug", "Toxicology"),
    ("manifestsAs", "Toxicology", "Finding"),
    ("overdoseOf", "Overdose", "Drug"),
    ("treatedBy", "Overdose", "Antidote"),
    ("antidoteDrug", "Antidote", "Drug"),
    ("poisonOrganism", "Poison", "Organism"),
    ("poisonAffects", "Poison", "BodySystem"),
    // —— Mechanism and pharmacokinetics ——
    ("hasMechanism", "Drug", "MechanismOfAction"),
    ("actsOn", "MechanismOfAction", "BodySystem"),
    ("hasPharmacokinetics", "Drug", "Pharmacokinetics"),
    ("hasHalfLife", "Pharmacokinetics", "HalfLife"),
    ("absorbedVia", "Absorption", "Route"),
    ("hasAbsorption", "Pharmacokinetics", "Absorption"),
    ("metabolizedBy", "Metabolism", "BodySystem"),
    ("excretedVia", "Excretion", "BodySystem"),
    // —— Commercial ——
    ("hasBrand", "Drug", "Brand"),
    ("madeBy", "Brand", "Manufacturer"),
    // —— Evidence and guidelines ——
    ("supportedBy", "Indication", "Evidence"),
    ("recommends", "Guideline", "Drug"),
    ("covers", "Guideline", "Indication"),
    ("guidelineEvidence", "Guideline", "Evidence"),
];

/// Build the MED domain ontology (43 concepts, 58 relationships).
pub fn med_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    for name in MED_CONCEPTS {
        b.concept(name);
    }
    for (child, parent) in MED_SUBSUMPTIONS {
        let c = b.concept(child);
        let p = b.concept(parent);
        b.sub_concept(c, p);
    }
    for (name, domain, range) in MED_RELATIONSHIPS {
        let d = b.concept(domain);
        let r = b.concept(range);
        b.relationship(name, d, r);
    }
    b.build().expect("the MED ontology is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::generate_contexts;

    #[test]
    fn med_has_paper_reported_size() {
        let o = med_ontology();
        assert_eq!(o.concept_count(), 43, "§7.1: 43 concepts");
        assert_eq!(o.relationship_count(), 58, "§7.1: 58 relationships");
    }

    #[test]
    fn relationship_tables_reference_declared_concepts_only() {
        let declared: std::collections::HashSet<&str> = MED_CONCEPTS.into_iter().collect();
        for (_, d, r) in MED_RELATIONSHIPS {
            assert!(declared.contains(d), "undeclared domain {d}");
            assert!(declared.contains(r), "undeclared range {r}");
        }
        for (c, p) in MED_SUBSUMPTIONS {
            assert!(declared.contains(c) && declared.contains(p));
        }
    }

    #[test]
    fn figure1_fragment_present() {
        let o = med_ontology();
        for label in [
            "Drug-treat-Indication",
            "Drug-cause-Risk",
            "Indication-hasFinding-Finding",
            "Risk-hasFinding-Finding",
        ] {
            assert!(o.lookup_relationship(label).is_some(), "missing {label}");
        }
        let risk = o.lookup_concept("Risk").unwrap();
        assert_eq!(o.concept_children(risk).len(), 3, "Example 3: Risk has 3 descendants");
    }

    #[test]
    fn context_space_matches_relationship_count() {
        let o = med_ontology();
        assert_eq!(generate_contexts(&o).len(), 58);
    }

    #[test]
    fn finding_participates_in_multiple_contexts() {
        let o = med_ontology();
        let finding = o.lookup_concept("Finding").unwrap();
        // Indication/Risk/Interaction/Precaution-hasFinding, warnsAbout,
        // monitorsFinding, manifestsAs.
        assert!(o.relationships_to(finding).len() >= 5);
    }
}
