//! TSV persistence for domain ontologies.
//!
//! Same spirit as the terminology's RF2-flavoured exchange format: three
//! simple tab-separated documents so a downstream user can bring their own
//! TBox.
//!
//! * **concepts**: `id <TAB> name`
//! * **subsumptions**: `childId <TAB> parentId`
//! * **relationships**: `name <TAB> domainId <TAB> rangeId`

use std::collections::HashMap;

use medkb_types::{Id, MedKbError, OntoConceptId, Result};

use crate::model::{Ontology, OntologyBuilder};

/// Serialize `ontology` into `(concepts, subsumptions, relationships)` TSV
/// documents.
pub fn to_tsv(ontology: &Ontology) -> (String, String, String) {
    let mut concepts = String::new();
    for c in ontology.concepts() {
        concepts.push_str(&format!("{}\t{}\n", c.as_u32(), ontology.concept_name(c)));
    }
    let mut subs = String::new();
    for c in ontology.concepts() {
        for &p in ontology.concept_parents(c) {
            subs.push_str(&format!("{}\t{}\n", c.as_u32(), p.as_u32()));
        }
    }
    let mut rels = String::new();
    for (_, r) in ontology.relationships() {
        rels.push_str(&format!(
            "{}\t{}\t{}\n",
            r.name,
            r.domain.as_u32(),
            r.range.as_u32()
        ));
    }
    (concepts, subs, rels)
}

/// Parse an ontology from the three TSV documents of [`to_tsv`].
///
/// # Errors
/// [`MedKbError::Corrupt`] on malformed lines or dangling ids, plus the
/// structural errors of [`OntologyBuilder::build`].
pub fn from_tsv(concepts_tsv: &str, subs_tsv: &str, rels_tsv: &str) -> Result<Ontology> {
    let mut builder = OntologyBuilder::new();
    let mut id_map: HashMap<u32, OntoConceptId> = HashMap::new();
    for (lineno, line) in concepts_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let (raw, name) = match (parts.next(), parts.next()) {
            (Some(r), Some(n)) if !n.is_empty() => (r, n),
            _ => {
                return Err(MedKbError::Corrupt {
                    detail: format!("ontology concepts line {}: bad record", lineno + 1),
                })
            }
        };
        let raw: u32 = raw.parse().map_err(|_| MedKbError::Corrupt {
            detail: format!("ontology concepts line {}: bad id {raw:?}", lineno + 1),
        })?;
        let id = builder.concept(name);
        if id_map.insert(raw, id).is_some() {
            return Err(MedKbError::Corrupt {
                detail: format!("ontology concepts line {}: duplicate id {raw}", lineno + 1),
            });
        }
    }
    let resolve = |raw: &str, what: &str, lineno: usize| -> Result<OntoConceptId> {
        let n: u32 = raw.parse().map_err(|_| MedKbError::Corrupt {
            detail: format!("{what} line {lineno}: bad id {raw:?}"),
        })?;
        id_map.get(&n).copied().ok_or_else(|| MedKbError::Corrupt {
            detail: format!("{what} line {lineno}: unknown concept id {n}"),
        })
    };
    for (lineno, line) in subs_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let (c, p) = match (parts.next(), parts.next()) {
            (Some(c), Some(p)) => (c, p),
            _ => {
                return Err(MedKbError::Corrupt {
                    detail: format!("subsumptions line {}: bad record", lineno + 1),
                })
            }
        };
        let (c, p) =
            (resolve(c, "subsumptions", lineno + 1)?, resolve(p, "subsumptions", lineno + 1)?);
        builder.sub_concept(c, p);
    }
    for (lineno, line) in rels_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (name, d, r) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(d), Some(r)) if !n.is_empty() => (n, d, r),
            _ => {
                return Err(MedKbError::Corrupt {
                    detail: format!("relationships line {}: bad record", lineno + 1),
                })
            }
        };
        let (d, r) =
            (resolve(d, "relationships", lineno + 1)?, resolve(r, "relationships", lineno + 1)?);
        builder.relationship(name, d, r);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::med::med_ontology;

    #[test]
    fn med_ontology_roundtrips() {
        let o = med_ontology();
        let (c, s, r) = to_tsv(&o);
        let back = from_tsv(&c, &s, &r).unwrap();
        assert_eq!(back.concept_count(), 43);
        assert_eq!(back.relationship_count(), 58);
        assert!(back.lookup_relationship("Risk-hasFinding-Finding").is_some());
        let risk = back.lookup_concept("Risk").unwrap();
        assert_eq!(back.concept_children(risk).len(), 3);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(from_tsv("x\tA\n", "", "").is_err());
        assert!(from_tsv("1\t\n", "", "").is_err());
        assert!(from_tsv("1\tA\n1\tB\n", "", "").is_err());
        assert!(from_tsv("1\tA\n", "1\t9\n", "").is_err());
        assert!(from_tsv("1\tA\n2\tB\n", "", "r\t1\t9\n").is_err());
        assert!(from_tsv("1\tA\n2\tB\n", "", "\t1\t2\n").is_err());
    }

    #[test]
    fn empty_documents_build_empty_ontology() {
        let o = from_tsv("", "", "").unwrap();
        assert_eq!(o.concept_count(), 0);
        assert_eq!(o.relationship_count(), 0);
    }
}
