//! TSV persistence for domain ontologies.
//!
//! Same spirit as the terminology's RF2-flavoured exchange format: three
//! simple tab-separated documents so a downstream user can bring their own
//! TBox.
//!
//! * **concepts**: `id <TAB> name`
//! * **subsumptions**: `childId <TAB> parentId`
//! * **relationships**: `name <TAB> domainId <TAB> rangeId`

use std::collections::HashMap;

use medkb_types::{Id, OntoConceptId, Result, ValidationReport};

use crate::model::{Ontology, OntologyBuilder};

/// Serialize `ontology` into `(concepts, subsumptions, relationships)` TSV
/// documents.
pub fn to_tsv(ontology: &Ontology) -> (String, String, String) {
    let mut concepts = String::new();
    for c in ontology.concepts() {
        concepts.push_str(&format!("{}\t{}\n", c.as_u32(), ontology.concept_name(c)));
    }
    let mut subs = String::new();
    for c in ontology.concepts() {
        for &p in ontology.concept_parents(c) {
            subs.push_str(&format!("{}\t{}\n", c.as_u32(), p.as_u32()));
        }
    }
    let mut rels = String::new();
    for (_, r) in ontology.relationships() {
        rels.push_str(&format!(
            "{}\t{}\t{}\n",
            r.name,
            r.domain.as_u32(),
            r.range.as_u32()
        ));
    }
    (concepts, subs, rels)
}

/// Parse an ontology from the three TSV documents of [`to_tsv`].
///
/// # Errors
/// [`medkb_types::MedKbError::Validation`] listing **every** malformed
/// line, dangling id, duplicate raw id, and duplicate concept name across
/// the three documents (not just the first defect), plus the structural
/// errors of [`OntologyBuilder::build`] once the documents are clean.
pub fn from_tsv(concepts_tsv: &str, subs_tsv: &str, rels_tsv: &str) -> Result<Ontology> {
    let mut report = ValidationReport::new();
    let mut builder = OntologyBuilder::new();
    let mut id_map: HashMap<u32, OntoConceptId> = HashMap::new();
    // The builder interns concepts by name: a repeated name would silently
    // alias two raw ids onto one concept, so reject the collision.
    let mut name_line: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in concepts_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let (raw, name) = match (parts.next(), parts.next()) {
            (Some(r), Some(n)) if !n.is_empty() => (r, n),
            _ => {
                report.defect("ontology concepts", Some(lineno + 1), "bad record");
                continue;
            }
        };
        let raw: u32 = match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect("ontology concepts", Some(lineno + 1), format!("bad id {raw:?}"));
                continue;
            }
        };
        if let Some(&first) = name_line.get(name) {
            report.defect(
                "ontology concepts",
                Some(lineno + 1),
                format!("duplicate concept name {name:?} (first on line {first})"),
            );
            continue;
        }
        name_line.insert(name.to_string(), lineno + 1);
        let id = builder.concept(name);
        if id_map.insert(raw, id).is_some() {
            report.defect("ontology concepts", Some(lineno + 1), format!("duplicate id {raw}"));
        }
    }
    let resolve = |raw: &str,
                   what: &'static str,
                   lineno: usize,
                   report: &mut ValidationReport|
     -> Option<OntoConceptId> {
        let n: u32 = match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect(what, Some(lineno), format!("bad id {raw:?}"));
                return None;
            }
        };
        let hit = id_map.get(&n).copied();
        if hit.is_none() {
            report.defect(what, Some(lineno), format!("unknown concept id {n}"));
        }
        hit
    };
    for (lineno, line) in subs_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let (c, p) = match (parts.next(), parts.next()) {
            (Some(c), Some(p)) => (c, p),
            _ => {
                report.defect("subsumptions", Some(lineno + 1), "bad record");
                continue;
            }
        };
        let c = resolve(c, "subsumptions", lineno + 1, &mut report);
        let p = resolve(p, "subsumptions", lineno + 1, &mut report);
        if let (Some(c), Some(p)) = (c, p) {
            builder.sub_concept(c, p);
        }
    }
    for (lineno, line) in rels_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (name, d, r) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(d), Some(r)) if !n.is_empty() => (n, d, r),
            _ => {
                report.defect("relationships", Some(lineno + 1), "bad record");
                continue;
            }
        };
        let d = resolve(d, "relationships", lineno + 1, &mut report);
        let r = resolve(r, "relationships", lineno + 1, &mut report);
        if let (Some(d), Some(r)) = (d, r) {
            builder.relationship(name, d, r);
        }
    }
    report.into_result()?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::med::med_ontology;

    #[test]
    fn med_ontology_roundtrips() {
        let o = med_ontology();
        let (c, s, r) = to_tsv(&o);
        let back = from_tsv(&c, &s, &r).unwrap();
        assert_eq!(back.concept_count(), 43);
        assert_eq!(back.relationship_count(), 58);
        assert!(back.lookup_relationship("Risk-hasFinding-Finding").is_some());
        let risk = back.lookup_concept("Risk").unwrap();
        assert_eq!(back.concept_children(risk).len(), 3);
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(from_tsv("x\tA\n", "", "").is_err());
        assert!(from_tsv("1\t\n", "", "").is_err());
        assert!(from_tsv("1\tA\n1\tB\n", "", "").is_err());
        assert!(from_tsv("1\tA\n", "1\t9\n", "").is_err());
        assert!(from_tsv("1\tA\n2\tB\n", "", "r\t1\t9\n").is_err());
        assert!(from_tsv("1\tA\n2\tB\n", "", "\t1\t2\n").is_err());
    }

    #[test]
    fn rejects_duplicate_concept_name() {
        // Interning would silently alias raw ids 1 and 2 onto one concept.
        match from_tsv("1\tA\n2\tA\n", "", "") {
            Err(medkb_types::MedKbError::Validation(r)) => {
                assert!(r.defects()[0].message.contains("duplicate concept name"), "{r}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn reports_every_defect_not_just_the_first() {
        let concepts = "x\tA\n1\tB\n1\tC\n"; // bad id, duplicate raw id
        let subs = "9\t1\n"; // unknown concept id
        let rels = "\t1\t1\nr\tzz\t1\n"; // bad record, bad id
        match from_tsv(concepts, subs, rels) {
            Err(medkb_types::MedKbError::Validation(r)) => {
                assert_eq!(r.len(), 5, "{r}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn empty_documents_build_empty_ontology() {
        let o = from_tsv("", "", "").unwrap();
        assert_eq!(o.concept_count(), 0);
        assert_eq!(o.relationship_count(), 0);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary printable text must error cleanly, never panic.
            #[test]
            fn prop_from_tsv_never_panics(
                concepts in "[\\x20-\\x7e\\t\\n]{0,160}",
                subs in "[\\x20-\\x7e\\t\\n]{0,80}",
                rels in "[\\x20-\\x7e\\t\\n]{0,80}",
            ) {
                let _ = from_tsv(&concepts, &subs, &rels);
            }

            /// Raw bytes (decoded lossily) never panic the loader either.
            #[test]
            fn prop_from_tsv_never_panics_bytes(
                concepts in proptest::collection::vec(any::<u8>(), 0..192),
                subs in proptest::collection::vec(any::<u8>(), 0..96),
                rels in proptest::collection::vec(any::<u8>(), 0..96),
            ) {
                let _ = from_tsv(
                    &String::from_utf8_lossy(&concepts),
                    &String::from_utf8_lossy(&subs),
                    &String::from_utf8_lossy(&rels),
                );
            }
        }
    }
}
