//! The domain ontology (TBox) of the medical knowledge base.
//!
//! §2.1: a KB is given as TBox + ABox; the TBox — called the *domain
//! ontology* — describes the concepts of the domain and the relationships
//! (roles) between them, each relationship constrained by a domain (source)
//! and range (destination) concept. The *context* of a query term is a
//! relationship together with its associated concepts, e.g.
//! `Indication-hasFinding-Finding` (Figure 1).
//!
//! This crate provides:
//!
//! * [`model`] — the ontology data model and builder, including concept
//!   subsumption inside the TBox (Figure 1 shows `Risk` with descendants
//!   `Black Box Warning`, `Adverse Effect`, `Contra Indication`, which
//!   Example 3 aggregates over),
//! * [`context`] — context generation as in Algorithm 1 lines 1–4,
//! * [`med`] — the *MED*-shaped domain ontology used throughout the
//!   evaluation: 43 concepts and 58 relationships (§7.1), embedding the
//!   exact Figure 1 fragment.

#![warn(missing_docs)]

pub mod context;
pub mod io;
pub mod med;
pub mod model;

pub use context::ContextSpec;
pub use model::{Ontology, OntologyBuilder, Relationship};
