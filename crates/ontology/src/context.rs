//! Context generation (Algorithm 1, lines 1–4; §4).
//!
//! A *context* is a relationship together with its domain and range
//! concepts. The set of possible contexts is exactly the set of ontology
//! relationships: context generation traverses the ontology and returns
//! `(domain(r), r, range(r))` for every relationship `r`. Context ids are
//! assigned densely in relationship order, so `ContextId` and
//! `RelationshipId` agree on their raw index — [`ContextSpec`] keeps both
//! for type clarity.

use medkb_types::{ContextId, Id, OntoConceptId, RelationshipId};

use crate::model::Ontology;

/// One possible context of the application: a relationship plus its
/// associated concepts (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSpec {
    /// Dense context id (same raw index as `relationship`).
    pub id: ContextId,
    /// The underlying ontology relationship.
    pub relationship: RelationshipId,
    /// Source concept of the relationship.
    pub domain: OntoConceptId,
    /// Destination concept of the relationship.
    pub range: OntoConceptId,
    /// Canonical label, e.g. `Indication-hasFinding-Finding`.
    pub label: String,
}

/// Generate all possible contexts from the ontology.
///
/// This is the offline step that bootstraps the NLI system's intent space
/// (§4: "we define the set of possible contexts (i.e., possible labels for
/// training data) as the set of relationships").
pub fn generate_contexts(ontology: &Ontology) -> Vec<ContextSpec> {
    ontology
        .relationships()
        .map(|(rid, r)| ContextSpec {
            id: ContextId::new(rid.as_u32()),
            relationship: rid,
            domain: r.domain,
            range: r.range,
            label: ontology.relationship_label(rid),
        })
        .collect()
}

/// Contexts in which a query term belonging to ontology concept `concept`
/// can occur: the relationships whose *range* is the concept (the query
/// term fills the destination slot, as in `[diabetes,
/// Indication-hasFinding-Finding]`), plus — for completeness — those whose
/// range is a TBox ancestor of the concept.
pub fn contexts_for_range_concept(
    ontology: &Ontology,
    contexts: &[ContextSpec],
    concept: OntoConceptId,
) -> Vec<ContextId> {
    contexts
        .iter()
        .filter(|c| c.range == concept || ontology.concept_subsumes(c.range, concept))
        .map(|c| c.id)
        .collect()
}

/// Find a context by its canonical label.
pub fn lookup_context(contexts: &[ContextSpec], label: &str) -> Option<ContextId> {
    contexts.iter().find(|c| c.label == label).map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OntologyBuilder;

    fn figure1() -> Ontology {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        let risk = b.concept("Risk");
        let finding = b.concept("Finding");
        let ae = b.concept("AdverseEffect");
        b.sub_concept(ae, risk);
        b.relationship("treat", drug, indication);
        b.relationship("cause", drug, risk);
        b.relationship("hasFinding", indication, finding);
        b.relationship("hasFinding", risk, finding);
        b.build().unwrap()
    }

    #[test]
    fn one_context_per_relationship() {
        let o = figure1();
        let ctxs = generate_contexts(&o);
        assert_eq!(ctxs.len(), o.relationship_count());
        let labels: Vec<&str> = ctxs.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"Indication-hasFinding-Finding"));
        assert!(labels.contains(&"Risk-hasFinding-Finding"));
        assert!(labels.contains(&"Drug-treat-Indication"));
        assert!(labels.contains(&"Drug-cause-Risk"));
    }

    #[test]
    fn context_ids_align_with_relationship_ids() {
        let o = figure1();
        for c in generate_contexts(&o) {
            assert_eq!(c.id.raw(), c.relationship.raw());
        }
    }

    #[test]
    fn finding_has_two_contexts() {
        let o = figure1();
        let ctxs = generate_contexts(&o);
        let finding = o.lookup_concept("Finding").unwrap();
        let for_finding = contexts_for_range_concept(&o, &ctxs, finding);
        assert_eq!(for_finding.len(), 2);
    }

    #[test]
    fn subsumed_range_concept_inherits_context() {
        let o = figure1();
        let ctxs = generate_contexts(&o);
        // AdverseEffect ⊑ Risk, and Risk is the range of Drug-cause-Risk,
        // so an AdverseEffect term can occur in that context.
        let ae = o.lookup_concept("AdverseEffect").unwrap();
        let for_ae = contexts_for_range_concept(&o, &ctxs, ae);
        let labels: Vec<String> = for_ae
            .iter()
            .map(|&id| ctxs[id.as_usize()].label.clone())
            .collect();
        assert_eq!(labels, vec!["Drug-cause-Risk"]);
    }

    #[test]
    fn lookup_by_label() {
        let o = figure1();
        let ctxs = generate_contexts(&o);
        assert!(lookup_context(&ctxs, "Drug-cause-Risk").is_some());
        assert!(lookup_context(&ctxs, "Drug-cause-Finding").is_none());
    }
}
