//! The knowledge base instance store (ABox).
//!
//! §2.1: "The instances (data) of the given KB are stored separately for
//! query answering" — the paper keeps them in IBM Db2; this crate is the
//! equivalent embedded store. It holds:
//!
//! * typed instances (`"fever"` is an instance of the ontology concept
//!   `Finding`),
//! * relation triples between instances (`aspirin --treat--> ind_42`,
//!   `ind_42 --hasFinding--> fever`), each typed by an ontology
//!   relationship, and
//! * the indexes the online phase needs: name lookup, per-concept instance
//!   lists, and subject/object adjacency for path queries.
//!
//! The [`query`] module walks relationship paths in either direction, which
//! is how the conversational system answers "what drugs treat fever"
//! (follow `Drug-treat-Indication` then `Indication-hasFinding-Finding`
//! backwards from the `fever` instance).

#![warn(missing_docs)]

pub mod io;
pub mod query;
pub mod store;

pub use query::PathQuery;
pub use store::{Instance, Kb, KbBuilder};
