//! TSV persistence for knowledge bases.
//!
//! Two documents alongside the ontology's own serialization
//! (`medkb-ontology::io`):
//!
//! * **instances**: `id <TAB> name <TAB> conceptId`
//! * **triples**: `subjectId <TAB> relationshipId <TAB> objectId`
//!
//! Relationship ids refer to the ontology's dense relationship order, which
//! both serializers preserve.

use std::collections::HashMap;

use medkb_ontology::Ontology;
use medkb_types::{Id, InstanceId, OntoConceptId, RelationshipId, Result, ValidationReport};

use crate::store::{Kb, KbBuilder};

/// Serialize the ABox of `kb` into `(instances, triples)` TSV documents.
pub fn to_tsv(kb: &Kb) -> (String, String) {
    let mut instances = String::new();
    for (id, inst) in kb.instances() {
        instances.push_str(&format!(
            "{}\t{}\t{}\n",
            id.as_u32(),
            inst.name,
            inst.concept.as_u32()
        ));
    }
    let mut triples = String::new();
    for (id, _) in kb.instances() {
        for &(rel, object) in kb.outgoing(id) {
            triples.push_str(&format!(
                "{}\t{}\t{}\n",
                id.as_u32(),
                rel.as_u32(),
                object.as_u32()
            ));
        }
    }
    (instances, triples)
}

/// Parse a KB over `ontology` from the documents of [`to_tsv`].
///
/// # Errors
/// [`medkb_types::MedKbError::Validation`] listing **every** malformed
/// row, unknown concept/relationship id, dangling instance reference, and
/// duplicate instance id across both documents with line numbers (not just
/// the first defect), plus the domain/range violations [`KbBuilder::build`]
/// detects once the documents themselves are clean.
pub fn from_tsv(ontology: Ontology, instances_tsv: &str, triples_tsv: &str) -> Result<Kb> {
    let n_rels = ontology.relationship_count();
    let n_concepts = ontology.concept_count();
    let mut report = ValidationReport::new();
    let mut builder = KbBuilder::new(ontology);
    let mut id_map: HashMap<u32, InstanceId> = HashMap::new();
    for (lineno, line) in instances_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (raw, name, concept) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(n), Some(c)) if !n.is_empty() => (r, n, c),
            _ => {
                report.defect("instances", Some(lineno + 1), "bad record");
                continue;
            }
        };
        let raw: u32 = match raw.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect("instances", Some(lineno + 1), format!("bad id {raw:?}"));
                continue;
            }
        };
        let concept: u32 = match concept.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect(
                    "instances",
                    Some(lineno + 1),
                    format!("bad concept id {concept:?}"),
                );
                continue;
            }
        };
        if concept as usize >= n_concepts {
            report.defect("instances", Some(lineno + 1), format!("unknown concept {concept}"));
            continue;
        }
        let id = builder.instance(name, OntoConceptId::new(concept));
        if id_map.insert(raw, id).is_some() {
            report.defect("instances", Some(lineno + 1), format!("duplicate id {raw}"));
        }
    }
    for (lineno, line) in triples_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (s, r, o) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(r), Some(o)) => (s, r, o),
            _ => {
                report.defect("triples", Some(lineno + 1), "bad record");
                continue;
            }
        };
        let resolve_inst = |raw: &str, report: &mut ValidationReport| -> Option<InstanceId> {
            let n: u32 = match raw.parse() {
                Ok(n) => n,
                Err(_) => {
                    report.defect("triples", Some(lineno + 1), format!("bad id {raw:?}"));
                    return None;
                }
            };
            let hit = id_map.get(&n).copied();
            if hit.is_none() {
                report.defect("triples", Some(lineno + 1), format!("unknown instance {n}"));
            }
            hit
        };
        let rel: u32 = match r.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect("triples", Some(lineno + 1), format!("bad relationship id {r:?}"));
                continue;
            }
        };
        if rel as usize >= n_rels {
            report.defect("triples", Some(lineno + 1), format!("unknown relationship {rel}"));
            continue;
        }
        let (s, o) = (resolve_inst(s, &mut report), resolve_inst(o, &mut report));
        if let (Some(s), Some(o)) = (s, o) {
            builder.triple(s, RelationshipId::new(rel), o);
        }
    }
    report.into_result()?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ontology::OntologyBuilder;

    fn sample() -> Kb {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let finding = b.concept("Finding");
        b.relationship("treats", drug, finding);
        let o = b.build().unwrap();
        let rel = o.lookup_relationship("Drug-treats-Finding").unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (dc, fc) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
        let aspirin = kb.instance("aspirin", dc);
        let fever = kb.instance("fever", fc);
        kb.triple(aspirin, rel, fever);
        kb.build().unwrap()
    }

    #[test]
    fn kb_roundtrips() {
        let kb = sample();
        let (inst, trip) = to_tsv(&kb);
        let back = from_tsv(kb.ontology().clone(), &inst, &trip).unwrap();
        assert_eq!(back.instance_count(), kb.instance_count());
        assert_eq!(back.triple_count(), kb.triple_count());
        let fever = back.lookup_name("fever")[0];
        let rel = back.ontology().lookup_relationship("Drug-treats-Finding").unwrap();
        assert_eq!(back.subjects(fever, rel).len(), 1);
    }

    #[test]
    fn rejects_bad_records() {
        let kb = sample();
        let o = kb.ontology().clone();
        let validation = |r: super::Result<Kb>| {
            matches!(r, Err(medkb_types::MedKbError::Validation(_)))
        };
        assert!(validation(from_tsv(o.clone(), "x\taspirin\t0\n", "")));
        assert!(validation(from_tsv(o.clone(), "0\taspirin\t99\n", "")));
        assert!(validation(from_tsv(o.clone(), "0\taspirin\t0\n", "0\t99\t0\n")));
        assert!(validation(from_tsv(o.clone(), "0\taspirin\t0\n", "0\t0\t5\n")));
        assert!(validation(from_tsv(o, "0\taspirin\t0\n0\tfever\t1\n", ""))); // dup id
    }

    #[test]
    fn reports_every_defect_with_line_numbers() {
        let kb = sample();
        let o = kb.ontology().clone();
        // line 1 bad id, line 2 unknown concept, line 4 duplicate id;
        // triples line 1 unknown instance, line 2 unknown relationship.
        let inst = "x\ta\t0\n1\tb\t99\n2\tc\t0\n2\td\t1\n";
        let trip = "7\t0\t2\n2\t9\t2\n";
        match from_tsv(o, inst, trip) {
            Err(medkb_types::MedKbError::Validation(r)) => {
                assert_eq!(r.len(), 5, "{r}");
                let lines: Vec<_> = r.defects().iter().map(|d| (d.document, d.line)).collect();
                assert_eq!(
                    lines,
                    vec![
                        ("instances", Some(1)),
                        ("instances", Some(2)),
                        ("instances", Some(4)),
                        ("triples", Some(1)),
                        ("triples", Some(2)),
                    ]
                );
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn domain_violation_still_caught_after_load() {
        let kb = sample();
        let o = kb.ontology().clone();
        // fever (Finding) used as a treats-subject violates the domain.
        let inst = "0\taspirin\t0\n1\tfever\t1\n";
        let trip = "1\t0\t0\n";
        assert!(from_tsv(o, inst, trip).is_err());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary printable text must error cleanly, never panic.
            #[test]
            fn prop_from_tsv_never_panics(
                inst in "[\\x20-\\x7e\\t\\n]{0,200}",
                trip in "[\\x20-\\x7e\\t\\n]{0,120}",
            ) {
                let o = sample().ontology().clone();
                let _ = from_tsv(o, &inst, &trip);
            }

            /// Raw bytes (decoded lossily) never panic the loader either.
            #[test]
            fn prop_from_tsv_never_panics_bytes(
                inst in proptest::collection::vec(any::<u8>(), 0..256),
                trip in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let o = sample().ontology().clone();
                let _ = from_tsv(o, &String::from_utf8_lossy(&inst), &String::from_utf8_lossy(&trip));
            }
        }
    }
}
