//! TSV persistence for knowledge bases.
//!
//! Two documents alongside the ontology's own serialization
//! (`medkb-ontology::io`):
//!
//! * **instances**: `id <TAB> name <TAB> conceptId`
//! * **triples**: `subjectId <TAB> relationshipId <TAB> objectId`
//!
//! Relationship ids refer to the ontology's dense relationship order, which
//! both serializers preserve.

use std::collections::HashMap;

use medkb_ontology::Ontology;
use medkb_types::{Id, InstanceId, MedKbError, OntoConceptId, RelationshipId, Result};

use crate::store::{Kb, KbBuilder};

/// Serialize the ABox of `kb` into `(instances, triples)` TSV documents.
pub fn to_tsv(kb: &Kb) -> (String, String) {
    let mut instances = String::new();
    for (id, inst) in kb.instances() {
        instances.push_str(&format!(
            "{}\t{}\t{}\n",
            id.as_u32(),
            inst.name,
            inst.concept.as_u32()
        ));
    }
    let mut triples = String::new();
    for (id, _) in kb.instances() {
        for &(rel, object) in kb.outgoing(id) {
            triples.push_str(&format!(
                "{}\t{}\t{}\n",
                id.as_u32(),
                rel.as_u32(),
                object.as_u32()
            ));
        }
    }
    (instances, triples)
}

/// Parse a KB over `ontology` from the documents of [`to_tsv`].
///
/// # Errors
/// [`MedKbError::Corrupt`] on malformed lines or dangling ids, plus the
/// domain/range violations [`KbBuilder::build`] detects.
pub fn from_tsv(ontology: Ontology, instances_tsv: &str, triples_tsv: &str) -> Result<Kb> {
    let n_rels = ontology.relationship_count();
    let n_concepts = ontology.concept_count();
    let mut builder = KbBuilder::new(ontology);
    let mut id_map: HashMap<u32, InstanceId> = HashMap::new();
    for (lineno, line) in instances_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (raw, name, concept) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(n), Some(c)) if !n.is_empty() => (r, n, c),
            _ => {
                return Err(MedKbError::Corrupt {
                    detail: format!("instances line {}: bad record", lineno + 1),
                })
            }
        };
        let raw: u32 = raw.parse().map_err(|_| MedKbError::Corrupt {
            detail: format!("instances line {}: bad id {raw:?}", lineno + 1),
        })?;
        let concept: u32 = concept.parse().map_err(|_| MedKbError::Corrupt {
            detail: format!("instances line {}: bad concept id {concept:?}", lineno + 1),
        })?;
        if concept as usize >= n_concepts {
            return Err(MedKbError::Corrupt {
                detail: format!("instances line {}: unknown concept {concept}", lineno + 1),
            });
        }
        let id = builder.instance(name, OntoConceptId::new(concept));
        if id_map.insert(raw, id).is_some() {
            return Err(MedKbError::Corrupt {
                detail: format!("instances line {}: duplicate id {raw}", lineno + 1),
            });
        }
    }
    for (lineno, line) in triples_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (s, r, o) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(r), Some(o)) => (s, r, o),
            _ => {
                return Err(MedKbError::Corrupt {
                    detail: format!("triples line {}: bad record", lineno + 1),
                })
            }
        };
        let resolve_inst = |raw: &str| -> Result<InstanceId> {
            let n: u32 = raw.parse().map_err(|_| MedKbError::Corrupt {
                detail: format!("triples line {}: bad id {raw:?}", lineno + 1),
            })?;
            id_map.get(&n).copied().ok_or_else(|| MedKbError::Corrupt {
                detail: format!("triples line {}: unknown instance {n}", lineno + 1),
            })
        };
        let rel: u32 = r.parse().map_err(|_| MedKbError::Corrupt {
            detail: format!("triples line {}: bad relationship id {r:?}", lineno + 1),
        })?;
        if rel as usize >= n_rels {
            return Err(MedKbError::Corrupt {
                detail: format!("triples line {}: unknown relationship {rel}", lineno + 1),
            });
        }
        let (s, o) = (resolve_inst(s)?, resolve_inst(o)?);
        builder.triple(s, RelationshipId::new(rel), o);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ontology::OntologyBuilder;

    fn sample() -> Kb {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let finding = b.concept("Finding");
        b.relationship("treats", drug, finding);
        let o = b.build().unwrap();
        let rel = o.lookup_relationship("Drug-treats-Finding").unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (dc, fc) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
        let aspirin = kb.instance("aspirin", dc);
        let fever = kb.instance("fever", fc);
        kb.triple(aspirin, rel, fever);
        kb.build().unwrap()
    }

    #[test]
    fn kb_roundtrips() {
        let kb = sample();
        let (inst, trip) = to_tsv(&kb);
        let back = from_tsv(kb.ontology().clone(), &inst, &trip).unwrap();
        assert_eq!(back.instance_count(), kb.instance_count());
        assert_eq!(back.triple_count(), kb.triple_count());
        let fever = back.lookup_name("fever")[0];
        let rel = back.ontology().lookup_relationship("Drug-treats-Finding").unwrap();
        assert_eq!(back.subjects(fever, rel).len(), 1);
    }

    #[test]
    fn rejects_bad_records() {
        let kb = sample();
        let o = kb.ontology().clone();
        assert!(from_tsv(o.clone(), "x\taspirin\t0\n", "").is_err());
        assert!(from_tsv(o.clone(), "0\taspirin\t99\n", "").is_err());
        assert!(from_tsv(o.clone(), "0\taspirin\t0\n", "0\t99\t0\n").is_err());
        assert!(from_tsv(o.clone(), "0\taspirin\t0\n", "0\t0\t5\n").is_err());
        assert!(from_tsv(o, "0\taspirin\t0\n0\tfever\t1\n", "").is_err()); // dup id
    }

    #[test]
    fn domain_violation_still_caught_after_load() {
        let kb = sample();
        let o = kb.ontology().clone();
        // fever (Finding) used as a treats-subject violates the domain.
        let inst = "0\taspirin\t0\n1\tfever\t1\n";
        let trip = "1\t0\t0\n";
        assert!(from_tsv(o, inst, trip).is_err());
    }
}
