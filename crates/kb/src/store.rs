//! Instance storage and indexes.

use std::collections::HashMap;

use medkb_ontology::Ontology;
use medkb_text::normalize;
use medkb_types::{
    Id, IdVec, InstanceId, MedKbError, OntoConceptId, RelationshipId, Result,
};

/// A typed instance of the knowledge base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Display name as stored in the KB, e.g. `"renal impairment"`.
    pub name: Box<str>,
    /// The ontology concept this instance belongs to.
    pub concept: OntoConceptId,
}

/// Builder for [`Kb`].
#[derive(Debug)]
pub struct KbBuilder {
    ontology: Ontology,
    instances: Vec<Instance>,
    triples: Vec<(InstanceId, RelationshipId, InstanceId)>,
}

impl KbBuilder {
    /// Start building a KB over `ontology`.
    pub fn new(ontology: Ontology) -> Self {
        Self { ontology, instances: Vec::new(), triples: Vec::new() }
    }

    /// The ontology being built against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Add an instance of `concept`, returning its id. Duplicate names are
    /// allowed (medical KBs have homonyms across concepts).
    pub fn instance(&mut self, name: &str, concept: OntoConceptId) -> InstanceId {
        let id = InstanceId::from_usize(self.instances.len());
        self.instances.push(Instance { name: name.into(), concept });
        id
    }

    /// Record the triple `subject --relationship--> object`.
    pub fn triple(
        &mut self,
        subject: InstanceId,
        relationship: RelationshipId,
        object: InstanceId,
    ) {
        self.triples.push((subject, relationship, object));
    }

    /// Number of instances so far.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Validate triples against domain/range constraints and freeze.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if a triple's subject/object concept
    /// does not satisfy the relationship's domain/range constraint
    /// (sub-concepts of the constraint are accepted).
    pub fn build(self) -> Result<Kb> {
        let n = self.instances.len();
        let satisfies = |actual: OntoConceptId, declared: OntoConceptId| {
            actual == declared || self.ontology.concept_subsumes(declared, actual)
        };
        for &(s, r, o) in &self.triples {
            let rel = self.ontology.relationship(r);
            let sc = self.instances[s.as_usize()].concept;
            let oc = self.instances[o.as_usize()].concept;
            if !satisfies(sc, rel.domain) {
                return Err(MedKbError::invalid(format!(
                    "triple subject {:?} has concept {} but {} requires domain {}",
                    self.instances[s.as_usize()].name,
                    self.ontology.concept_name(sc),
                    rel.name,
                    self.ontology.concept_name(rel.domain),
                )));
            }
            if !satisfies(oc, rel.range) {
                return Err(MedKbError::invalid(format!(
                    "triple object {:?} has concept {} but {} requires range {}",
                    self.instances[o.as_usize()].name,
                    self.ontology.concept_name(oc),
                    rel.name,
                    self.ontology.concept_name(rel.range),
                )));
            }
        }

        let mut by_name: HashMap<Box<str>, Vec<InstanceId>> = HashMap::new();
        let mut by_concept: IdVec<OntoConceptId, Vec<InstanceId>> =
            IdVec::filled(Vec::new(), self.ontology.concept_count());
        for (i, inst) in self.instances.iter().enumerate() {
            let id = InstanceId::from_usize(i);
            by_name.entry(normalize(&inst.name).into()).or_default().push(id);
            by_concept[inst.concept].push(id);
        }

        let mut outgoing: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>> =
            IdVec::filled(Vec::new(), n);
        let mut incoming: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>> =
            IdVec::filled(Vec::new(), n);
        for &(s, r, o) in &self.triples {
            outgoing[s].push((r, o));
            incoming[o].push((r, s));
        }

        Ok(Kb {
            ontology: self.ontology,
            instances: self.instances.into_iter().collect(),
            by_name,
            by_concept,
            outgoing,
            incoming,
            triple_count: self.triples.len(),
        })
    }
}

/// The frozen knowledge base: ontology + instances + triples + indexes.
#[derive(Debug, Clone)]
pub struct Kb {
    ontology: Ontology,
    instances: IdVec<InstanceId, Instance>,
    by_name: HashMap<Box<str>, Vec<InstanceId>>,
    by_concept: IdVec<OntoConceptId, Vec<InstanceId>>,
    outgoing: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>>,
    incoming: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>>,
    triple_count: usize,
}

impl Kb {
    /// The domain ontology of this KB.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of stored triples.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// The instance behind `id`.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id]
    }

    /// Display name of `id`.
    pub fn name(&self, id: InstanceId) -> &str {
        &self.instances[id].name
    }

    /// Ontology concept of `id`.
    pub fn concept_of(&self, id: InstanceId) -> OntoConceptId {
        self.instances[id].concept
    }

    /// All instances, in id order.
    pub fn instances(&self) -> impl Iterator<Item = (InstanceId, &Instance)> {
        self.instances.iter()
    }

    /// Instances whose normalized name equals `name` (normalized).
    pub fn lookup_name(&self, name: &str) -> &[InstanceId] {
        self.by_name.get(normalize(name).as_str()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Instances of `concept` (exact concept, not descendants).
    pub fn instances_of(&self, concept: OntoConceptId) -> &[InstanceId] {
        &self.by_concept[concept]
    }

    /// Instances of `concept` or any of its TBox descendants.
    pub fn instances_of_subtree(&self, concept: OntoConceptId) -> Vec<InstanceId> {
        let mut out = self.by_concept[concept].to_vec();
        for d in self.ontology.concept_descendants(concept) {
            out.extend_from_slice(&self.by_concept[d]);
        }
        out
    }

    /// Objects `o` such that `subject --relationship--> o`.
    pub fn objects(&self, subject: InstanceId, relationship: RelationshipId) -> Vec<InstanceId> {
        self.outgoing[subject]
            .iter()
            .filter(|&&(r, _)| r == relationship)
            .map(|&(_, o)| o)
            .collect()
    }

    /// Subjects `s` such that `s --relationship--> object`.
    pub fn subjects(&self, object: InstanceId, relationship: RelationshipId) -> Vec<InstanceId> {
        self.incoming[object]
            .iter()
            .filter(|&&(r, _)| r == relationship)
            .map(|&(_, s)| s)
            .collect()
    }

    /// All outgoing `(relationship, object)` pairs of `subject`.
    pub fn outgoing(&self, subject: InstanceId) -> &[(RelationshipId, InstanceId)] {
        &self.outgoing[subject]
    }

    /// All incoming `(relationship, subject)` pairs of `object`.
    pub fn incoming(&self, object: InstanceId) -> &[(RelationshipId, InstanceId)] {
        &self.incoming[object]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ontology::OntologyBuilder;

    fn tiny() -> Kb {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        let finding = b.concept("Finding");
        let symptom = b.concept("Symptom");
        b.sub_concept(symptom, finding);
        b.relationship("treat", drug, indication);
        b.relationship("hasFinding", indication, finding);
        let o = b.build().unwrap();

        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (drug, indication, finding, symptom) = (
            onto.lookup_concept("Drug").unwrap(),
            onto.lookup_concept("Indication").unwrap(),
            onto.lookup_concept("Finding").unwrap(),
            onto.lookup_concept("Symptom").unwrap(),
        );
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let aspirin = kb.instance("aspirin", drug);
        let ind = kb.instance("fever management", indication);
        let fever = kb.instance("fever", finding);
        let chills = kb.instance("chills", symptom); // Symptom ⊑ Finding
        kb.triple(aspirin, treat, ind);
        kb.triple(ind, has, fever);
        kb.triple(ind, has, chills);
        kb.build().unwrap()
    }

    #[test]
    fn name_lookup_is_normalized() {
        let kb = tiny();
        assert_eq!(kb.lookup_name("FEVER").len(), 1);
        assert_eq!(kb.lookup_name("  fever ").len(), 1);
        assert!(kb.lookup_name("absent").is_empty());
    }

    #[test]
    fn concept_index_and_subtree() {
        let kb = tiny();
        let onto = kb.ontology();
        let finding = onto.lookup_concept("Finding").unwrap();
        assert_eq!(kb.instances_of(finding).len(), 1); // fever only
        assert_eq!(kb.instances_of_subtree(finding).len(), 2); // + chills
    }

    #[test]
    fn forward_and_backward_navigation() {
        let kb = tiny();
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let aspirin = kb.lookup_name("aspirin")[0];
        let fever = kb.lookup_name("fever")[0];
        let ind = kb.objects(aspirin, treat)[0];
        assert_eq!(kb.name(ind), "fever management");
        assert_eq!(kb.subjects(fever, has), vec![ind]);
        assert_eq!(kb.subjects(ind, treat), vec![aspirin]);
    }

    #[test]
    fn range_violation_rejected() {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        b.relationship("treat", drug, indication);
        let o = b.build().unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (drug, _) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Indication").unwrap());
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let a = kb.instance("aspirin", drug);
        let b2 = kb.instance("ibuprofen", drug); // Drug, not Indication
        kb.triple(a, treat, b2);
        assert!(kb.build().is_err());
    }

    #[test]
    fn subconcept_satisfies_range() {
        // chills (Symptom ⊑ Finding) accepted as object of hasFinding.
        let kb = tiny();
        assert_eq!(kb.triple_count(), 3);
    }

    #[test]
    fn duplicate_names_coexist() {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let finding = b.concept("Finding");
        b.relationship("r", drug, finding);
        let o = b.build().unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (d, f) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
        kb.instance("cold", d); // the drug "Cold" brand
        kb.instance("cold", f); // the finding
        let kb = kb.build().unwrap();
        assert_eq!(kb.lookup_name("cold").len(), 2);
    }
}
