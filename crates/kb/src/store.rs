//! Instance storage and indexes.

use std::collections::HashMap;

use medkb_ontology::Ontology;
use medkb_text::normalize;
use medkb_types::{
    Id, IdVec, InstanceId, MedKbError, OntoConceptId, RelationshipId, Result,
};

/// A typed instance of the knowledge base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Display name as stored in the KB, e.g. `"renal impairment"`.
    pub name: Box<str>,
    /// The ontology concept this instance belongs to.
    pub concept: OntoConceptId,
}

/// Builder for [`Kb`].
#[derive(Debug)]
pub struct KbBuilder {
    ontology: Ontology,
    instances: Vec<Instance>,
    triples: Vec<(InstanceId, RelationshipId, InstanceId)>,
}

impl KbBuilder {
    /// Start building a KB over `ontology`.
    pub fn new(ontology: Ontology) -> Self {
        Self { ontology, instances: Vec::new(), triples: Vec::new() }
    }

    /// The ontology being built against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Add an instance of `concept`, returning its id. Duplicate names are
    /// allowed (medical KBs have homonyms across concepts).
    pub fn instance(&mut self, name: &str, concept: OntoConceptId) -> InstanceId {
        let id = InstanceId::from_usize(self.instances.len());
        self.instances.push(Instance { name: name.into(), concept });
        id
    }

    /// Record the triple `subject --relationship--> object`.
    pub fn triple(
        &mut self,
        subject: InstanceId,
        relationship: RelationshipId,
        object: InstanceId,
    ) {
        self.triples.push((subject, relationship, object));
    }

    /// Number of instances so far.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Validate triples against domain/range constraints and freeze.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if a triple's subject/object concept
    /// does not satisfy the relationship's domain/range constraint
    /// (sub-concepts of the constraint are accepted).
    pub fn build(self) -> Result<Kb> {
        let n = self.instances.len();
        let satisfies = |actual: OntoConceptId, declared: OntoConceptId| {
            actual == declared || self.ontology.concept_subsumes(declared, actual)
        };
        for &(s, r, o) in &self.triples {
            let rel = self.ontology.relationship(r);
            let sc = self.instances[s.as_usize()].concept;
            let oc = self.instances[o.as_usize()].concept;
            if !satisfies(sc, rel.domain) {
                return Err(MedKbError::invalid(format!(
                    "triple subject {:?} has concept {} but {} requires domain {}",
                    self.instances[s.as_usize()].name,
                    self.ontology.concept_name(sc),
                    rel.name,
                    self.ontology.concept_name(rel.domain),
                )));
            }
            if !satisfies(oc, rel.range) {
                return Err(MedKbError::invalid(format!(
                    "triple object {:?} has concept {} but {} requires range {}",
                    self.instances[o.as_usize()].name,
                    self.ontology.concept_name(oc),
                    rel.name,
                    self.ontology.concept_name(rel.range),
                )));
            }
        }

        let mut by_name: HashMap<Box<str>, Vec<InstanceId>> = HashMap::new();
        let mut by_concept: IdVec<OntoConceptId, Vec<InstanceId>> =
            IdVec::filled(Vec::new(), self.ontology.concept_count());
        for (i, inst) in self.instances.iter().enumerate() {
            let id = InstanceId::from_usize(i);
            by_name.entry(normalize(&inst.name).into()).or_default().push(id);
            by_concept[inst.concept].push(id);
        }

        let mut outgoing: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>> =
            IdVec::filled(Vec::new(), n);
        let mut incoming: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>> =
            IdVec::filled(Vec::new(), n);
        for &(s, r, o) in &self.triples {
            outgoing[s].push((r, o));
            incoming[o].push((r, s));
        }

        Ok(Kb {
            ontology: self.ontology,
            instances: self.instances.into_iter().collect(),
            retired: IdVec::filled(false, n),
            retired_count: 0,
            by_name,
            by_concept,
            outgoing,
            incoming,
            triple_count: self.triples.len(),
        })
    }
}

/// The frozen knowledge base: ontology + instances + triples + indexes.
///
/// "Frozen" at build time, but supports a narrow delta-mutation surface:
/// instances can be appended, tombstoned ([`Kb::remove_instance`]), and
/// restored; ids are never reused and never shift.
#[derive(Debug, Clone)]
pub struct Kb {
    ontology: Ontology,
    instances: IdVec<InstanceId, Instance>,
    /// Tombstone flags, one per instance slot; retired instances keep
    /// their id but are skipped by iteration and the name/concept indexes.
    retired: IdVec<InstanceId, bool>,
    retired_count: usize,
    by_name: HashMap<Box<str>, Vec<InstanceId>>,
    by_concept: IdVec<OntoConceptId, Vec<InstanceId>>,
    outgoing: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>>,
    incoming: IdVec<InstanceId, Vec<(RelationshipId, InstanceId)>>,
    triple_count: usize,
}

impl Kb {
    /// The domain ontology of this KB.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Number of live (non-retired) instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len() - self.retired_count
    }

    /// Number of instance slots ever allocated, including tombstones.
    /// The next id handed out by [`Kb::add_instance`] is exactly this.
    pub fn instance_slots(&self) -> usize {
        self.instances.len()
    }

    /// Whether `id` is currently tombstoned.
    pub fn is_retired(&self, id: InstanceId) -> bool {
        self.retired[id]
    }

    /// Number of stored triples.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// The instance behind `id`.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id]
    }

    /// Display name of `id`.
    pub fn name(&self, id: InstanceId) -> &str {
        &self.instances[id].name
    }

    /// Ontology concept of `id`.
    pub fn concept_of(&self, id: InstanceId) -> OntoConceptId {
        self.instances[id].concept
    }

    /// All live instances, in id order. Tombstoned slots are skipped.
    pub fn instances(&self) -> impl Iterator<Item = (InstanceId, &Instance)> {
        self.instances.iter().filter(|&(id, _)| !self.retired[id])
    }

    /// Instances whose normalized name equals `name` (normalized).
    pub fn lookup_name(&self, name: &str) -> &[InstanceId] {
        self.by_name.get(normalize(name).as_str()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Instances of `concept` (exact concept, not descendants).
    pub fn instances_of(&self, concept: OntoConceptId) -> &[InstanceId] {
        &self.by_concept[concept]
    }

    /// Instances of `concept` or any of its TBox descendants.
    pub fn instances_of_subtree(&self, concept: OntoConceptId) -> Vec<InstanceId> {
        let mut out = self.by_concept[concept].to_vec();
        for d in self.ontology.concept_descendants(concept) {
            out.extend_from_slice(&self.by_concept[d]);
        }
        out
    }

    /// Objects `o` such that `subject --relationship--> o`.
    pub fn objects(&self, subject: InstanceId, relationship: RelationshipId) -> Vec<InstanceId> {
        self.outgoing[subject]
            .iter()
            .filter(|&&(r, _)| r == relationship)
            .map(|&(_, o)| o)
            .collect()
    }

    /// Subjects `s` such that `s --relationship--> object`.
    pub fn subjects(&self, object: InstanceId, relationship: RelationshipId) -> Vec<InstanceId> {
        self.incoming[object]
            .iter()
            .filter(|&&(r, _)| r == relationship)
            .map(|&(_, s)| s)
            .collect()
    }

    /// All outgoing `(relationship, object)` pairs of `subject`.
    pub fn outgoing(&self, subject: InstanceId) -> &[(RelationshipId, InstanceId)] {
        &self.outgoing[subject]
    }

    /// All incoming `(relationship, subject)` pairs of `object`.
    pub fn incoming(&self, object: InstanceId) -> &[(RelationshipId, InstanceId)] {
        &self.incoming[object]
    }

    /// Append a new instance of `concept`, returning its id. The new id is
    /// the current [`Kb::instance_slots`], so id order is preserved in every
    /// index without re-sorting.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if `concept` is out of range.
    pub fn add_instance(&mut self, name: &str, concept: OntoConceptId) -> Result<InstanceId> {
        if concept.as_usize() >= self.ontology.concept_count() {
            return Err(MedKbError::invalid(format!(
                "add_instance: concept id {} out of range (ontology has {})",
                concept.as_usize(),
                self.ontology.concept_count(),
            )));
        }
        let id = InstanceId::from_usize(self.instances.len());
        self.instances.push(Instance { name: name.into(), concept });
        self.retired.push(false);
        self.by_name.entry(normalize(name).into()).or_default().push(id);
        self.by_concept[concept].push(id);
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        Ok(id)
    }

    /// Tombstone `id`: it drops out of iteration and the name/concept
    /// indexes, and every triple touching it is removed. The slot stays
    /// allocated so later ids do not shift; [`Kb::restore_instance`] brings
    /// the instance (but not its triples) back.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if `id` is out of range or already
    /// retired.
    pub fn remove_instance(&mut self, id: InstanceId) -> Result<()> {
        if id.as_usize() >= self.instances.len() {
            return Err(MedKbError::invalid(format!(
                "remove_instance: id {} out of range",
                id.as_usize()
            )));
        }
        if self.retired[id] {
            return Err(MedKbError::invalid(format!(
                "remove_instance: instance {} is already retired",
                id.as_usize()
            )));
        }
        self.retired[id] = true;
        self.retired_count += 1;

        let key = normalize(&self.instances[id].name);
        if let Some(v) = self.by_name.get_mut(key.as_str()) {
            v.retain(|&i| i != id);
            if v.is_empty() {
                self.by_name.remove(key.as_str());
            }
        }
        self.by_concept[self.instances[id].concept].retain(|&i| i != id);

        // Cascade: drop every triple whose subject or object is `id`.
        // Each removal deletes exactly one occurrence so duplicate triples
        // between the same pair stay balanced; self-loops appear in both
        // taken lists but are one triple.
        let out = std::mem::take(&mut self.outgoing[id]);
        let inc = std::mem::take(&mut self.incoming[id]);
        let mut removed = out.len() + inc.len();
        for &(r, o) in &out {
            if o == id {
                removed -= 1;
                continue;
            }
            let list = &mut self.incoming[o];
            if let Some(pos) = list.iter().position(|&p| p == (r, id)) {
                list.remove(pos);
            }
        }
        for &(r, s) in &inc {
            if s == id {
                continue;
            }
            let list = &mut self.outgoing[s];
            if let Some(pos) = list.iter().position(|&p| p == (r, id)) {
                list.remove(pos);
            }
        }
        self.triple_count -= removed;
        Ok(())
    }

    /// Un-tombstone `id`, re-inserting it into the name/concept indexes at
    /// its id-sorted position. Triples cascaded away by
    /// [`Kb::remove_instance`] are **not** restored.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if `id` is out of range or not
    /// retired.
    pub fn restore_instance(&mut self, id: InstanceId) -> Result<()> {
        if id.as_usize() >= self.instances.len() {
            return Err(MedKbError::invalid(format!(
                "restore_instance: id {} out of range",
                id.as_usize()
            )));
        }
        if !self.retired[id] {
            return Err(MedKbError::invalid(format!(
                "restore_instance: instance {} is not retired",
                id.as_usize()
            )));
        }
        self.retired[id] = false;
        self.retired_count -= 1;

        let key = normalize(&self.instances[id].name);
        let v = self.by_name.entry(key.into()).or_default();
        let pos = v.partition_point(|&i| i < id);
        v.insert(pos, id);
        let v = &mut self.by_concept[self.instances[id].concept];
        let pos = v.partition_point(|&i| i < id);
        v.insert(pos, id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ontology::OntologyBuilder;

    fn tiny() -> Kb {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        let finding = b.concept("Finding");
        let symptom = b.concept("Symptom");
        b.sub_concept(symptom, finding);
        b.relationship("treat", drug, indication);
        b.relationship("hasFinding", indication, finding);
        let o = b.build().unwrap();

        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (drug, indication, finding, symptom) = (
            onto.lookup_concept("Drug").unwrap(),
            onto.lookup_concept("Indication").unwrap(),
            onto.lookup_concept("Finding").unwrap(),
            onto.lookup_concept("Symptom").unwrap(),
        );
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let aspirin = kb.instance("aspirin", drug);
        let ind = kb.instance("fever management", indication);
        let fever = kb.instance("fever", finding);
        let chills = kb.instance("chills", symptom); // Symptom ⊑ Finding
        kb.triple(aspirin, treat, ind);
        kb.triple(ind, has, fever);
        kb.triple(ind, has, chills);
        kb.build().unwrap()
    }

    #[test]
    fn name_lookup_is_normalized() {
        let kb = tiny();
        assert_eq!(kb.lookup_name("FEVER").len(), 1);
        assert_eq!(kb.lookup_name("  fever ").len(), 1);
        assert!(kb.lookup_name("absent").is_empty());
    }

    #[test]
    fn concept_index_and_subtree() {
        let kb = tiny();
        let onto = kb.ontology();
        let finding = onto.lookup_concept("Finding").unwrap();
        assert_eq!(kb.instances_of(finding).len(), 1); // fever only
        assert_eq!(kb.instances_of_subtree(finding).len(), 2); // + chills
    }

    #[test]
    fn forward_and_backward_navigation() {
        let kb = tiny();
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let aspirin = kb.lookup_name("aspirin")[0];
        let fever = kb.lookup_name("fever")[0];
        let ind = kb.objects(aspirin, treat)[0];
        assert_eq!(kb.name(ind), "fever management");
        assert_eq!(kb.subjects(fever, has), vec![ind]);
        assert_eq!(kb.subjects(ind, treat), vec![aspirin]);
    }

    #[test]
    fn range_violation_rejected() {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let indication = b.concept("Indication");
        b.relationship("treat", drug, indication);
        let o = b.build().unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (drug, _) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Indication").unwrap());
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let a = kb.instance("aspirin", drug);
        let b2 = kb.instance("ibuprofen", drug); // Drug, not Indication
        kb.triple(a, treat, b2);
        assert!(kb.build().is_err());
    }

    #[test]
    fn subconcept_satisfies_range() {
        // chills (Symptom ⊑ Finding) accepted as object of hasFinding.
        let kb = tiny();
        assert_eq!(kb.triple_count(), 3);
    }

    #[test]
    fn remove_instance_tombstones_and_cascades_triples() {
        let mut kb = tiny();
        let ind = kb.lookup_name("fever management")[0];
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let aspirin = kb.lookup_name("aspirin")[0];
        assert_eq!(kb.instance_count(), 4);
        assert_eq!(kb.triple_count(), 3);

        kb.remove_instance(ind).unwrap();
        assert!(kb.is_retired(ind));
        assert_eq!(kb.instance_count(), 3);
        assert_eq!(kb.instance_slots(), 4);
        // All three triples touched `ind` (1 outgoing of aspirin, 2 outgoing
        // of ind itself).
        assert_eq!(kb.triple_count(), 0);
        assert!(kb.objects(aspirin, treat).is_empty());
        assert!(kb.lookup_name("fever management").is_empty());
        assert!(kb.instances().all(|(id, _)| id != ind));
        // Double-retire is an error.
        assert!(kb.remove_instance(ind).is_err());
    }

    #[test]
    fn restore_instance_reinserts_sorted_without_triples() {
        let mut kb = tiny();
        let ind = kb.lookup_name("fever management")[0];
        let indication = kb.ontology().lookup_concept("Indication").unwrap();
        kb.remove_instance(ind).unwrap();
        let late = kb.add_instance("late indication", indication).unwrap();
        kb.restore_instance(ind).unwrap();
        assert!(!kb.is_retired(ind));
        assert_eq!(kb.instance_count(), 5);
        // Restored id sits before the later-added id in the concept index.
        assert_eq!(kb.instances_of(indication), &[ind, late]);
        assert_eq!(kb.lookup_name("fever management"), &[ind]);
        // Triples stay gone.
        assert_eq!(kb.triple_count(), 0);
        // Restoring a live instance is an error.
        assert!(kb.restore_instance(ind).is_err());
    }

    #[test]
    fn add_instance_appends_with_max_id() {
        let mut kb = tiny();
        let finding = kb.ontology().lookup_concept("Finding").unwrap();
        let fever = kb.lookup_name("fever")[0];
        let id = kb.add_instance("FEVER", finding).unwrap();
        assert_eq!(id.as_usize(), 4);
        assert_eq!(kb.instance_count(), 5);
        // Shares the normalized-name bucket with the existing "fever".
        assert_eq!(kb.lookup_name("fever"), &[fever, id]);
        assert_eq!(kb.instances_of(finding), &[fever, id]);
        // Out-of-range concept rejected.
        let bogus = OntoConceptId::from_usize(kb.ontology().concept_count());
        assert!(kb.add_instance("x", bogus).is_err());
    }

    #[test]
    fn duplicate_names_coexist() {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let finding = b.concept("Finding");
        b.relationship("r", drug, finding);
        let o = b.build().unwrap();
        let mut kb = KbBuilder::new(o);
        let onto = kb.ontology();
        let (d, f) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
        kb.instance("cold", d); // the drug "Cold" brand
        kb.instance("cold", f); // the finding
        let kb = kb.build().unwrap();
        assert_eq!(kb.lookup_name("cold").len(), 2);
    }
}
