//! Relationship-path queries over the instance store.
//!
//! The natural-language interfaces ultimately answer questions by walking a
//! short relationship path anchored at an instance. "Which drugs treat
//! fever" anchors at the `fever` instance and walks
//! `Indication-hasFinding-Finding` backwards, then `Drug-treat-Indication`
//! backwards. [`PathQuery`] expresses such walks declaratively.

use std::collections::HashSet;

use medkb_types::{InstanceId, RelationshipId};

use crate::store::Kb;

/// One step of a path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Follow triples `current --rel--> next`.
    Forward(RelationshipId),
    /// Follow triples `next --rel--> current`.
    Backward(RelationshipId),
}

/// A declarative relationship-path query anchored at a set of instances.
///
/// ```
/// # use medkb_ontology::OntologyBuilder;
/// # use medkb_kb::{KbBuilder, PathQuery};
/// # let mut b = OntologyBuilder::new();
/// # let drug = b.concept("Drug");
/// # let finding = b.concept("Finding");
/// # b.relationship("treats", drug, finding);
/// # let o = b.build().unwrap();
/// # let rel = o.lookup_relationship("Drug-treats-Finding").unwrap();
/// # let mut kb = KbBuilder::new(o);
/// # let onto = kb.ontology();
/// # let (dc, fc) = (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
/// # let aspirin = kb.instance("aspirin", dc);
/// # let fever = kb.instance("fever", fc);
/// # kb.triple(aspirin, rel, fever);
/// # let kb = kb.build().unwrap();
/// let drugs = PathQuery::from(fever).backward(rel).run(&kb);
/// assert_eq!(drugs, vec![aspirin]);
/// ```
#[derive(Debug, Clone)]
pub struct PathQuery {
    anchors: Vec<InstanceId>,
    steps: Vec<Step>,
}

impl PathQuery {
    /// Anchor the query at a single instance.
    pub fn from(anchor: InstanceId) -> Self {
        Self { anchors: vec![anchor], steps: Vec::new() }
    }

    /// Anchor the query at several instances (their result sets union).
    pub fn from_all(anchors: impl IntoIterator<Item = InstanceId>) -> Self {
        Self { anchors: anchors.into_iter().collect(), steps: Vec::new() }
    }

    /// Append a forward step.
    pub fn forward(mut self, rel: RelationshipId) -> Self {
        self.steps.push(Step::Forward(rel));
        self
    }

    /// Append a backward step.
    pub fn backward(mut self, rel: RelationshipId) -> Self {
        self.steps.push(Step::Backward(rel));
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the query has no steps (it then returns its anchors).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Execute against `kb`, returning the deduplicated frontier after the
    /// final step, in first-reached order.
    pub fn run(&self, kb: &Kb) -> Vec<InstanceId> {
        let mut frontier: Vec<InstanceId> = Vec::new();
        let mut seen: HashSet<InstanceId> = HashSet::new();
        for &a in &self.anchors {
            if seen.insert(a) {
                frontier.push(a);
            }
        }
        for step in &self.steps {
            let mut next = Vec::new();
            let mut next_seen = HashSet::new();
            for &cur in &frontier {
                let hops = match *step {
                    Step::Forward(rel) => kb.objects(cur, rel),
                    Step::Backward(rel) => kb.subjects(cur, rel),
                };
                for h in hops {
                    if next_seen.insert(h) {
                        next.push(h);
                    }
                }
            }
            frontier = next;
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_kb_test_fixtures::two_hop_kb;

    /// Local fixture module (not a separate crate): a Drug→Indication→
    /// Finding KB with two drugs sharing an indication.
    mod medkb_kb_test_fixtures {
        use crate::store::{Kb, KbBuilder};
        use medkb_ontology::OntologyBuilder;

        pub fn two_hop_kb() -> Kb {
            let mut b = OntologyBuilder::new();
            let drug = b.concept("Drug");
            let indication = b.concept("Indication");
            let finding = b.concept("Finding");
            b.relationship("treat", drug, indication);
            b.relationship("hasFinding", indication, finding);
            let o = b.build().unwrap();
            let mut kb = KbBuilder::new(o);
            let onto = kb.ontology();
            let (dc, ic, fc) = (
                onto.lookup_concept("Drug").unwrap(),
                onto.lookup_concept("Indication").unwrap(),
                onto.lookup_concept("Finding").unwrap(),
            );
            let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
            let has =
                kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
            let aspirin = kb.instance("aspirin", dc);
            let ibuprofen = kb.instance("ibuprofen", dc);
            let amoxicillin = kb.instance("amoxicillin", dc);
            let pain_relief = kb.instance("pain relief", ic);
            let infection = kb.instance("bacterial infection", ic);
            let fever = kb.instance("fever", fc);
            let earache = kb.instance("earache", fc);
            kb.triple(aspirin, treat, pain_relief);
            kb.triple(ibuprofen, treat, pain_relief);
            kb.triple(amoxicillin, treat, infection);
            kb.triple(pain_relief, has, fever);
            kb.triple(infection, has, fever);
            kb.triple(infection, has, earache);
            kb.build().unwrap()
        }
    }

    #[test]
    fn two_hop_backward_walk() {
        let kb = two_hop_kb();
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let fever = kb.lookup_name("fever")[0];
        let drugs = PathQuery::from(fever).backward(has).backward(treat).run(&kb);
        let names: HashSet<&str> = drugs.iter().map(|&d| kb.name(d)).collect();
        assert_eq!(names, HashSet::from(["aspirin", "ibuprofen", "amoxicillin"]));
    }

    #[test]
    fn forward_walk() {
        let kb = two_hop_kb();
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let amoxicillin = kb.lookup_name("amoxicillin")[0];
        let findings = PathQuery::from(amoxicillin).forward(treat).forward(has).run(&kb);
        let names: HashSet<&str> = findings.iter().map(|&f| kb.name(f)).collect();
        assert_eq!(names, HashSet::from(["fever", "earache"]));
    }

    #[test]
    fn empty_query_returns_anchors() {
        let kb = two_hop_kb();
        let fever = kb.lookup_name("fever")[0];
        assert_eq!(PathQuery::from(fever).run(&kb), vec![fever]);
    }

    #[test]
    fn multiple_anchors_union_and_dedup() {
        let kb = two_hop_kb();
        let has = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let fever = kb.lookup_name("fever")[0];
        let earache = kb.lookup_name("earache")[0];
        // Both findings reach "bacterial infection": it must appear once.
        let inds = PathQuery::from_all([fever, earache]).backward(has).run(&kb);
        assert_eq!(inds.len(), 2); // pain relief + bacterial infection
    }

    #[test]
    fn dead_end_yields_empty() {
        let kb = two_hop_kb();
        let treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let fever = kb.lookup_name("fever")[0];
        // fever is not the object of any `treat` triple.
        assert!(PathQuery::from(fever).backward(treat).run(&kb).is_empty());
    }
}
