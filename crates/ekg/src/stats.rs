//! Summary statistics of an external knowledge source graph.

use std::fmt;

use crate::graph::Ekg;

/// Structural summary of an [`Ekg`], used by ingestion reports and the
/// benchmark harness to describe generated worlds.
#[derive(Debug, Clone, PartialEq)]
pub struct EkgStats {
    /// Number of concepts.
    pub concepts: usize,
    /// Number of edges (native + shortcut).
    pub edges: usize,
    /// Number of ingestion-added shortcut edges.
    pub shortcuts: usize,
    /// Number of leaf concepts (no children).
    pub leaves: usize,
    /// Number of concepts with more than one native parent.
    pub multi_parent: usize,
    /// Maximum depth below the root.
    pub max_depth: u32,
    /// Mean depth over all concepts.
    pub mean_depth: f64,
}

impl EkgStats {
    /// Compute the statistics of `ekg`.
    pub fn compute(ekg: &Ekg) -> Self {
        let concepts = ekg.len();
        let mut leaves = 0usize;
        let mut multi_parent = 0usize;
        let mut max_depth = 0u32;
        let mut depth_sum = 0u64;
        for c in ekg.concepts() {
            if ekg.children(c).is_empty() {
                leaves += 1;
            }
            if ekg.native_parents(c).count() > 1 {
                multi_parent += 1;
            }
            let d = ekg.depth(c);
            max_depth = max_depth.max(d);
            depth_sum += u64::from(d);
        }
        Self {
            concepts,
            edges: ekg.edge_count(),
            shortcuts: ekg.shortcut_count(),
            leaves,
            multi_parent,
            max_depth,
            mean_depth: if concepts == 0 { 0.0 } else { depth_sum as f64 / concepts as f64 },
        }
    }
}

impl fmt::Display for EkgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} concepts, {} edges ({} shortcuts), {} leaves, {} multi-parent, \
             depth max {} / mean {:.2}",
            self.concepts,
            self.edges,
            self.shortcuts,
            self.leaves,
            self.multi_parent,
            self.max_depth,
            self.mean_depth
        )
    }
}

/// Render `ekg` in Graphviz DOT format (native edges solid, shortcut edges
/// dashed and annotated with their original distance). For graphs above
/// `max_nodes` only the first `max_nodes` concepts in id order are shown —
/// DOT rendering of a full terminology is not useful anyway.
pub fn to_dot(ekg: &Ekg, max_nodes: usize) -> String {
    let mut out = String::from("digraph ekg {\n  rankdir=BT;\n  node [shape=box];\n");
    let shown: Vec<_> = ekg.concepts().take(max_nodes).collect();
    let visible: std::collections::HashSet<_> = shown.iter().copied().collect();
    for &c in &shown {
        out.push_str(&format!("  n{} [label=\"{}\"];\n", c.raw(), ekg.name(c).replace('"', "'")));
    }
    for &c in &shown {
        for e in ekg.parents(c) {
            if !visible.contains(&e.to) {
                continue;
            }
            if e.shortcut {
                out.push_str(&format!(
                    "  n{} -> n{} [style=dashed, label=\"d={}\"];\n",
                    c.raw(),
                    e.to.raw(),
                    e.weight
                ));
            } else {
                out.push_str(&format!("  n{} -> n{};\n", c.raw(), e.to.raw()));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    #[test]
    fn stats_of_small_graph() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("a");
        let bb = b.concept("b");
        let c = b.concept("c");
        b.is_a(a, root);
        b.is_a(bb, root);
        b.is_a(c, a);
        b.is_a(c, bb);
        let mut g = b.build().unwrap();
        let s = EkgStats::compute(&g);
        assert_eq!(s.concepts, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.shortcuts, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.multi_parent, 1);
        assert_eq!(s.max_depth, 2);

        g.add_shortcut(c, root, 2).unwrap();
        let s = EkgStats::compute(&g);
        assert_eq!(s.edges, 5);
        assert_eq!(s.shortcuts, 1);
        // Shortcuts do not create multi-*native*-parent concepts.
        assert_eq!(s.multi_parent, 1);
    }

    #[test]
    fn dot_renders_nodes_and_edge_styles() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("kidney disease");
        let c = b.concept("chronic kidney disease");
        let d = b.concept("ckd stage 1");
        b.is_a(a, root);
        b.is_a(c, a);
        b.is_a(d, c);
        let mut g = b.build().unwrap();
        g.add_shortcut(d, a, 2).unwrap();
        let dot = to_dot(&g, 100);
        assert!(dot.starts_with("digraph ekg {"));
        assert!(dot.contains("label=\"kidney disease\""));
        assert!(dot.contains("style=dashed, label=\"d=2\""), "{dot}");
        assert_eq!(dot.matches(" -> ").count(), 4);
        // Truncation keeps the output well-formed.
        let small = to_dot(&g, 2);
        assert!(small.ends_with("}\n"));
        assert!(small.matches("label=").count() <= 3);
    }

    #[test]
    fn display_is_single_line() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("a");
        b.is_a(a, root);
        let g = b.build().unwrap();
        let line = EkgStats::compute(&g).to_string();
        assert!(line.contains("2 concepts"));
        assert!(!line.contains('\n'));
    }
}
