//! Direction-tagged paths between external concepts, and the Eq. 4 path
//! weight.
//!
//! §5.2: generalizing a query term loses information, specializing does
//! not (as much). The weight of the path between concepts `A` and `B` is
//!
//! ```text
//! p_{A,B} = Π_i  w_i ^ (D - i),        i = 1..D
//! ```
//!
//! where `D` is the path length and `w_i` the weight of the i-th edge
//! *starting from `A`* — `w_gen` (default 0.9) for a generalization (an
//! upward, child→parent step) and `w_spec` (default 1.0) for a
//! specialization. The exponent `D - i` makes early generalizations count
//! the most, reproducing Figure 6: from "pneumonia" to "lower respiratory
//! tract infection" (3 ups then 1 down) `p = 0.9^3 · 0.9^2 · 0.9^1 · w^0 =
//! 0.9^6`, while the reverse direction (1 up, 3 downs) costs only `0.9^3`.
//!
//! Paths always run through the least common subsumer, so they are a block
//! of generalizations followed by a block of specializations; shortcut
//! edges expand to as many unit steps as their recorded original distance,
//! which is why [`PathSummary`] is expressed in unit steps.

use medkb_types::ExtConceptId;

use crate::graph::Ekg;
use crate::lcs::{lcs, LcsOutcome};

/// Direction of one unit step along a concept path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Child → parent: towards more general concepts.
    Generalization,
    /// Parent → child: towards more specific concepts.
    Specialization,
}

/// The shape of the (shortest, LCS-routed) path from a source concept to a
/// target concept: `ups` unit generalization steps followed by `downs` unit
/// specialization steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSummary {
    /// Unit generalization steps from the source up to the LCS.
    pub ups: u32,
    /// Unit specialization steps from the LCS down to the target.
    pub downs: u32,
}

impl PathSummary {
    /// Total unit length `D`.
    pub fn len(&self) -> u32 {
        self.ups + self.downs
    }

    /// Whether source and target coincide.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unit step directions from source to target.
    pub fn directions(&self) -> impl Iterator<Item = Direction> {
        std::iter::repeat_n(Direction::Generalization, self.ups as usize)
            .chain(std::iter::repeat_n(Direction::Specialization, self.downs as usize))
    }

    /// Eq. 4 path weight under the given direction weights.
    pub fn weight(&self, w_gen: f64, w_spec: f64) -> f64 {
        weight_for_sequence(self.directions(), w_gen, w_spec)
    }

    /// The same path seen from the other endpoint.
    pub fn reversed(&self) -> Self {
        Self { ups: self.downs, downs: self.ups }
    }
}

/// Eq. 4 over an explicit direction sequence.
pub fn weight_for_sequence(
    directions: impl IntoIterator<Item = Direction>,
    w_gen: f64,
    w_spec: f64,
) -> f64 {
    let dirs: Vec<Direction> = directions.into_iter().collect();
    let d = dirs.len() as i32;
    dirs.iter()
        .enumerate()
        .map(|(idx, dir)| {
            let w = match dir {
                Direction::Generalization => w_gen,
                Direction::Specialization => w_spec,
            };
            // i is 1-based in the paper; exponent D - i.
            w.powi(d - (idx as i32 + 1))
        })
        .product()
}

/// The LCS-routed path from `a` (the query-term side) to `b`, together with
/// the LCS outcome it was derived from.
pub fn path_between(ekg: &Ekg, a: ExtConceptId, b: ExtConceptId) -> (PathSummary, LcsOutcome) {
    let out = lcs(ekg, a, b);
    (PathSummary { ups: out.dist_a, downs: out.dist_b }, out)
}

/// Reconstruct one concrete shortest concept chain `a → … → lcs → … → b`
/// (inclusive of the endpoints), following weighted-shortest upward routes
/// on both sides. Explanation surfaces render this as the "why" of a
/// relaxation answer.
pub fn concrete_path(ekg: &Ekg, a: ExtConceptId, b: ExtConceptId) -> Vec<ExtConceptId> {
    if a == b {
        return vec![a];
    }
    let out = lcs(ekg, a, b);
    let lcs_node = out.concepts[0];
    let mut up_side = climb(ekg, a, lcs_node);
    let mut down_side = climb(ekg, b, lcs_node);
    down_side.pop(); // the LCS appears once
    down_side.reverse();
    up_side.append(&mut down_side);
    up_side
}

/// Greedy weighted-shortest climb from `from` up to `target` (inclusive),
/// following parents that minimize remaining distance to `target`.
fn climb(ekg: &Ekg, from: ExtConceptId, target: ExtConceptId) -> Vec<ExtConceptId> {
    // One reversed Dijkstra from the target answers every "how far is this
    // parent from the target" probe of the walk (the down-graph mirrors the
    // up-graph, so these are exactly the upward distances to `target`).
    let mut below = crate::graph::UpwardScratch::new();
    ekg.downward_distances_into(target, &mut below);
    let mut chain = vec![from];
    let mut cur = from;
    while cur != target {
        let next = ekg
            .parents(cur)
            .iter()
            .filter_map(|e| {
                let remaining =
                    if e.to == target { Some(0) } else { below.distance(e.to) }?;
                Some((e.weight + remaining, e.to))
            })
            .min_by_key(|&(d, c)| (d, c));
        match next {
            Some((_, c)) => {
                chain.push(c);
                cur = c;
            }
            None => break, // target unreachable (not an ancestor): stop
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn empty_path_weight_is_one() {
        let p = PathSummary { ups: 0, downs: 0 };
        assert!(close(p.weight(0.9, 1.0), 1.0));
    }

    #[test]
    fn figure6_forward_path() {
        // Pneumonia -> LRTI: 3 generalizations then 1 specialization.
        let p = PathSummary { ups: 3, downs: 1 };
        // 0.9^(4-1) * 0.9^(4-2) * 0.9^(4-3) * 1^(4-4) = 0.9^6
        assert!(close(p.weight(0.9, 1.0), 0.9f64.powi(6)));
    }

    #[test]
    fn figure6_reverse_path() {
        // LRTI -> pneumonia: 1 generalization then 3 specializations.
        let p = PathSummary { ups: 1, downs: 3 };
        // 0.9^(4-1) * 1^2 * 1^1 * 1^0 = 0.9^3
        assert!(close(p.weight(0.9, 1.0), 0.9f64.powi(3)));
        assert_eq!(p.reversed(), PathSummary { ups: 3, downs: 1 });
    }

    #[test]
    fn early_generalization_penalized_more() {
        // Same multiset of directions, different order: gen-first loses.
        let gen_first = [Direction::Generalization, Direction::Specialization];
        let spec_first = [Direction::Specialization, Direction::Generalization];
        let a = weight_for_sequence(gen_first, 0.9, 1.0);
        let b = weight_for_sequence(spec_first, 0.9, 1.0);
        assert!(a < b, "{a} should be < {b}");
    }

    #[test]
    fn last_edge_contributes_nothing() {
        // Exponent D - D = 0 on the final edge per Eq. 4.
        let p = PathSummary { ups: 1, downs: 0 };
        assert!(close(p.weight(0.5, 1.0), 1.0));
    }

    #[test]
    fn specialization_only_path_costs_nothing_at_unit_weight() {
        let p = PathSummary { ups: 0, downs: 5 };
        assert!(close(p.weight(0.9, 1.0), 1.0));
    }

    #[test]
    fn directions_order_is_ups_then_downs() {
        let p = PathSummary { ups: 2, downs: 1 };
        let dirs: Vec<_> = p.directions().collect();
        assert_eq!(
            dirs,
            vec![
                Direction::Generalization,
                Direction::Generalization,
                Direction::Specialization
            ]
        );
    }

    #[test]
    fn path_between_uses_lcs_distances() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let finding = b.concept("finding");
        let pain = b.concept("pain");
        let headache = b.concept("headache");
        b.is_a(finding, root);
        b.is_a(pain, finding);
        b.is_a(headache, pain);
        let g = b.build().unwrap();
        let (p, out) = path_between(&g, headache, finding);
        assert_eq!(p, PathSummary { ups: 2, downs: 0 });
        assert_eq!(out.concepts, vec![finding]);
        let (p, _) = path_between(&g, finding, headache);
        assert_eq!(p, PathSummary { ups: 0, downs: 2 });
    }

    #[test]
    fn concrete_path_runs_through_the_lcs() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let finding = b.concept("finding");
        let pain = b.concept("pain");
        let headache = b.concept("headache");
        let throat = b.concept("throat pain");
        b.is_a(finding, root);
        b.is_a(pain, finding);
        b.is_a(headache, pain);
        b.is_a(throat, pain);
        let g = b.build().unwrap();
        let path = concrete_path(&g, headache, throat);
        assert_eq!(path, vec![headache, pain, throat]);
        assert_eq!(concrete_path(&g, headache, headache), vec![headache]);
        // Ancestor-descendant: a straight chain.
        assert_eq!(concrete_path(&g, headache, finding), vec![headache, pain, finding]);
        assert_eq!(concrete_path(&g, finding, headache), vec![finding, pain, headache]);
    }

    #[test]
    fn weight_monotone_in_w_gen() {
        let p = PathSummary { ups: 3, downs: 2 };
        let w1 = p.weight(0.8, 1.0);
        let w2 = p.weight(0.9, 1.0);
        let w3 = p.weight(1.0, 1.0);
        assert!(w1 < w2 && w2 < w3);
        assert!(close(w3, 1.0));
    }
}
