//! Least common subsumer computation.
//!
//! §2.3 footnote 1: *"A LCS of two concepts always exists in the external
//! knowledge source. When multiple LCSs exist, we choose the one with the
//! shortest path to the pair of concepts. If multiple LCSs have equal
//! distance to the pair of concepts, we use the average IC of these LCSs
//! for the similarity measure."*
//!
//! [`LcsOutcome`] therefore carries the full set of equidistant,
//! shortest-path LCS concepts; the similarity layer averages their IC.

use std::collections::HashMap;

use medkb_types::ExtConceptId;

use crate::graph::{Ekg, UpwardDistances, UpwardScratch};
use crate::reach::ReachabilityIndex;

/// Result of a least-common-subsumer query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcsOutcome {
    /// The minimal common subsumers at the minimal total distance. Never
    /// empty (the root subsumes everything). Sorted by id for determinism.
    pub concepts: Vec<ExtConceptId>,
    /// Weighted distance from the first query concept up to the LCS level.
    pub dist_a: u32,
    /// Weighted distance from the second query concept up to the LCS level.
    pub dist_b: u32,
}

impl LcsOutcome {
    /// Total path length through the LCS.
    pub fn total_distance(&self) -> u32 {
        self.dist_a + self.dist_b
    }
}

/// Compute the LCS set of `a` and `b` per the paper's footnote-1 rule.
///
/// `a == b` yields the concept itself at distance zero. The result's
/// `dist_a`/`dist_b` are the upward distances to the *chosen* LCS level
/// (all returned concepts share the same total distance; among equal totals
/// the split minimizing `dist_a` is reported for determinism).
pub fn lcs(ekg: &Ekg, a: ExtConceptId, b: ExtConceptId) -> LcsOutcome {
    if a == b {
        return LcsOutcome { concepts: vec![a], dist_a: 0, dist_b: 0 };
    }
    let mut up_a = ekg.upward_distances(a);
    let mut up_b = ekg.upward_distances(b);
    // A concept can subsume the other directly.
    up_a.insert(a, 0);
    up_b.insert(b, 0);

    // Common subsumers with their total distance.
    let mut best_total = u32::MAX;
    let mut candidates: Vec<(ExtConceptId, u32, u32)> = Vec::new();
    for (&c, &da) in &up_a {
        if let Some(&db) = up_b.get(&c) {
            let total = da + db;
            if total < best_total {
                best_total = total;
                candidates.clear();
            }
            if total == best_total {
                candidates.push((c, da, db));
            }
        }
    }
    debug_assert!(!candidates.is_empty(), "root must subsume everything");

    // Among the minimal-distance common subsumers, drop any that is a strict
    // ancestor of another candidate: those are not *least*.
    let keep: Vec<(ExtConceptId, u32, u32)> = candidates
        .iter()
        .filter(|(c, _, _)| {
            !candidates.iter().any(|(d, _, _)| d != c && ekg.is_ancestor(*c, *d))
        })
        .copied()
        .collect();
    let chosen = if keep.is_empty() { candidates } else { keep };

    let mut concepts: Vec<ExtConceptId> = chosen.iter().map(|&(c, _, _)| c).collect();
    concepts.sort_unstable();
    concepts.dedup();
    // Deterministic, direction-symmetric split: the smallest-id LCS's
    // distances (so `lcs(a, b)` and `lcs(b, a)` describe the same physical
    // path, just reversed).
    let (_, da, db) = chosen.iter().copied().min_by_key(|&(c, _, _)| c).unwrap();
    LcsOutcome { concepts, dist_a: da, dist_b: db }
}

/// [`lcs`] with the first concept's upward distances precomputed and the
/// minimality pruning answered by a [`ReachabilityIndex`] bit probe.
///
/// This is the query-scoped fast path: the relaxation engine computes
/// `up_q = ekg.upward_distances_from(query)` once, then scores every
/// candidate against it — one small candidate-side Dijkstra per pair
/// instead of two, and no per-pair ancestor BFS during pruning. Produces
/// outcomes identical to `lcs(ekg, up_q.source(), b)`.
pub fn lcs_with_upward(
    ekg: &Ekg,
    reach: &ReachabilityIndex,
    up_q: &UpwardDistances,
    b: ExtConceptId,
) -> LcsOutcome {
    let mut scratch = UpwardScratch::new();
    lcs_with_upward_scratch(ekg, reach, up_q, b, &mut scratch)
}

/// [`lcs_with_upward`] with the candidate-side Dijkstra run in caller-owned
/// scratch storage — the allocation-free hot path the query-scoped scorer
/// loops over. Outcomes are identical to `lcs(ekg, up_q.source(), b)`.
pub fn lcs_with_upward_scratch(
    ekg: &Ekg,
    reach: &ReachabilityIndex,
    up_q: &UpwardDistances,
    b: ExtConceptId,
    scratch: &mut UpwardScratch,
) -> LcsOutcome {
    let a = up_q.source();
    if a == b {
        return LcsOutcome { concepts: vec![a], dist_a: 0, dist_b: 0 };
    }
    ekg.upward_distances_into(b, scratch);

    // Common subsumers with their total distance: iterate the (small)
    // candidate side — `b` itself plus its reached ancestors — and probe
    // the dense query-side table.
    let mut best_total = u32::MAX;
    let mut candidates: Vec<(ExtConceptId, u32, u32)> = Vec::new();
    let b_side =
        std::iter::once((b, 0u32)).chain(scratch.reached().iter().map(|&c| {
            (c, scratch.distance(c).expect("reached ancestors carry a distance"))
        }));
    for (c, db) in b_side {
        if let Some(da) = up_q.get(c) {
            let total = da + db;
            if total < best_total {
                best_total = total;
                candidates.clear();
            }
            if total == best_total {
                candidates.push((c, da, db));
            }
        }
    }
    debug_assert!(!candidates.is_empty(), "root must subsume everything");

    // Same footnote-1 minimality pruning as `lcs`, via the bitset closure.
    let keep: Vec<(ExtConceptId, u32, u32)> = candidates
        .iter()
        .filter(|(c, _, _)| {
            !candidates.iter().any(|(d, _, _)| d != c && reach.is_ancestor(*c, *d))
        })
        .copied()
        .collect();
    let chosen = if keep.is_empty() { candidates } else { keep };

    let mut concepts: Vec<ExtConceptId> = chosen.iter().map(|&(c, _, _)| c).collect();
    concepts.sort_unstable();
    concepts.dedup();
    let (_, da, db) = chosen.iter().copied().min_by_key(|&(c, _, _)| c).unwrap();
    LcsOutcome { concepts, dist_a: da, dist_b: db }
}

/// Upward distances from each of `sources` to all ancestors, memoized for
/// batch similarity computations over a fixed query concept.
#[derive(Debug, Default)]
pub struct UpwardDistanceCache {
    cache: HashMap<ExtConceptId, HashMap<ExtConceptId, u32>>,
}

impl UpwardDistanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distances from `c` upward, computing and caching on first use. The
    /// map includes `c` itself at distance 0.
    pub fn distances<'a>(
        &'a mut self,
        ekg: &Ekg,
        c: ExtConceptId,
    ) -> &'a HashMap<ExtConceptId, u32> {
        self.cache.entry(c).or_insert_with(|| {
            let mut m = ekg.upward_distances(c);
            m.insert(c, 0);
            m
        })
    }

    /// Number of memoized sources.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    /// root
    /// ├── finding
    /// │   ├── pain ── headache, throatpain
    /// │   └── infection ── pneumonia
    /// └── drug
    fn taxonomy() -> (Ekg, HashMap<&'static str, ExtConceptId>) {
        let mut b = EkgBuilder::new();
        let names =
            ["root", "finding", "pain", "headache", "throatpain", "infection", "pneumonia", "drug"];
        let ids: HashMap<&str, ExtConceptId> =
            names.iter().map(|&n| (n, b.concept(n))).collect();
        b.is_a(ids["finding"], ids["root"]);
        b.is_a(ids["drug"], ids["root"]);
        b.is_a(ids["pain"], ids["finding"]);
        b.is_a(ids["infection"], ids["finding"]);
        b.is_a(ids["headache"], ids["pain"]);
        b.is_a(ids["throatpain"], ids["pain"]);
        b.is_a(ids["pneumonia"], ids["infection"]);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn lcs_of_identical_concept_is_itself() {
        let (g, ids) = taxonomy();
        let out = lcs(&g, ids["pain"], ids["pain"]);
        assert_eq!(out.concepts, vec![ids["pain"]]);
        assert_eq!(out.total_distance(), 0);
    }

    #[test]
    fn lcs_of_siblings_is_parent() {
        let (g, ids) = taxonomy();
        let out = lcs(&g, ids["headache"], ids["throatpain"]);
        assert_eq!(out.concepts, vec![ids["pain"]]);
        assert_eq!((out.dist_a, out.dist_b), (1, 1));
    }

    #[test]
    fn lcs_of_ancestor_descendant_is_the_ancestor() {
        let (g, ids) = taxonomy();
        let out = lcs(&g, ids["headache"], ids["finding"]);
        assert_eq!(out.concepts, vec![ids["finding"]]);
        assert_eq!(out.total_distance(), 2);
        // Symmetric case.
        let out = lcs(&g, ids["finding"], ids["headache"]);
        assert_eq!(out.concepts, vec![ids["finding"]]);
    }

    #[test]
    fn lcs_across_branches_is_deeper_common_ancestor() {
        let (g, ids) = taxonomy();
        let out = lcs(&g, ids["headache"], ids["pneumonia"]);
        assert_eq!(out.concepts, vec![ids["finding"]]);
        assert_eq!(out.total_distance(), 4);
        let out = lcs(&g, ids["headache"], ids["drug"]);
        assert_eq!(out.concepts, vec![g.root()]);
    }

    #[test]
    fn multiple_equidistant_lcs_all_reported() {
        // Two parents shared by both children: x and y are both minimal
        // common subsumers of c and d at equal distance.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let x = b.concept("x");
        let y = b.concept("y");
        let c = b.concept("c");
        let d = b.concept("d");
        for p in [x, y] {
            b.is_a(p, root);
            b.is_a(c, p);
            b.is_a(d, p);
        }
        let g = b.build().unwrap();
        let out = lcs(&g, c, d);
        let mut expect = vec![x, y];
        expect.sort_unstable();
        assert_eq!(out.concepts, expect);
        assert_eq!((out.dist_a, out.dist_b), (1, 1));
    }

    #[test]
    fn non_least_candidates_are_pruned() {
        // c, d share parent p; p's parent q is also common but not least.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let q = b.concept("q");
        let p = b.concept("p");
        let c = b.concept("c");
        let d = b.concept("d");
        b.is_a(q, root);
        b.is_a(p, q);
        b.is_a(c, p);
        b.is_a(d, p);
        // Extra direct edges make q equidistant-looking? No: q is at
        // distance 2+2, p at 1+1, so distance already prefers p. Add direct
        // child edges c->q, d->q so q is also at 1+1.
        b.is_a(c, q);
        b.is_a(d, q);
        let g = b.build().unwrap();
        let out = lcs(&g, c, d);
        // p and q both at total distance 2, but q is a strict ancestor of p,
        // hence not least.
        assert_eq!(out.concepts, vec![p]);
    }

    #[test]
    fn with_upward_matches_plain_lcs_on_taxonomy() {
        let (g, ids) = taxonomy();
        let reach = ReachabilityIndex::build(&g);
        for &a in ids.values() {
            let up_a = g.upward_distances_from(a);
            for &b in ids.values() {
                assert_eq!(
                    lcs_with_upward(&g, &reach, &up_a, b),
                    lcs(&g, a, b),
                    "{:?} vs {:?}",
                    g.name(a),
                    g.name(b)
                );
            }
        }
    }

    #[test]
    fn with_upward_prunes_non_least_candidates() {
        // Same construction as `non_least_candidates_are_pruned`.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let q = b.concept("q");
        let p = b.concept("p");
        let c = b.concept("c");
        let d = b.concept("d");
        b.is_a(q, root);
        b.is_a(p, q);
        b.is_a(c, p);
        b.is_a(d, p);
        b.is_a(c, q);
        b.is_a(d, q);
        let g = b.build().unwrap();
        let reach = ReachabilityIndex::build(&g);
        let up_c = g.upward_distances_from(c);
        let out = lcs_with_upward(&g, &reach, &up_c, d);
        assert_eq!(out.concepts, vec![p]);
        assert_eq!(out, lcs(&g, c, d));
    }

    #[test]
    fn cache_returns_same_distances_as_direct_call() {
        let (g, ids) = taxonomy();
        let mut cache = UpwardDistanceCache::new();
        let via_cache = cache.distances(&g, ids["headache"]).clone();
        let mut direct = g.upward_distances(ids["headache"]);
        direct.insert(ids["headache"], 0);
        assert_eq!(via_cache, direct);
        assert_eq!(cache.len(), 1);
        cache.distances(&g, ids["headache"]);
        assert_eq!(cache.len(), 1);
    }
}
