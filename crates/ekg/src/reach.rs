//! Bitset transitive-closure index for subsumption reachability.
//!
//! `Ekg::is_ancestor` walks the graph per query; ingestion and LCS
//! minimality pruning issue many such queries against a fixed graph. This
//! index materializes each concept's ancestor set as a bitset in one
//! children-first pass — `O(|V|²/64 + |E|·|V|/64)` time, `|V|²/8` bytes —
//! turning every subsequent query into a single bit probe. At SNOMED-like
//! scales (hundreds of thousands of concepts) a full closure stops being
//! attractive; the index is therefore an opt-in accelerator for the
//! generated-world scales this repository runs at.

use medkb_types::{ExtConceptId, Id};

use crate::graph::Ekg;

/// Materialized ancestor bitsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityIndex {
    /// `words_per_row` u64 words per concept; bit `d` of row `a` set iff
    /// `a` is a strict ancestor of... see [`ReachabilityIndex::is_ancestor`]
    /// (rows store each concept's *ancestors*).
    bits: Vec<u64>,
    words_per_row: usize,
    n: usize,
}

impl ReachabilityIndex {
    /// Build the closure for `ekg` (native and shortcut edges — shortcuts
    /// never add reachability, so the result equals the native closure).
    pub fn build(ekg: &Ekg) -> Self {
        let n = ekg.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        // Ancestors flow downward, so iterate parents-first (reverse of
        // the children-first topo order): ancestors(c) = ⋃_p ({p} ∪
        // ancestors(p)).
        let mut acc = vec![0u64; words_per_row];
        for &c in ekg.topo_children_first().iter().rev() {
            acc.fill(0);
            for parent in ekg.native_parents(c) {
                let p = parent.as_usize();
                let src = &bits[p * words_per_row..(p + 1) * words_per_row];
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a |= s;
                }
                acc[p / 64] |= 1 << (p % 64);
            }
            let row = c.as_usize();
            bits[row * words_per_row..(row + 1) * words_per_row].copy_from_slice(&acc);
        }
        Self { bits, words_per_row, n }
    }

    /// Parallel [`ReachabilityIndex::build`]: bit-identical output, row
    /// computation sharded over `threads` scoped workers.
    ///
    /// The build is level-scheduled: `level(c) = 1 + max level over native
    /// parents` (0 for the root), so every row in a level depends only on
    /// rows from strictly lower levels. Each level's rows are computed in
    /// parallel against the frozen lower-level rows and then copied into
    /// the shared table; rows are disjoint, and each row's value is a pure
    /// function of its parents' rows, so the result cannot depend on the
    /// shard count or on thread scheduling.
    pub fn build_with_threads(ekg: &Ekg, threads: usize) -> Self {
        if threads <= 1 {
            return Self::build(ekg);
        }
        let n = ekg.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];

        let parents_first: Vec<ExtConceptId> =
            ekg.topo_children_first().iter().rev().copied().collect();
        let mut level = vec![0u32; n];
        let mut max_level = 0u32;
        for &c in &parents_first {
            let mut l = 0u32;
            for p in ekg.native_parents(c) {
                l = l.max(level[p.as_usize()] + 1);
            }
            level[c.as_usize()] = l;
            max_level = max_level.max(l);
        }
        let mut by_level: Vec<Vec<ExtConceptId>> = vec![Vec::new(); max_level as usize + 1];
        for &c in &parents_first {
            by_level[level[c.as_usize()] as usize].push(c);
        }

        for concepts in &by_level {
            // Spawning costs more than computing a small level: stay
            // sequential unless each worker gets a meaningful chunk.
            if concepts.len() < threads * 16 {
                let mut acc = vec![0u64; words_per_row];
                for &c in concepts {
                    acc.fill(0);
                    for parent in ekg.native_parents(c) {
                        let p = parent.as_usize();
                        let src = &bits[p * words_per_row..(p + 1) * words_per_row];
                        for (a, &s) in acc.iter_mut().zip(src) {
                            *a |= s;
                        }
                        acc[p / 64] |= 1 << (p % 64);
                    }
                    let row = c.as_usize();
                    bits[row * words_per_row..(row + 1) * words_per_row].copy_from_slice(&acc);
                }
                continue;
            }
            let shard = concepts.len().div_ceil(threads).max(1);
            let computed: Vec<Vec<(usize, Vec<u64>)>> = crossbeam::thread::scope(|s| {
                let bits_ref = &bits;
                let handles: Vec<_> = concepts
                    .chunks(shard)
                    .map(|chunk| {
                        s.spawn(move |_| {
                            let mut out = Vec::with_capacity(chunk.len());
                            for &c in chunk {
                                let mut acc = vec![0u64; words_per_row];
                                for parent in ekg.native_parents(c) {
                                    let p = parent.as_usize();
                                    let src =
                                        &bits_ref[p * words_per_row..(p + 1) * words_per_row];
                                    for (a, &s) in acc.iter_mut().zip(src) {
                                        *a |= s;
                                    }
                                    acc[p / 64] |= 1 << (p % 64);
                                }
                                out.push((c.as_usize(), acc));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("reach worker")).collect()
            })
            .expect("reach scope");
            for shard_rows in computed {
                for (row, acc) in shard_rows {
                    bits[row * words_per_row..(row + 1) * words_per_row].copy_from_slice(&acc);
                }
            }
        }
        Self { bits, words_per_row, n }
    }

    /// Whether `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ExtConceptId, desc: ExtConceptId) -> bool {
        if anc == desc {
            return false;
        }
        let row = desc.as_usize();
        let a = anc.as_usize();
        debug_assert!(row < self.n && a < self.n);
        self.bits[row * self.words_per_row + a / 64] & (1 << (a % 64)) != 0
    }

    /// Number of strict ancestors of `desc`.
    pub fn ancestor_count(&self, desc: ExtConceptId) -> usize {
        let row = desc.as_usize();
        self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Strict-descendant count for every concept (indexed by concept id).
    ///
    /// One scan over all ancestor rows — `O(|V|²/64)` word probes plus one
    /// increment per (ancestor, descendant) pair — replacing the per-concept
    /// BFS the intrinsic-IC table used to run. Counts are exact integers, so
    /// any IC derived from them is bit-identical to the BFS-based value.
    pub fn descendant_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n];
        for row in 0..self.n {
            let words = &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row];
            for (wi, &word) in words.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    counts[wi * 64 + b] += 1;
                    w &= w - 1;
                }
            }
        }
        counts
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    fn diamond() -> Ekg {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("a");
        let bb = b.concept("b");
        let c = b.concept("c");
        let d = b.concept("d");
        b.is_a(a, root);
        b.is_a(bb, root);
        b.is_a(c, a);
        b.is_a(c, bb);
        b.is_a(d, c);
        b.build().unwrap()
    }

    #[test]
    fn matches_walking_implementation() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(
                    idx.is_ancestor(anc, desc),
                    g.is_ancestor(anc, desc),
                    "{:?} vs {:?}",
                    g.name(anc),
                    g.name(desc)
                );
            }
        }
    }

    #[test]
    fn ancestor_counts() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        assert_eq!(idx.ancestor_count(d), 4); // c, a, b, root
        assert_eq!(idx.ancestor_count(g.root()), 0);
    }

    #[test]
    fn self_is_not_ancestor() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for c in g.concepts() {
            assert!(!idx.is_ancestor(c, c));
        }
    }

    #[test]
    fn shortcuts_do_not_change_the_closure() {
        let mut g = diamond();
        let before = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        g.add_shortcut(d, g.root(), 3).unwrap();
        let after = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(before.is_ancestor(anc, desc), after.is_ancestor(anc, desc));
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        for g in [diamond(), wide_random()] {
            let seq = ReachabilityIndex::build(&g);
            for threads in [1, 2, 4, 8] {
                let par = ReachabilityIndex::build_with_threads(&g, threads);
                assert_eq!(par, seq, "threads={threads}");
            }
        }
    }

    #[test]
    fn descendant_counts_match_graph_walk() {
        for g in [diamond(), wide_random()] {
            let idx = ReachabilityIndex::build(&g);
            let counts = idx.descendant_counts();
            for c in g.concepts() {
                assert_eq!(
                    counts[c.as_usize()],
                    g.descendants(c).len() as u64,
                    "{:?}",
                    g.name(c)
                );
            }
        }
    }

    /// A 150-concept multi-parent DAG (crosses word boundaries, has deep
    /// and wide levels) built from a deterministic recurrence.
    fn wide_random() -> Ekg {
        let mut b = EkgBuilder::new();
        let mut ids = vec![b.concept("c0")];
        for i in 1..150usize {
            let c = b.concept(&format!("c{i}"));
            // One guaranteed parent plus a distinct pseudo-random second one.
            let p1 = (i * 7 + 3) % i;
            b.is_a(c, ids[p1]);
            if i > 4 {
                let p2 = (i * 13 + 1) % (i - 2);
                if p2 != p1 {
                    b.is_a(c, ids[p2]);
                }
            }
            ids.push(c);
        }
        b.build().unwrap()
    }

    #[test]
    fn scales_past_one_bitset_word() {
        // 100 concepts in a chain crosses the 64-bit word boundary.
        let mut b = EkgBuilder::new();
        let mut prev = b.concept("n0");
        for i in 1..100 {
            let c = b.concept(&format!("n{i}"));
            b.is_a(c, prev);
            prev = c;
        }
        let g = b.build().unwrap();
        let idx = ReachabilityIndex::build(&g);
        let first = g.lookup_name("n0")[0];
        let last = g.lookup_name("n99")[0];
        let mid = g.lookup_name("n70")[0];
        assert!(idx.is_ancestor(first, last));
        assert!(idx.is_ancestor(mid, last));
        assert!(!idx.is_ancestor(last, first));
        assert_eq!(idx.ancestor_count(last), 99);
        assert!(idx.memory_bytes() >= 100 * 2 * 8);
    }
}
