//! Hybrid subsumption-reachability index: DFS interval labels plus sparse
//! per-concept exception sets.
//!
//! The previous implementation materialized every concept's ancestor set as
//! a dense bitset row — `|V|²/8` bytes, ~15 GB at SNOMED's 350k concepts.
//! That closure is preserved below as [`DenseReachability`] (the
//! differential reference), but the serving index is now a hybrid
//! (DESIGN.md §14):
//!
//! * A **spanning tree** over the native `is_a` edges (each concept's tree
//!   parent is its *deepest* native parent, ties broken by smallest id — the
//!   deepest parent maximizes the ancestor coverage of the tree path).
//! * **DFS interval labels** `tin/tout` over that tree: `a` is a *tree*
//!   ancestor of `d` iff `tin[a] < tin[d] ≤ tout[a]` — two integer
//!   comparisons, no memory indirection beyond the label arrays.
//! * A per-concept **exception set** `exc(c) = ancestors(c) \
//!   tree_ancestors(c)`: the ancestors only reachable through non-tree
//!   (multi-parent) edges. Sets are stored in a shared pool — a
//!   single-native-parent concept provably has *exactly* its tree parent's
//!   exception set (see the lemma at [`ReachabilityIndex::build`]) and
//!   shares the pooled entry, so the pool holds roughly one distinct set
//!   per multi-parent concept.
//! * Each pooled set picks its representation **by density**: a sorted
//!   `u32` id list (binary-searched) while `4·|exc|` bytes is below the
//!   `n/8`-byte bitset row, a packed bitset above — so no single set can
//!   cost more than a dense row, and the common near-tree case costs a few
//!   words.
//!
//! The result is `O(|V| + Σ|exc|)` memory instead of `O(|V|²)` bits, with
//! `is_ancestor` still O(1) for the tree-like majority of a SNOMED-shaped
//! DAG and `O(log |exc|)` worst case. Every query is bit-identical to the
//! dense closure — pinned by the tests below and by the 240-world
//! differential sweep in `medkb-fuzz`.

use medkb_types::{ExtConceptId, Id};

use crate::graph::Ekg;

/// Pool index of the shared empty exception set.
const EMPTY_SET: u32 = 0;

/// One pooled exception set. `members` is always the sorted member id list
/// (canonical, serialized form); `bits` is the packed probe structure,
/// present only when the set is dense enough that a bitset is smaller than
/// the list (`4·len > n/8` bytes ⇔ `len > n/32`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ExcSet {
    members: Vec<u32>,
    bits: Option<Vec<u64>>,
}

impl ExcSet {
    fn new(members: Vec<u32>, n: usize) -> Self {
        let bits = if members.len() > n / 32 {
            let mut words = vec![0u64; n.div_ceil(64)];
            for &m in &members {
                words[m as usize / 64] |= 1 << (m % 64);
            }
            Some(words)
        } else {
            None
        };
        Self { members, bits }
    }

    #[inline]
    fn contains(&self, id: u32) -> bool {
        match &self.bits {
            Some(words) => words[id as usize / 64] & (1 << (id % 64)) != 0,
            None => self.members.binary_search(&id).is_ok(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.members.len() * 4 + self.bits.as_ref().map_or(0, |w| w.len() * 8)
    }
}

/// Hybrid interval + exception-set reachability index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityIndex {
    n: usize,
    /// DFS preorder entry index of each concept in the spanning tree.
    tin: Vec<u32>,
    /// Largest preorder index in each concept's subtree (inclusive); the
    /// subtree occupies the contiguous preorder range `tin..=tout`, so
    /// `tout - tin` is the strict tree-descendant count.
    tout: Vec<u32>,
    /// Depth in the spanning tree (root = 0) — the strict tree-ancestor
    /// count.
    tree_depth: Vec<u32>,
    /// Pool index of each concept's exception set.
    exc: Vec<u32>,
    /// Distinct exception sets; entry 0 is always the empty set.
    pool: Vec<ExcSet>,
}

impl ReachabilityIndex {
    /// Build the hybrid index for `ekg`'s native closure (shortcut edges
    /// never add reachability, so this equals the full-graph closure).
    ///
    /// Exception sets are computed parents-first over the topological
    /// order, using the invariant `ancestors(p) = tree_ancestors(p) ∪
    /// exc(p)`:
    ///
    /// * **Lemma (span sharing).** `exc(c) ⊇ exc(tp)` for `c`'s tree parent
    ///   `tp`: any `x ∈ exc(tp)` is an ancestor of `tp` (hence of `c`) and
    ///   not a tree ancestor of `tp`; since `c`'s tree ancestors are
    ///   exactly `{tp} ∪ tree_ancestors(tp)` and `x ∉` that set, `x ∈
    ///   exc(c)`. When `tp` is `c`'s *only* native parent the converse
    ///   holds too (`ancestors(c) = {tp} ∪ ancestors(tp)`), so `exc(c) =
    ///   exc(tp)` exactly and the pooled set is shared without copying.
    /// * A multi-parent concept unions in, for every extra native parent
    ///   `q`: `{q} ∪ tree_ancestors(q) ∪ exc(q)`, keeping the elements
    ///   that are not tree ancestors of `c` (interval test).
    pub fn build(ekg: &Ekg) -> Self {
        Self::build_inner(ekg, None)
    }

    /// Rebuild the index for a delta-mutated `ekg`, reusing this (pre-delta)
    /// index's exception member lists for every concept outside the `dirty`
    /// cone (DESIGN.md §15).
    ///
    /// `dirty` must contain every concept whose ancestor set, native parent
    /// set, or depth may have changed — for an edge delta on child `u` that
    /// is `{u} ∪ descendants(u)`, for a freshly added concept the concept
    /// itself. The cone is downward-closed by construction, so every
    /// concept outside it provably keeps its exact exception member list
    /// (its ancestors and its whole tree-parent chain are untouched); the
    /// repair replays the builder's pool assembly over the new topological
    /// order, recomputing the expensive ancestor-walk only for cone
    /// members. The result is bit-identical to [`ReachabilityIndex::build`]
    /// on the mutated graph — pinned by the delta differential sweep.
    ///
    /// Callers should fall back to a full [`ReachabilityIndex::build`] when
    /// the cone covers most of the graph (the delta engine applies a
    /// dirtiness threshold and counts fallbacks in obs).
    pub fn repair(
        &self,
        ekg: &Ekg,
        dirty: &std::collections::HashSet<ExtConceptId>,
    ) -> Self {
        Self::build_inner(ekg, Some((self, dirty)))
    }

    fn build_inner(
        ekg: &Ekg,
        cache: Option<(&Self, &std::collections::HashSet<ExtConceptId>)>,
    ) -> Self {
        let n = ekg.len();
        let root = ekg.root().as_usize();

        // Spanning tree: deepest native parent, ties to the smallest id.
        let mut tree_parent: Vec<u32> = vec![u32::MAX; n];
        for c in ekg.concepts() {
            let ci = c.as_usize();
            if ci == root {
                continue;
            }
            let mut best: Option<(u32, u32)> = None;
            for p in ekg.native_parents(c) {
                let key = (ekg.depth(p), p.as_u32());
                best = Some(match best {
                    None => key,
                    // Deeper wins; equal depth → smaller id wins.
                    Some(b) => {
                        if key.0 > b.0 || (key.0 == b.0 && key.1 < b.1) {
                            key
                        } else {
                            b
                        }
                    }
                });
            }
            tree_parent[ci] = best.expect("non-root concept has a native parent").1;
        }

        // Children lists in id order → deterministic preorder.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (c, &p) in tree_parent.iter().enumerate() {
            if p != u32::MAX {
                children[p as usize].push(c as u32);
            }
        }

        // Iterative DFS: preorder tin, inclusive tout, tree depth.
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut tree_depth = vec![0u32; n];
        let mut next = 0u32;
        // (node, child cursor)
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        tin[root] = 0;
        next += 1;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let kids = &children[node as usize];
            if *cursor < kids.len() {
                let child = kids[*cursor];
                *cursor += 1;
                tin[child as usize] = next;
                tree_depth[child as usize] = tree_depth[node as usize] + 1;
                next += 1;
                stack.push((child, 0));
            } else {
                tout[node as usize] = next - 1;
                stack.pop();
            }
        }
        debug_assert_eq!(next as usize, n, "spanning tree must cover every concept");

        // Exception sets, parents-first.
        let mut pool: Vec<ExcSet> = vec![ExcSet::new(Vec::new(), n)];
        let mut exc: Vec<u32> = vec![EMPTY_SET; n];
        let contains_interval = |tin: &[u32], tout: &[u32], a: usize, d: usize| {
            tin[a] <= tin[d] && tin[d] <= tout[a]
        };
        let mut scratch: Vec<u32> = Vec::new();
        for &c in ekg.topo_children_first().iter().rev() {
            let ci = c.as_usize();
            if ci == root {
                continue;
            }
            let tp = tree_parent[ci] as usize;
            let mut extra = false;
            // A cached member list is valid whenever the concept existed
            // before the delta and sits outside the dirty cone: its
            // ancestor set and tree-parent chain are untouched, so its
            // exception *set* is unchanged even though the interval labels
            // shifted. The pool assembly below only compares member lists,
            // so reusing the old list reproduces the fresh build exactly.
            let cached: Option<&[u32]> = cache.and_then(|(old, dirty)| {
                (ci < old.n && !dirty.contains(&c))
                    .then(|| old.pool[old.exc[ci] as usize].members.as_slice())
            });
            scratch.clear();
            for q in ekg.native_parents(c) {
                let qi = q.as_usize();
                if qi == tp {
                    continue;
                }
                extra = true;
                if cached.is_some() {
                    continue;
                }
                // {q} ∪ tree_ancestors(q) ∪ exc(q), minus tree ancestors
                // of c (exactly the ids whose interval contains c).
                let mut walk = qi;
                loop {
                    if !contains_interval(&tin, &tout, walk, ci) {
                        scratch.push(walk as u32);
                    }
                    let p = tree_parent[walk];
                    if p == u32::MAX {
                        break;
                    }
                    walk = p as usize;
                }
                for &m in &pool[exc[qi] as usize].members {
                    if !contains_interval(&tin, &tout, m as usize, ci) {
                        scratch.push(m);
                    }
                }
            }
            if !extra {
                // Single native parent: exc(c) = exc(tp), share the entry.
                exc[ci] = exc[tp];
                continue;
            }
            if let Some(members) = cached {
                scratch.extend_from_slice(members);
            } else {
                scratch.extend_from_slice(&pool[exc[tp] as usize].members);
                scratch.sort_unstable();
                scratch.dedup();
            }
            if scratch == pool[exc[tp] as usize].members {
                // Every extra-parent contribution was already a tree
                // ancestor (or inherited) — reuse the parent's entry.
                exc[ci] = exc[tp];
            } else {
                pool.push(ExcSet::new(scratch.clone(), n));
                exc[ci] = (pool.len() - 1) as u32;
            }
        }

        Self { n, tin, tout, tree_depth, exc, pool }
    }

    /// Parallel-API twin of [`ReachabilityIndex::build`]. The hybrid build
    /// is near-linear (one DFS plus one parents-first merge pass), so
    /// sharding it buys nothing; this delegates to the sequential build,
    /// keeping the output trivially thread-count independent.
    pub fn build_with_threads(ekg: &Ekg, _threads: usize) -> Self {
        Self::build(ekg)
    }

    /// Whether `anc` is a strict ancestor of `desc`.
    #[inline]
    pub fn is_ancestor(&self, anc: ExtConceptId, desc: ExtConceptId) -> bool {
        if anc == desc {
            return false;
        }
        let a = anc.as_usize();
        let d = desc.as_usize();
        debug_assert!(a < self.n && d < self.n);
        if self.tin[a] <= self.tin[d] && self.tin[d] <= self.tout[a] {
            return true;
        }
        self.pool[self.exc[d] as usize].contains(anc.as_u32())
    }

    /// Number of strict ancestors of `desc`: tree ancestors (= tree depth)
    /// plus exceptions (disjoint by construction).
    pub fn ancestor_count(&self, desc: ExtConceptId) -> usize {
        let d = desc.as_usize();
        self.tree_depth[d] as usize + self.pool[self.exc[d] as usize].members.len()
    }

    /// Strict-descendant count for every concept (indexed by concept id).
    ///
    /// Tree descendants are the interval width `tout - tin`; each
    /// (descendant, exception-ancestor) pair adds one more. Counts are
    /// exact integers, so any IC derived from them is bit-identical to the
    /// dense closure's value.
    pub fn descendant_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> =
            self.tout.iter().zip(&self.tin).map(|(&o, &i)| u64::from(o - i)).collect();
        for c in 0..self.n {
            for &m in &self.pool[self.exc[c] as usize].members {
                counts[m as usize] += 1;
            }
        }
        counts
    }

    /// Approximate resident footprint in bytes: the four per-concept label
    /// arrays plus every pooled exception set (lists and bitsets).
    pub fn memory_bytes(&self) -> usize {
        self.n * 16 + self.pool.iter().map(ExcSet::memory_bytes).sum::<usize>()
    }

    /// The dense closure's footprint at this concept count — what the
    /// pre-hybrid `|V|²`-bit representation would occupy. Benchmarks report
    /// the hybrid/dense ratio against this at scales where the dense build
    /// is no longer feasible.
    pub fn dense_equivalent_bytes(&self) -> usize {
        self.n * self.n.div_ceil(64) * 8
    }

    /// Number of distinct pooled exception sets (including the shared
    /// empty set) — the hybrid's sparsity diagnostic.
    pub fn exception_set_count(&self) -> usize {
        self.pool.len()
    }

    /// Decompose into the flat parts `medkb-store` serializes. Pool sets
    /// are emitted canonically as member lists (offsets + one flat id
    /// array); the density-chosen probe bitsets are derived state and are
    /// rebuilt on load.
    pub fn to_parts(&self) -> ReachParts {
        let mut set_offsets = Vec::with_capacity(self.pool.len() + 1);
        let mut set_members = Vec::new();
        set_offsets.push(0u32);
        for set in &self.pool {
            set_members.extend_from_slice(&set.members);
            set_offsets.push(set_members.len() as u32);
        }
        ReachParts {
            tin: self.tin.clone(),
            tout: self.tout.clone(),
            tree_depth: self.tree_depth.clone(),
            exc: self.exc.clone(),
            set_offsets,
            set_members,
        }
    }

    /// Reassemble from [`ReachabilityIndex::to_parts`] output. The bitset
    /// representation choice is a deterministic function of each set's
    /// cardinality and `n`, so the round-tripped index is bit-identical to
    /// the freshly built one.
    pub fn from_parts(parts: ReachParts) -> Self {
        let n = parts.tin.len();
        let pool: Vec<ExcSet> = parts
            .set_offsets
            .windows(2)
            .map(|w| ExcSet::new(parts.set_members[w[0] as usize..w[1] as usize].to_vec(), n))
            .collect();
        Self {
            n,
            tin: parts.tin,
            tout: parts.tout,
            tree_depth: parts.tree_depth,
            exc: parts.exc,
            pool,
        }
    }
}

/// Flat serialization parts of a [`ReachabilityIndex`]
/// ([`ReachabilityIndex::to_parts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachParts {
    /// DFS preorder entry indexes.
    pub tin: Vec<u32>,
    /// Inclusive subtree exit indexes.
    pub tout: Vec<u32>,
    /// Spanning-tree depths.
    pub tree_depth: Vec<u32>,
    /// Per-concept pool indexes.
    pub exc: Vec<u32>,
    /// Pool set boundaries into `set_members` (`len = pool size + 1`).
    pub set_offsets: Vec<u32>,
    /// Concatenated sorted member lists of every pooled set.
    pub set_members: Vec<u32>,
}

/// The original dense transitive-closure bitset — `|V|²/8` bytes, one
/// ancestor-set row per concept. Kept as the differential reference the
/// hybrid index is pinned against (fuzz sweep + the tests below); infeasible
/// at SNOMED scale and no longer used on any serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseReachability {
    /// `words_per_row` u64 words per concept; bit `a` of row `d` set iff
    /// `a` is a strict ancestor of `d`.
    bits: Vec<u64>,
    words_per_row: usize,
    n: usize,
}

impl DenseReachability {
    /// Build the dense closure for `ekg` (native edges only — shortcuts
    /// never add reachability).
    pub fn build(ekg: &Ekg) -> Self {
        let n = ekg.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        // Ancestors flow downward, so iterate parents-first (reverse of
        // the children-first topo order): ancestors(c) = ⋃_p ({p} ∪
        // ancestors(p)).
        let mut acc = vec![0u64; words_per_row];
        for &c in ekg.topo_children_first().iter().rev() {
            acc.fill(0);
            for parent in ekg.native_parents(c) {
                let p = parent.as_usize();
                let src = &bits[p * words_per_row..(p + 1) * words_per_row];
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a |= s;
                }
                acc[p / 64] |= 1 << (p % 64);
            }
            let row = c.as_usize();
            bits[row * words_per_row..(row + 1) * words_per_row].copy_from_slice(&acc);
        }
        Self { bits, words_per_row, n }
    }

    /// Whether `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ExtConceptId, desc: ExtConceptId) -> bool {
        if anc == desc {
            return false;
        }
        let row = desc.as_usize();
        let a = anc.as_usize();
        debug_assert!(row < self.n && a < self.n);
        self.bits[row * self.words_per_row + a / 64] & (1 << (a % 64)) != 0
    }

    /// Number of strict ancestors of `desc`.
    pub fn ancestor_count(&self, desc: ExtConceptId) -> usize {
        let row = desc.as_usize();
        self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Strict-descendant count for every concept (indexed by concept id).
    pub fn descendant_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n];
        for row in 0..self.n {
            let words = &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row];
            for (wi, &word) in words.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    counts[wi * 64 + b] += 1;
                    w &= w - 1;
                }
            }
        }
        counts
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    fn diamond() -> Ekg {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("a");
        let bb = b.concept("b");
        let c = b.concept("c");
        let d = b.concept("d");
        b.is_a(a, root);
        b.is_a(bb, root);
        b.is_a(c, a);
        b.is_a(c, bb);
        b.is_a(d, c);
        b.build().unwrap()
    }

    /// Every probe of the hybrid index must equal the dense closure and
    /// the graph walk — the contract the whole PR rests on.
    fn assert_matches_dense(g: &Ekg) {
        let hybrid = ReachabilityIndex::build(g);
        let dense = DenseReachability::build(g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(
                    hybrid.is_ancestor(anc, desc),
                    dense.is_ancestor(anc, desc),
                    "{:?} vs {:?}",
                    g.name(anc),
                    g.name(desc)
                );
            }
        }
        for c in g.concepts() {
            assert_eq!(hybrid.ancestor_count(c), dense.ancestor_count(c), "{:?}", g.name(c));
        }
        assert_eq!(hybrid.descendant_counts(), dense.descendant_counts());
    }

    #[test]
    fn matches_walking_implementation() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(
                    idx.is_ancestor(anc, desc),
                    g.is_ancestor(anc, desc),
                    "{:?} vs {:?}",
                    g.name(anc),
                    g.name(desc)
                );
            }
        }
    }

    #[test]
    fn hybrid_matches_dense_on_every_shape() {
        for g in [diamond(), wide_random(), chain(100), singleton()] {
            assert_matches_dense(&g);
        }
    }

    #[test]
    fn ancestor_counts() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        assert_eq!(idx.ancestor_count(d), 4); // c, a, b, root
        assert_eq!(idx.ancestor_count(g.root()), 0);
    }

    #[test]
    fn self_is_not_ancestor() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for c in g.concepts() {
            assert!(!idx.is_ancestor(c, c));
        }
    }

    #[test]
    fn shortcuts_do_not_change_the_closure() {
        let mut g = diamond();
        let before = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        g.add_shortcut(d, g.root(), 3).unwrap();
        let after = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(before.is_ancestor(anc, desc), after.is_ancestor(anc, desc));
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        for g in [diamond(), wide_random()] {
            let seq = ReachabilityIndex::build(&g);
            for threads in [1, 2, 4, 8] {
                let par = ReachabilityIndex::build_with_threads(&g, threads);
                assert_eq!(par, seq, "threads={threads}");
            }
        }
    }

    #[test]
    fn descendant_counts_match_graph_walk() {
        for g in [diamond(), wide_random()] {
            let idx = ReachabilityIndex::build(&g);
            let counts = idx.descendant_counts();
            for c in g.concepts() {
                assert_eq!(
                    counts[c.as_usize()],
                    g.descendants(c).len() as u64,
                    "{:?}",
                    g.name(c)
                );
            }
        }
    }

    #[test]
    fn parts_round_trip_is_bit_identical() {
        for g in [diamond(), wide_random(), chain(100), singleton()] {
            let idx = ReachabilityIndex::build(&g);
            let back = ReachabilityIndex::from_parts(idx.to_parts());
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn exception_sets_are_shared_down_single_parent_chains() {
        // diamond: only c is multi-parent; d (single child of c) must
        // share c's pooled set, so the pool holds empty + one entry.
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        assert_eq!(idx.exception_set_count(), 2);
    }

    #[test]
    fn hybrid_footprint_beats_dense_on_tree_like_graphs() {
        let g = chain(500);
        let hybrid = ReachabilityIndex::build(&g);
        let dense = DenseReachability::build(&g);
        assert!(
            hybrid.memory_bytes() * 2 < dense.memory_bytes(),
            "hybrid {} vs dense {}",
            hybrid.memory_bytes(),
            dense.memory_bytes()
        );
        assert_eq!(hybrid.dense_equivalent_bytes(), dense.memory_bytes());
    }

    /// A 150-concept multi-parent DAG (crosses word boundaries, has deep
    /// and wide levels) built from a deterministic recurrence.
    fn wide_random() -> Ekg {
        let mut b = EkgBuilder::new();
        let mut ids = vec![b.concept("c0")];
        for i in 1..150usize {
            let c = b.concept(&format!("c{i}"));
            // One guaranteed parent plus a distinct pseudo-random second one.
            let p1 = (i * 7 + 3) % i;
            b.is_a(c, ids[p1]);
            if i > 4 {
                let p2 = (i * 13 + 1) % (i - 2);
                if p2 != p1 {
                    b.is_a(c, ids[p2]);
                }
            }
            ids.push(c);
        }
        b.build().unwrap()
    }

    fn chain(len: usize) -> Ekg {
        let mut b = EkgBuilder::new();
        let mut prev = b.concept("n0");
        for i in 1..len {
            let c = b.concept(&format!("n{i}"));
            b.is_a(c, prev);
            prev = c;
        }
        b.build().unwrap()
    }

    fn singleton() -> Ekg {
        let mut b = EkgBuilder::new();
        b.concept("only");
        b.build().unwrap()
    }

    /// Delta repair: for every edge/concept mutation, repairing the
    /// pre-mutation index over the dirty cone must be bit-identical to a
    /// fresh build on the mutated graph.
    #[test]
    fn repair_matches_fresh_build() {
        use std::collections::HashSet;
        let cone = |g: &Ekg, u: ExtConceptId| -> HashSet<ExtConceptId> {
            let mut cone = g.descendants(u);
            cone.insert(u);
            cone
        };

        // Edge addition on a multi-parent lattice.
        let mut g = wide_random();
        let before = ReachabilityIndex::build(&g);
        let child = g.lookup_name("c149")[0];
        let parent = g.lookup_name("c50")[0];
        g.add_is_a(child, parent).unwrap();
        g.rebuild_derived().unwrap();
        let repaired = before.repair(&g, &cone(&g, child));
        assert_eq!(repaired, ReachabilityIndex::build(&g), "edge add");

        // Edge removal (c is multi-parent in the diamond).
        let mut g = diamond();
        let before = ReachabilityIndex::build(&g);
        let c = g.lookup_name("c")[0];
        let a = g.lookup_name("a")[0];
        g.remove_is_a(c, a).unwrap();
        g.rebuild_derived().unwrap();
        let repaired = before.repair(&g, &cone(&g, c));
        assert_eq!(repaired, ReachabilityIndex::build(&g), "edge remove");

        // Concept addition (index must grow).
        let mut g = wide_random();
        let before = ReachabilityIndex::build(&g);
        let p1 = g.lookup_name("c7")[0];
        let p2 = g.lookup_name("c11")[0];
        let fresh = g.add_concept("fresh", &[], &[p1, p2]).unwrap();
        g.rebuild_derived().unwrap();
        let repaired = before.repair(&g, &HashSet::from([fresh]));
        assert_eq!(repaired, ReachabilityIndex::build(&g), "concept add");
    }

    #[test]
    fn scales_past_one_bitset_word() {
        // 100 concepts in a chain crosses the 64-bit word boundary.
        let g = chain(100);
        let idx = ReachabilityIndex::build(&g);
        let first = g.lookup_name("n0")[0];
        let last = g.lookup_name("n99")[0];
        let mid = g.lookup_name("n70")[0];
        assert!(idx.is_ancestor(first, last));
        assert!(idx.is_ancestor(mid, last));
        assert!(!idx.is_ancestor(last, first));
        assert_eq!(idx.ancestor_count(last), 99);
    }
}
