//! Bitset transitive-closure index for subsumption reachability.
//!
//! `Ekg::is_ancestor` walks the graph per query; ingestion and LCS
//! minimality pruning issue many such queries against a fixed graph. This
//! index materializes each concept's ancestor set as a bitset in one
//! children-first pass — `O(|V|²/64 + |E|·|V|/64)` time, `|V|²/8` bytes —
//! turning every subsequent query into a single bit probe. At SNOMED-like
//! scales (hundreds of thousands of concepts) a full closure stops being
//! attractive; the index is therefore an opt-in accelerator for the
//! generated-world scales this repository runs at.

use medkb_types::{ExtConceptId, Id};

use crate::graph::Ekg;

/// Materialized ancestor bitsets.
#[derive(Debug, Clone)]
pub struct ReachabilityIndex {
    /// `words_per_row` u64 words per concept; bit `d` of row `a` set iff
    /// `a` is a strict ancestor of... see [`ReachabilityIndex::is_ancestor`]
    /// (rows store each concept's *ancestors*).
    bits: Vec<u64>,
    words_per_row: usize,
    n: usize,
}

impl ReachabilityIndex {
    /// Build the closure for `ekg` (native and shortcut edges — shortcuts
    /// never add reachability, so the result equals the native closure).
    pub fn build(ekg: &Ekg) -> Self {
        let n = ekg.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        // Ancestors flow downward, so iterate parents-first (reverse of
        // the children-first topo order): ancestors(c) = ⋃_p ({p} ∪
        // ancestors(p)).
        let mut acc = vec![0u64; words_per_row];
        for &c in ekg.topo_children_first().iter().rev() {
            acc.fill(0);
            for parent in ekg.native_parents(c) {
                let p = parent.as_usize();
                let src = &bits[p * words_per_row..(p + 1) * words_per_row];
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a |= s;
                }
                acc[p / 64] |= 1 << (p % 64);
            }
            let row = c.as_usize();
            bits[row * words_per_row..(row + 1) * words_per_row].copy_from_slice(&acc);
        }
        Self { bits, words_per_row, n }
    }

    /// Whether `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ExtConceptId, desc: ExtConceptId) -> bool {
        if anc == desc {
            return false;
        }
        let row = desc.as_usize();
        let a = anc.as_usize();
        debug_assert!(row < self.n && a < self.n);
        self.bits[row * self.words_per_row + a / 64] & (1 << (a % 64)) != 0
    }

    /// Number of strict ancestors of `desc`.
    pub fn ancestor_count(&self, desc: ExtConceptId) -> usize {
        let row = desc.as_usize();
        self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EkgBuilder;

    fn diamond() -> Ekg {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("a");
        let bb = b.concept("b");
        let c = b.concept("c");
        let d = b.concept("d");
        b.is_a(a, root);
        b.is_a(bb, root);
        b.is_a(c, a);
        b.is_a(c, bb);
        b.is_a(d, c);
        b.build().unwrap()
    }

    #[test]
    fn matches_walking_implementation() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(
                    idx.is_ancestor(anc, desc),
                    g.is_ancestor(anc, desc),
                    "{:?} vs {:?}",
                    g.name(anc),
                    g.name(desc)
                );
            }
        }
    }

    #[test]
    fn ancestor_counts() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        assert_eq!(idx.ancestor_count(d), 4); // c, a, b, root
        assert_eq!(idx.ancestor_count(g.root()), 0);
    }

    #[test]
    fn self_is_not_ancestor() {
        let g = diamond();
        let idx = ReachabilityIndex::build(&g);
        for c in g.concepts() {
            assert!(!idx.is_ancestor(c, c));
        }
    }

    #[test]
    fn shortcuts_do_not_change_the_closure() {
        let mut g = diamond();
        let before = ReachabilityIndex::build(&g);
        let d = g.lookup_name("d")[0];
        g.add_shortcut(d, g.root(), 3).unwrap();
        let after = ReachabilityIndex::build(&g);
        for anc in g.concepts() {
            for desc in g.concepts() {
                assert_eq!(before.is_ancestor(anc, desc), after.is_ancestor(anc, desc));
            }
        }
    }

    #[test]
    fn scales_past_one_bitset_word() {
        // 100 concepts in a chain crosses the 64-bit word boundary.
        let mut b = EkgBuilder::new();
        let mut prev = b.concept("n0");
        for i in 1..100 {
            let c = b.concept(&format!("n{i}"));
            b.is_a(c, prev);
            prev = c;
        }
        let g = b.build().unwrap();
        let idx = ReachabilityIndex::build(&g);
        let first = g.lookup_name("n0")[0];
        let last = g.lookup_name("n99")[0];
        let mid = g.lookup_name("n70")[0];
        assert!(idx.is_ancestor(first, last));
        assert!(idx.is_ancestor(mid, last));
        assert!(!idx.is_ancestor(last, first));
        assert_eq!(idx.ancestor_count(last), 99);
        assert!(idx.memory_bytes() >= 100 * 2 * 8);
    }
}
