//! External knowledge source substrate.
//!
//! §2.2 of the paper assumes the external knowledge source (SNOMED CT in the
//! evaluation) is a *rooted directed acyclic graph* of concepts linked by
//! subsumption (`A ⊑ B`: `A` specializes `B`), with a single top concept
//! (`owl:Thing`) of which every concept is a descendant. The paper stores
//! SNOMED CT in JanusGraph; this crate is the equivalent embedded graph
//! store, purpose-built for the operations the relaxation method needs:
//!
//! * construction + structural validation ([`EkgBuilder`] / [`Ekg`]),
//! * topological iteration with children before parents (Algorithm 1
//!   line 12),
//! * ancestor/descendant traversal and weighted upward distances,
//! * least common subsumer computation with the footnote-1 tie-breaking
//!   ([`lcs`]),
//! * direction-tagged paths between concepts for the Eq. 4 path weight
//!   ([`path`]),
//! * bounded-radius neighborhood search over the (customized) graph
//!   (Algorithm 2 line 2), where application-specific shortcut edges added
//!   by ingestion count as one hop but remember their original distance.

#![warn(missing_docs)]

pub mod graph;
pub mod lcs;
pub mod path;
pub mod reach;
pub mod stats;

pub use graph::{Edge, Ekg, EkgBuilder, EkgParts, NeighborhoodScan, UpwardDistances, UpwardScratch};
pub use lcs::{lcs_with_upward, lcs_with_upward_scratch, LcsOutcome};
pub use path::{Direction, PathSummary};
pub use reach::{DenseReachability, ReachParts, ReachabilityIndex};
pub use stats::{to_dot, EkgStats};
