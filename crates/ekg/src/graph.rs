//! The external knowledge source graph: storage, construction, validation,
//! and traversal.

use std::collections::{HashMap, HashSet, VecDeque};

use medkb_text::normalize;
use medkb_types::{ExtConceptId, Id, IdVec, MedKbError, Result, StringInterner};

/// A subsumption edge, stored in both directions.
///
/// `weight` is the *original* hop distance the edge represents: native
/// subsumption edges have weight 1; application-specific shortcut edges
/// added during ingestion (§5.1, Figure 5) carry the length of the original
/// path so the semantic distance between their endpoints is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The other endpoint.
    pub to: ExtConceptId,
    /// Original hop distance represented by this edge (≥ 1).
    pub weight: u32,
    /// Whether this is an ingestion-added shortcut rather than a native
    /// subsumption edge.
    pub shortcut: bool,
}

/// Builder for [`Ekg`]. Collects concepts, synonyms, and `is-a` edges, then
/// validates the §2.2 structural requirements in [`EkgBuilder::build`].
#[derive(Debug, Default)]
pub struct EkgBuilder {
    names: StringInterner<ExtConceptId>,
    synonyms: Vec<Vec<String>>,
    edges: Vec<(ExtConceptId, ExtConceptId)>,
}

impl EkgBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a concept by its unique primary name.
    pub fn concept(&mut self, name: &str) -> ExtConceptId {
        let id = self.names.intern(name);
        if id.as_usize() == self.synonyms.len() {
            self.synonyms.push(Vec::new());
        }
        id
    }

    /// Attach an additional synonym to `concept`.
    pub fn synonym(&mut self, concept: ExtConceptId, synonym: &str) {
        self.synonyms[concept.as_usize()].push(synonym.to_string());
    }

    /// Record `child ⊑ parent` (child *specializes* parent).
    pub fn is_a(&mut self, child: ExtConceptId, parent: ExtConceptId) {
        self.edges.push((child, parent));
    }

    /// Convenience: register both concepts by name and the edge between them.
    pub fn is_a_named(&mut self, child: &str, parent: &str) -> (ExtConceptId, ExtConceptId) {
        let c = self.concept(child);
        let p = self.concept(parent);
        self.is_a(c, p);
        (c, p)
    }

    /// Number of registered concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no concept has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Validate and freeze the graph.
    ///
    /// # Errors
    /// * [`MedKbError::CycleDetected`] if the subsumption relation has a
    ///   cycle.
    /// * [`MedKbError::InvalidRoot`] unless exactly one concept has no
    ///   parent.
    /// * [`MedKbError::InvalidArgument`] if some concept is not a descendant
    ///   of the root, or a duplicate edge was recorded.
    pub fn build(self) -> Result<Ekg> {
        let n = self.names.len();
        let mut up: IdVec<ExtConceptId, Vec<Edge>> = IdVec::filled(Vec::new(), n);
        let mut down: IdVec<ExtConceptId, Vec<Edge>> = IdVec::filled(Vec::new(), n);
        let mut seen: HashSet<(ExtConceptId, ExtConceptId)> = HashSet::new();
        for (child, parent) in &self.edges {
            if child == parent {
                return Err(MedKbError::invalid(format!(
                    "self subsumption on {:?}",
                    self.names.resolve(*child)
                )));
            }
            if !seen.insert((*child, *parent)) {
                return Err(MedKbError::invalid(format!(
                    "duplicate edge {:?} -> {:?}",
                    self.names.resolve(*child),
                    self.names.resolve(*parent)
                )));
            }
            up[*child].push(Edge { to: *parent, weight: 1, shortcut: false });
            down[*parent].push(Edge { to: *child, weight: 1, shortcut: false });
        }

        // Root: exactly one concept without parents.
        let roots: Vec<ExtConceptId> =
            up.iter().filter(|(_, es)| es.is_empty()).map(|(id, _)| id).collect();
        if roots.len() != 1 {
            return Err(MedKbError::InvalidRoot { roots: roots.len() });
        }
        let root = roots[0];

        // Kahn's algorithm over child -> parent edges gives a topological
        // order with children strictly before parents (Algorithm 1 line 12).
        let mut indegree: IdVec<ExtConceptId, u32> = IdVec::filled(0, n);
        for (_, es) in up.iter() {
            for e in es {
                indegree[e.to] += 1;
            }
        }
        let mut queue: VecDeque<ExtConceptId> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(id, _)| id).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            topo.push(c);
            for e in &up[c] {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    queue.push_back(e.to);
                }
            }
        }
        if topo.len() != n {
            let stuck: Vec<&str> = indegree
                .iter()
                .filter(|(_, &d)| d > 0)
                .map(|(id, _)| self.names.resolve(id))
                .take(4)
                .collect();
            return Err(MedKbError::CycleDetected { detail: format!("involving {stuck:?}") });
        }

        // Reachability + depth: BFS down from the root.
        let mut depth: IdVec<ExtConceptId, u32> = IdVec::filled(u32::MAX, n);
        depth[root] = 0;
        let mut bfs = VecDeque::from([root]);
        let mut reached = 1usize;
        while let Some(c) = bfs.pop_front() {
            for e in &down[c] {
                if depth[e.to] == u32::MAX {
                    depth[e.to] = depth[c] + 1;
                    reached += 1;
                    bfs.push_back(e.to);
                }
            }
        }
        if reached != n {
            return Err(MedKbError::invalid(format!(
                "{} concept(s) unreachable from root {:?}",
                n - reached,
                self.names.resolve(root)
            )));
        }

        // Name lookup: normalized primary names and synonyms.
        let mut lookup: HashMap<Box<str>, Vec<ExtConceptId>> = HashMap::new();
        for (id, name) in self.names.iter() {
            lookup.entry(normalize(name).into()).or_default().push(id);
        }
        let mut synonyms: IdVec<ExtConceptId, Vec<Box<str>>> = IdVec::filled(Vec::new(), n);
        for (idx, syns) in self.synonyms.iter().enumerate() {
            let id = ExtConceptId::from_usize(idx);
            for syn in syns {
                let norm = normalize(syn);
                let entry = lookup.entry(norm.clone().into()).or_default();
                if !entry.contains(&id) {
                    entry.push(id);
                }
                synonyms[id].push(syn.as_str().into());
            }
        }

        Ok(Ekg { names: self.names, synonyms, lookup, up, down, root, topo, depth })
    }
}

/// The frozen external knowledge source graph.
///
/// Construct through [`EkgBuilder`]. After construction the only permitted
/// mutation is [`Ekg::add_shortcut`], which ingestion uses for the §5.1
/// sparsity customization (adding a descendant → ancestor edge never breaks
/// acyclicity or the topological order).
#[derive(Debug, Clone)]
pub struct Ekg {
    names: StringInterner<ExtConceptId>,
    synonyms: IdVec<ExtConceptId, Vec<Box<str>>>,
    lookup: HashMap<Box<str>, Vec<ExtConceptId>>,
    up: IdVec<ExtConceptId, Vec<Edge>>,
    down: IdVec<ExtConceptId, Vec<Edge>>,
    root: ExtConceptId,
    topo: Vec<ExtConceptId>,
    depth: IdVec<ExtConceptId, u32>,
}

impl Ekg {
    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph is empty (never true for a built graph, which has
    /// at least the root).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The single top concept (`owl:Thing` in OWL terms).
    pub fn root(&self) -> ExtConceptId {
        self.root
    }

    /// Primary name of `concept`.
    pub fn name(&self, concept: ExtConceptId) -> &str {
        self.names.resolve(concept)
    }

    /// Synonyms of `concept` (primary name not included).
    pub fn synonyms(&self, concept: ExtConceptId) -> impl Iterator<Item = &str> {
        self.synonyms[concept].iter().map(|s| &**s)
    }

    /// Resolve a name or synonym (normalized) to concepts carrying it.
    pub fn lookup_name(&self, name: &str) -> &[ExtConceptId] {
        self.lookup.get(normalize(name).as_str()).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Hop depth of `concept` below the root (root = 0), over native edges.
    pub fn depth(&self, concept: ExtConceptId) -> u32 {
        self.depth[concept]
    }

    /// Outgoing subsumption edges (towards parents / more general).
    pub fn parents(&self, concept: ExtConceptId) -> &[Edge] {
        &self.up[concept]
    }

    /// Incoming subsumption edges (towards children / more specific).
    pub fn children(&self, concept: ExtConceptId) -> &[Edge] {
        &self.down[concept]
    }

    /// Direct (native, non-shortcut) parents.
    pub fn native_parents(&self, concept: ExtConceptId) -> impl Iterator<Item = ExtConceptId> + '_ {
        self.up[concept].iter().filter(|e| !e.shortcut).map(|e| e.to)
    }

    /// Direct (native, non-shortcut) children.
    pub fn native_children(
        &self,
        concept: ExtConceptId,
    ) -> impl Iterator<Item = ExtConceptId> + '_ {
        self.down[concept].iter().filter(|e| !e.shortcut).map(|e| e.to)
    }

    /// Topological order with children before parents (root last).
    pub fn topo_children_first(&self) -> &[ExtConceptId] {
        &self.topo
    }

    /// All concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = ExtConceptId> {
        (0..self.len()).map(ExtConceptId::from_usize)
    }

    /// All strict ancestors of `concept` (excluding itself), via native and
    /// shortcut edges.
    pub fn ancestors(&self, concept: ExtConceptId) -> HashSet<ExtConceptId> {
        let mut out = HashSet::new();
        let mut stack: Vec<ExtConceptId> = self.up[concept].iter().map(|e| e.to).collect();
        while let Some(c) = stack.pop() {
            if out.insert(c) {
                stack.extend(self.up[c].iter().map(|e| e.to));
            }
        }
        out
    }

    /// All strict descendants of `concept` (excluding itself).
    pub fn descendants(&self, concept: ExtConceptId) -> HashSet<ExtConceptId> {
        let mut out = HashSet::new();
        let mut stack: Vec<ExtConceptId> = self.down[concept].iter().map(|e| e.to).collect();
        while let Some(c) = stack.pop() {
            if out.insert(c) {
                stack.extend(self.down[c].iter().map(|e| e.to));
            }
        }
        out
    }

    /// Whether `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ExtConceptId, desc: ExtConceptId) -> bool {
        if anc == desc {
            return false;
        }
        if anc == self.root {
            return true;
        }
        let mut visited = HashSet::new();
        let mut stack: Vec<ExtConceptId> = self.up[desc].iter().map(|e| e.to).collect();
        while let Some(c) = stack.pop() {
            if c == anc {
                return true;
            }
            if visited.insert(c) {
                stack.extend(self.up[c].iter().map(|e| e.to));
            }
        }
        false
    }

    /// Weighted shortest upward distances from `concept` to every ancestor
    /// (weights are original hop distances, so shortcut edges do not change
    /// the result relative to the native graph).
    pub fn upward_distances(&self, concept: ExtConceptId) -> HashMap<ExtConceptId, u32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist: HashMap<ExtConceptId, u32> = HashMap::new();
        let mut heap: BinaryHeap<(Reverse<u32>, ExtConceptId)> = BinaryHeap::new();
        dist.insert(concept, 0);
        heap.push((Reverse(0), concept));
        while let Some((Reverse(d), c)) = heap.pop() {
            if dist.get(&c).copied() != Some(d) {
                continue;
            }
            for e in &self.up[c] {
                let nd = d + e.weight;
                if dist.get(&e.to).is_none_or(|&old| nd < old) {
                    dist.insert(e.to, nd);
                    heap.push((Reverse(nd), e.to));
                }
            }
        }
        dist.remove(&concept);
        dist
    }

    /// [`Ekg::upward_distances`] into a dense, reusable [`UpwardDistances`]
    /// table — one `O(V)` allocation amortized over every probe instead of
    /// a fresh `HashMap` per call. The source itself is present at
    /// distance 0 (the convention LCS computation wants).
    pub fn upward_distances_from(&self, concept: ExtConceptId) -> UpwardDistances {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist: IdVec<ExtConceptId, u32> = IdVec::filled(u32::MAX, self.len());
        let mut reached: Vec<ExtConceptId> = Vec::new();
        let mut heap: BinaryHeap<(Reverse<u32>, ExtConceptId)> = BinaryHeap::new();
        dist[concept] = 0;
        heap.push((Reverse(0), concept));
        while let Some((Reverse(d), c)) = heap.pop() {
            if dist[c] != d {
                continue;
            }
            if c != concept {
                reached.push(c);
            }
            for e in &self.up[c] {
                let nd = d + e.weight;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    heap.push((Reverse(nd), e.to));
                }
            }
        }
        UpwardDistances { source: concept, dist, reached }
    }

    /// [`Ekg::upward_distances_from`] into caller-owned scratch storage.
    ///
    /// The hot loop of the query-scoped scoring engine runs one Dijkstra
    /// per candidate; with a [`UpwardScratch`] reused across candidates the
    /// per-run cost is proportional to the ancestors actually reached —
    /// no `O(V)` table allocation or clearing (stale entries are
    /// invalidated by epoch stamping). Distances computed are identical to
    /// [`Ekg::upward_distances`].
    pub fn upward_distances_into(&self, concept: ExtConceptId, scratch: &mut UpwardScratch) {
        use std::cmp::Reverse;
        scratch.begin(concept, self.len());
        scratch.set(concept, 0);
        scratch.heap.push((Reverse(0), concept));
        while let Some((Reverse(d), c)) = scratch.heap.pop() {
            if scratch.distance(c) != Some(d) {
                continue;
            }
            if c != concept {
                scratch.reached.push(c);
            }
            for e in &self.up[c] {
                let nd = d + e.weight;
                if scratch.distance(e.to).is_none_or(|old| nd < old) {
                    scratch.set(e.to, nd);
                    scratch.heap.push((Reverse(nd), e.to));
                }
            }
        }
    }

    /// [`Ekg::upward_distances_into`] specialized for a graph whose upward
    /// edges all carry weight 1 (the native graph before customization
    /// adds shortcuts): a frontier BFS that settles whole distance levels
    /// at once instead of paying heap traffic per node.
    ///
    /// Settle order is identical to the Dijkstra form — ascending
    /// distance, descending id within a distance — because that order is
    /// fully determined by the final distances; each level is sorted
    /// descending before being appended to `reached`.
    ///
    /// # Panics
    /// Debug-asserts that every upward edge it crosses has weight 1.
    pub fn upward_unit_distances_into(&self, concept: ExtConceptId, scratch: &mut UpwardScratch) {
        scratch.begin(concept, self.len());
        scratch.set(concept, 0);
        let mut frontier: Vec<ExtConceptId> = vec![concept];
        let mut next: Vec<ExtConceptId> = Vec::new();
        let mut d = 0u32;
        while !frontier.is_empty() {
            let nd = d + 1;
            for &c in &frontier {
                for e in &self.up[c] {
                    debug_assert_eq!(e.weight, 1, "unit-distance BFS on a weighted graph");
                    if scratch.distance(e.to).is_none() {
                        scratch.set(e.to, nd);
                        next.push(e.to);
                    }
                }
            }
            next.sort_unstable_by(|a, b| b.cmp(a));
            scratch.reached.extend(next.iter().copied());
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            d = nd;
        }
    }

    /// Weighted shortest *downward* distances from `concept` to every
    /// descendant, into caller-owned scratch. Since the down-graph mirrors
    /// the up-graph edge for edge (same weights), `scratch.distance(d)`
    /// afterwards equals the upward distance `d → concept` — one run
    /// answers "how far below `concept`" for every descendant, which is
    /// what path reconstruction probes repeatedly.
    pub fn downward_distances_into(&self, concept: ExtConceptId, scratch: &mut UpwardScratch) {
        use std::cmp::Reverse;
        scratch.begin(concept, self.len());
        scratch.set(concept, 0);
        scratch.heap.push((Reverse(0), concept));
        while let Some((Reverse(d), c)) = scratch.heap.pop() {
            if scratch.distance(c) != Some(d) {
                continue;
            }
            if c != concept {
                scratch.reached.push(c);
            }
            for e in &self.down[c] {
                let nd = d + e.weight;
                if scratch.distance(e.to).is_none_or(|old| nd < old) {
                    scratch.set(e.to, nd);
                    scratch.heap.push((Reverse(nd), e.to));
                }
            }
        }
    }

    /// Weighted shortest upward distance from `desc` to `anc`, if `anc`
    /// subsumes `desc`.
    pub fn distance_to_ancestor(&self, desc: ExtConceptId, anc: ExtConceptId) -> Option<u32> {
        if desc == anc {
            return Some(0);
        }
        self.upward_distances(desc).get(&anc).copied()
    }

    /// Concepts within `radius` hops of `concept` over the *customized*
    /// graph: every edge — native or shortcut — counts as one hop, which is
    /// exactly why ingestion adds shortcuts (§5.1). Returns `(concept, hops)`
    /// pairs excluding the start, in BFS order.
    pub fn neighborhood(&self, concept: ExtConceptId, radius: u32) -> Vec<(ExtConceptId, u32)> {
        let mut scan = NeighborhoodScan::new(self, concept);
        scan.expand_to(radius);
        scan.into_discovered()
    }

    /// Add an application-specific shortcut edge `desc → anc` carrying the
    /// original distance between the two (§5.1, Figure 5).
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if `anc` is not a strict ancestor of
    /// `desc` (which would break acyclicity) or an edge already exists.
    pub fn add_shortcut(
        &mut self,
        desc: ExtConceptId,
        anc: ExtConceptId,
        original_distance: u32,
    ) -> Result<()> {
        let ok = self.is_ancestor(anc, desc);
        self.add_shortcut_validated(desc, anc, original_distance, ok)
    }

    /// [`Ekg::add_shortcut`] with the ancestry check answered by a
    /// prebuilt [`crate::reach::ReachabilityIndex`] — a single bit probe
    /// instead of a per-edge upward BFS, which is what makes the §5.1
    /// customization loop cheap at ingestion time. The index must have been
    /// built over this graph; shortcut edges never change the closure, so
    /// it stays valid across repeated insertions.
    pub fn add_shortcut_with(
        &mut self,
        desc: ExtConceptId,
        anc: ExtConceptId,
        original_distance: u32,
        reach: &crate::reach::ReachabilityIndex,
    ) -> Result<()> {
        let ok = reach.is_ancestor(anc, desc);
        self.add_shortcut_validated(desc, anc, original_distance, ok)
    }

    fn add_shortcut_validated(
        &mut self,
        desc: ExtConceptId,
        anc: ExtConceptId,
        original_distance: u32,
        is_ancestor: bool,
    ) -> Result<()> {
        if !is_ancestor {
            return Err(MedKbError::invalid(format!(
                "shortcut target {:?} is not an ancestor of {:?}",
                self.name(anc),
                self.name(desc)
            )));
        }
        if self.up[desc].iter().any(|e| e.to == anc) {
            return Err(MedKbError::invalid(format!(
                "edge {:?} -> {:?} already exists",
                self.name(desc),
                self.name(anc)
            )));
        }
        if original_distance < 2 {
            return Err(MedKbError::invalid(
                "shortcut must span a path of at least 2 hops".to_string(),
            ));
        }
        self.up[desc].push(Edge { to: anc, weight: original_distance, shortcut: true });
        self.down[anc].push(Edge { to: desc, weight: original_distance, shortcut: true });
        Ok(())
    }

    /// Number of edges (native + shortcut), counted once per edge.
    pub fn edge_count(&self) -> usize {
        self.up.iter().map(|(_, es)| es.len()).sum()
    }

    /// Number of shortcut edges.
    pub fn shortcut_count(&self) -> usize {
        self.up.iter().map(|(_, es)| es.iter().filter(|e| e.shortcut).count()).sum()
    }

    /// Decompose into the flat parts `medkb-store` serializes.
    ///
    /// Everything is emitted in a canonical order: names/synonyms/edges in
    /// id order, the normalized-lookup table sorted by key (its `HashMap`
    /// iteration order is not stable). Edge lists keep their in-memory
    /// order — it encodes the shortcut insertion sequence BFS/Dijkstra
    /// traversals observe, so a rebuilt graph answers identically.
    pub fn to_parts(&self) -> EkgParts {
        let mut lookup: Vec<(Box<str>, Vec<ExtConceptId>)> =
            self.lookup.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        lookup.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        EkgParts {
            names: self.names.iter().map(|(_, s)| s.into()).collect(),
            synonyms: self.synonyms.iter().map(|(_, v)| v.clone()).collect(),
            lookup,
            up: self.up.iter().map(|(_, v)| v.clone()).collect(),
            down: self.down.iter().map(|(_, v)| v.clone()).collect(),
            root: self.root,
            topo: self.topo.clone(),
            depth: self.depth.iter().map(|(_, &d)| d).collect(),
        }
    }

    /// Reassemble a graph from [`Ekg::to_parts`] output without re-running
    /// builder validation or name normalization (the parts came from a
    /// validated graph; the store's checksums guard the bytes in between).
    pub fn from_parts(parts: EkgParts) -> Self {
        let mut names = StringInterner::new();
        for name in &parts.names {
            names.intern(name);
        }
        Self {
            names,
            synonyms: parts.synonyms.into_iter().collect(),
            lookup: parts.lookup.into_iter().collect(),
            up: parts.up.into_iter().collect(),
            down: parts.down.into_iter().collect(),
            root: parts.root,
            topo: parts.topo,
            depth: parts.depth.into_iter().collect(),
        }
    }

    // —— Delta mutation API (incremental ingestion, DESIGN.md §15) ——
    //
    // These methods mutate the *native* graph (no shortcut edges present;
    // the delta engine keeps the customized graph as derived output). Edge
    // and synonym mutations are positional so every removal is exactly
    // invertible; lookup-table maintenance preserves the canonical entry
    // form the builder produces: `[primary-name ids ascending] ++
    // [synonym-only ids ascending]`. `topo`/`depth` go stale after edge or
    // concept mutations — callers batch mutations and then run
    // [`Ekg::rebuild_derived`] once.

    /// Number of native (non-shortcut) parents of `concept`.
    pub fn native_parent_count(&self, concept: ExtConceptId) -> usize {
        self.up[concept].iter().filter(|e| !e.shortcut).count()
    }

    /// Add a native `child is-a parent` edge at the end of both edge lists.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] on a self edge, an out-of-range
    /// endpoint, a duplicate native edge, an edge out of the root, or an
    /// edge that would create a cycle.
    pub fn add_is_a(&mut self, child: ExtConceptId, parent: ExtConceptId) -> Result<()> {
        let up_pos = self.up[child].len();
        let down_pos = self.down[parent].len();
        self.add_is_a_at(child, parent, up_pos, down_pos)
    }

    /// [`Ekg::add_is_a`] inserting at explicit edge-list positions — the
    /// inverse of [`Ekg::remove_is_a`], restoring the exact list order the
    /// removal disturbed (traversal and serialization order depend on it).
    pub fn add_is_a_at(
        &mut self,
        child: ExtConceptId,
        parent: ExtConceptId,
        up_pos: usize,
        down_pos: usize,
    ) -> Result<()> {
        let n = self.len();
        if child.as_usize() >= n || parent.as_usize() >= n {
            return Err(MedKbError::invalid(format!(
                "is_a endpoint out of range ({} concepts)",
                n
            )));
        }
        if child == parent {
            return Err(MedKbError::invalid(format!(
                "self subsumption on {:?}",
                self.name(child)
            )));
        }
        if child == self.root {
            return Err(MedKbError::invalid(
                "the root cannot be given a parent".to_string(),
            ));
        }
        if self.up[child].iter().any(|e| !e.shortcut && e.to == parent) {
            return Err(MedKbError::invalid(format!(
                "duplicate edge {:?} -> {:?}",
                self.name(child),
                self.name(parent)
            )));
        }
        // Cycle: the new edge closes a loop iff `child` already subsumes
        // `parent` (checked on the current graph, which is acyclic by
        // induction).
        if self.is_ancestor(child, parent) {
            return Err(MedKbError::CycleDetected {
                detail: format!(
                    "edge {:?} -> {:?} would close a cycle",
                    self.name(child),
                    self.name(parent)
                ),
            });
        }
        if up_pos > self.up[child].len() || down_pos > self.down[parent].len() {
            return Err(MedKbError::invalid("edge insert position out of range".to_string()));
        }
        self.up[child].insert(up_pos, Edge { to: parent, weight: 1, shortcut: false });
        self.down[parent].insert(down_pos, Edge { to: child, weight: 1, shortcut: false });
        Ok(())
    }

    /// Remove the native `child is-a parent` edge, returning the positions
    /// it occupied in `(up[child], down[parent])` so [`Ekg::add_is_a_at`]
    /// can restore it exactly.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] if the edge does not exist or it is
    /// `child`'s last native parent edge (removing it would disconnect
    /// `child` from the root).
    pub fn remove_is_a(
        &mut self,
        child: ExtConceptId,
        parent: ExtConceptId,
    ) -> Result<(usize, usize)> {
        let n = self.len();
        if child.as_usize() >= n || parent.as_usize() >= n {
            return Err(MedKbError::invalid(format!(
                "is_a endpoint out of range ({} concepts)",
                n
            )));
        }
        let Some(up_pos) =
            self.up[child].iter().position(|e| !e.shortcut && e.to == parent)
        else {
            return Err(MedKbError::invalid(format!(
                "no native edge {:?} -> {:?}",
                self.name(child),
                self.name(parent)
            )));
        };
        if self.native_parent_count(child) < 2 {
            return Err(MedKbError::invalid(format!(
                "removing the last parent of {:?} would disconnect it",
                self.name(child)
            )));
        }
        let down_pos = self.down[parent]
            .iter()
            .position(|e| !e.shortcut && e.to == child)
            .expect("edge stored in both directions");
        self.up[child].remove(up_pos);
        self.down[parent].remove(down_pos);
        Ok((up_pos, down_pos))
    }

    /// Register a new concept with a unique primary name, optional
    /// synonyms, and at least one parent. The new id is always
    /// `self.len()` before the call (ids are append-only).
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] on a duplicate primary name, an
    /// empty parent list, a repeated or out-of-range parent.
    pub fn add_concept(
        &mut self,
        name: &str,
        synonyms: &[String],
        parents: &[ExtConceptId],
    ) -> Result<ExtConceptId> {
        if self.names.get(name).is_some() {
            return Err(MedKbError::invalid(format!(
                "concept name {name:?} already registered"
            )));
        }
        if parents.is_empty() {
            return Err(MedKbError::invalid(format!(
                "new concept {name:?} must have at least one parent"
            )));
        }
        let n = self.len();
        for (i, &p) in parents.iter().enumerate() {
            if p.as_usize() >= n {
                return Err(MedKbError::invalid(format!(
                    "parent of {name:?} out of range ({n} concepts)"
                )));
            }
            if parents[..i].contains(&p) {
                return Err(MedKbError::invalid(format!(
                    "repeated parent {:?} for {name:?}",
                    self.name(p)
                )));
            }
        }
        let id = self.names.intern(name);
        self.synonyms.push(Vec::new());
        self.up.push(Vec::new());
        self.down.push(Vec::new());
        // Fresh leaf: depth = 1 + min parent depth (its true BFS depth,
        // since all paths to it end in one of its parents); topo gets the
        // leaf prepended — children-first order admits any position before
        // its parents, and the engine rebuilds canonically afterwards.
        let d = parents.iter().map(|&p| self.depth[p]).min().unwrap_or(0) + 1;
        self.depth.push(d);
        self.topo.insert(0, id);
        for &p in parents {
            self.up[id].push(Edge { to: p, weight: 1, shortcut: false });
            self.down[p].push(Edge { to: id, weight: 1, shortcut: false });
        }
        self.lookup_insert(&normalize(name), id, true);
        for syn in synonyms {
            self.synonyms[id].push(syn.as_str().into());
            self.lookup_insert(&normalize(syn), id, false);
        }
        Ok(id)
    }

    /// Attach `synonym` at the end of `concept`'s synonym list, returning
    /// its index (the handle [`Ekg::remove_synonym`] takes).
    pub fn add_synonym(&mut self, concept: ExtConceptId, synonym: &str) -> Result<usize> {
        self.insert_synonym_at(concept, self.synonyms.get(concept).map_or(0, Vec::len), synonym)
    }

    /// Insert `synonym` at `index` in `concept`'s synonym list — the
    /// inverse of [`Ekg::remove_synonym`]. Returns the index.
    pub fn insert_synonym_at(
        &mut self,
        concept: ExtConceptId,
        index: usize,
        synonym: &str,
    ) -> Result<usize> {
        if concept.as_usize() >= self.len() {
            return Err(MedKbError::invalid(format!(
                "synonym target out of range ({} concepts)",
                self.len()
            )));
        }
        if index > self.synonyms[concept].len() {
            return Err(MedKbError::invalid(format!(
                "synonym index {index} out of range for {:?}",
                self.name(concept)
            )));
        }
        self.synonyms[concept].insert(index, synonym.into());
        self.lookup_insert(&normalize(synonym), concept, false);
        Ok(index)
    }

    /// Remove the synonym at `index` of `concept`, returning the raw
    /// string (so the inverse [`Ekg::insert_synonym_at`] can restore it).
    pub fn remove_synonym(&mut self, concept: ExtConceptId, index: usize) -> Result<String> {
        if concept.as_usize() >= self.len() {
            return Err(MedKbError::invalid(format!(
                "synonym target out of range ({} concepts)",
                self.len()
            )));
        }
        if index >= self.synonyms[concept].len() {
            return Err(MedKbError::invalid(format!(
                "synonym index {index} out of range for {:?}",
                self.name(concept)
            )));
        }
        let raw: String = self.synonyms[concept].remove(index).into();
        self.lookup_remove_if_unjustified(&normalize(&raw), concept);
        Ok(raw)
    }

    /// Insert `id` into the lookup entry for normalized `key`, preserving
    /// the builder's canonical entry order: primary-name carriers in
    /// ascending id order, then synonym-only carriers in ascending id
    /// order (first-carrier dedup means each id appears at most once).
    fn lookup_insert(&mut self, key: &str, id: ExtConceptId, primary: bool) {
        let names = &self.names;
        let entry = self.lookup.entry(key.into()).or_default();
        if entry.contains(&id) {
            return;
        }
        let is_primary_member = |m: ExtConceptId| normalize(names.resolve(m)) == key;
        let pos = if primary {
            entry.iter().position(|&m| !is_primary_member(m) || m > id)
        } else {
            entry.iter().position(|&m| !is_primary_member(m) && m > id)
        };
        entry.insert(pos.unwrap_or(entry.len()), id);
    }

    /// Drop `id` from the lookup entry for normalized `key` unless its
    /// primary name or a remaining synonym still justifies the membership.
    /// Entries left empty are removed entirely (a fresh build would not
    /// have the key).
    fn lookup_remove_if_unjustified(&mut self, key: &str, id: ExtConceptId) {
        let justified = normalize(self.names.resolve(id)) == key
            || self.synonyms[id].iter().any(|s| normalize(s) == key);
        if justified {
            return;
        }
        if let Some(entry) = self.lookup.get_mut(key) {
            entry.retain(|&m| m != id);
            if entry.is_empty() {
                self.lookup.remove(key);
            }
        }
    }

    /// Recompute the derived `topo` and `depth` tables after a batch of
    /// edge/concept mutations, with the exact algorithms
    /// [`EkgBuilder::build`] uses (Kahn children-first topological order
    /// seeded in id order; BFS hop depth from the root) — so a mutated
    /// graph carries the same derived state a freshly built twin would.
    ///
    /// # Errors
    /// [`MedKbError::CycleDetected`] / [`MedKbError::InvalidArgument`] if
    /// the mutated graph is cyclic or disconnected — cannot happen through
    /// the validated mutation methods, but kept as a hard backstop.
    pub fn rebuild_derived(&mut self) -> Result<()> {
        debug_assert_eq!(self.shortcut_count(), 0, "rebuild_derived expects a native graph");
        let n = self.len();
        let mut indegree: IdVec<ExtConceptId, u32> = IdVec::filled(0, n);
        for (_, es) in self.up.iter() {
            for e in es {
                indegree[e.to] += 1;
            }
        }
        let mut queue: VecDeque<ExtConceptId> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(id, _)| id).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(c) = queue.pop_front() {
            topo.push(c);
            for e in &self.up[c] {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    queue.push_back(e.to);
                }
            }
        }
        if topo.len() != n {
            let stuck: Vec<&str> = indegree
                .iter()
                .filter(|(_, &d)| d > 0)
                .map(|(id, _)| self.names.resolve(id))
                .take(4)
                .collect();
            return Err(MedKbError::CycleDetected { detail: format!("involving {stuck:?}") });
        }

        let mut depth: IdVec<ExtConceptId, u32> = IdVec::filled(u32::MAX, n);
        depth[self.root] = 0;
        let mut bfs = VecDeque::from([self.root]);
        let mut reached = 1usize;
        while let Some(c) = bfs.pop_front() {
            for e in &self.down[c] {
                if depth[e.to] == u32::MAX {
                    depth[e.to] = depth[c] + 1;
                    reached += 1;
                    bfs.push_back(e.to);
                }
            }
        }
        if reached != n {
            return Err(MedKbError::invalid(format!(
                "{} concept(s) unreachable from root {:?}",
                n - reached,
                self.names.resolve(self.root)
            )));
        }
        self.topo = topo;
        self.depth = depth;
        Ok(())
    }
}

/// Flat serialization parts of an [`Ekg`] ([`Ekg::to_parts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EkgParts {
    /// Primary names in concept-id order.
    pub names: Vec<Box<str>>,
    /// Synonym lists in concept-id order.
    pub synonyms: Vec<Vec<Box<str>>>,
    /// Normalized name/synonym → concepts, sorted by key.
    pub lookup: Vec<(Box<str>, Vec<ExtConceptId>)>,
    /// Upward edge lists (native + shortcut) in concept-id order.
    pub up: Vec<Vec<Edge>>,
    /// Downward edge lists in concept-id order.
    pub down: Vec<Vec<Edge>>,
    /// The single root.
    pub root: ExtConceptId,
    /// Children-first topological order.
    pub topo: Vec<ExtConceptId>,
    /// Native hop depth below the root, in concept-id order.
    pub depth: Vec<u32>,
}

/// Dense weighted upward-distance table from one source concept.
///
/// Produced by [`Ekg::upward_distances_from`]; the query-scoped scoring
/// engine computes this once per query and probes it for every candidate
/// LCS, replacing a per-pair `HashMap` Dijkstra. Probes are `O(1)` array
/// reads; [`UpwardDistances::iter`] walks only the reached ancestors.
#[derive(Debug, Clone)]
pub struct UpwardDistances {
    source: ExtConceptId,
    /// `u32::MAX` marks unreachable (the source is at 0).
    dist: IdVec<ExtConceptId, u32>,
    /// Reached ancestors (source excluded), in settle order.
    reached: Vec<ExtConceptId>,
}

impl UpwardDistances {
    /// The concept the distances start from.
    pub fn source(&self) -> ExtConceptId {
        self.source
    }

    /// Weighted upward distance to `ancestor`; `Some(0)` for the source
    /// itself, `None` when `ancestor` does not subsume the source.
    pub fn get(&self, ancestor: ExtConceptId) -> Option<u32> {
        match self.dist[ancestor] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// `(ancestor, distance)` pairs excluding the source.
    pub fn iter(&self) -> impl Iterator<Item = (ExtConceptId, u32)> + '_ {
        self.reached.iter().map(move |&c| (c, self.dist[c]))
    }

    /// Number of reached strict ancestors.
    pub fn len(&self) -> usize {
        self.reached.len()
    }

    /// Whether the source has no ancestors (i.e. it is the root).
    pub fn is_empty(&self) -> bool {
        self.reached.is_empty()
    }
}

/// Reusable storage for repeated [`Ekg::upward_distances_into`] runs.
///
/// Entries are validated by epoch stamping: starting a new run bumps the
/// epoch instead of clearing the distance table, so back-to-back runs cost
/// only the ancestors they actually touch. One scratch serves one source at
/// a time; probes refer to the most recent run.
#[derive(Debug, Clone, Default)]
pub struct UpwardScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    reached: Vec<ExtConceptId>,
    heap: std::collections::BinaryHeap<(std::cmp::Reverse<u32>, ExtConceptId)>,
    source: Option<ExtConceptId>,
}

impl UpwardScratch {
    /// An empty scratch; storage grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, source: ExtConceptId, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: every stale stamp would read as valid.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.reached.clear();
        self.heap.clear();
        self.source = Some(source);
    }

    fn set(&mut self, c: ExtConceptId, d: u32) {
        self.dist[c.as_usize()] = d;
        self.stamp[c.as_usize()] = self.epoch;
    }

    /// The source of the most recent run, if any.
    pub fn source(&self) -> Option<ExtConceptId> {
        self.source
    }

    /// Weighted upward distance to `ancestor` per the most recent run;
    /// `Some(0)` for the source itself, `None` when unreachable.
    pub fn distance(&self, ancestor: ExtConceptId) -> Option<u32> {
        let i = ancestor.as_usize();
        if self.stamp[i] == self.epoch {
            Some(self.dist[i])
        } else {
            None
        }
    }

    /// Strict ancestors reached by the most recent run, in settle order.
    pub fn reached(&self) -> &[ExtConceptId] {
        &self.reached
    }
}

/// Incremental BFS over the customized graph.
///
/// [`Ekg::neighborhood`] answers one radius and throws the frontier away;
/// Algorithm 2's dynamic radius growth asks for radius `r`, then `r+1`, …
/// until enough flagged instances are reachable, which made candidate
/// gathering quadratic in the final radius. The scan keeps the BFS queue
/// alive between [`NeighborhoodScan::expand_to`] calls so each increment
/// pays only for the newly reached ring. Discovery order is identical to
/// a fresh [`Ekg::neighborhood`] call at the same radius.
#[derive(Debug)]
pub struct NeighborhoodScan<'a> {
    ekg: &'a Ekg,
    seen: Vec<bool>,
    frontier: VecDeque<(ExtConceptId, u32)>,
    discovered: Vec<(ExtConceptId, u32)>,
    radius: u32,
}

impl<'a> NeighborhoodScan<'a> {
    /// A scan rooted at `start`, with nothing expanded yet (radius 0).
    pub fn new(ekg: &'a Ekg, start: ExtConceptId) -> Self {
        let mut seen = vec![false; ekg.len()];
        seen[start.as_usize()] = true;
        Self {
            ekg,
            seen,
            frontier: VecDeque::from([(start, 0u32)]),
            discovered: Vec::new(),
            radius: 0,
        }
    }

    /// Largest radius expanded so far.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Grow the scan until every concept within `radius` hops has been
    /// discovered, returning the full discovery list. No-op when `radius`
    /// does not exceed the current radius.
    pub fn expand_to(&mut self, radius: u32) -> &[(ExtConceptId, u32)] {
        while let Some(&(c, h)) = self.frontier.front() {
            if h >= radius {
                break;
            }
            self.frontier.pop_front();
            for e in self.ekg.parents(c).iter().chain(self.ekg.children(c).iter()) {
                let i = e.to.as_usize();
                if !self.seen[i] {
                    self.seen[i] = true;
                    self.discovered.push((e.to, h + 1));
                    self.frontier.push_back((e.to, h + 1));
                }
            }
        }
        self.radius = self.radius.max(radius);
        &self.discovered
    }

    /// Everything discovered so far (start excluded), in BFS order.
    pub fn discovered(&self) -> &[(ExtConceptId, u32)] {
        &self.discovered
    }

    /// Consume the scan, keeping the discovery list.
    pub fn into_discovered(self) -> Vec<(ExtConceptId, u32)> {
        self.discovered
    }
}

#[cfg(test)]
pub(crate) fn diamond() -> Ekg {
    // root -> a -> c, root -> b -> c (diamond), plus leaf d under c.
    let mut b = EkgBuilder::new();
    let root = b.concept("root");
    let a = b.concept("a");
    let bb = b.concept("b");
    let c = b.concept("c");
    let d = b.concept("d");
    b.is_a(a, root);
    b.is_a(bb, root);
    b.is_a(c, a);
    b.is_a(c, bb);
    b.is_a(d, c);
    b.build().expect("diamond is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id_of(g: &Ekg, name: &str) -> ExtConceptId {
        g.lookup_name(name)[0]
    }

    #[test]
    fn unit_bfs_matches_dijkstra_scratch() {
        // Same distances AND the same settle order, on a multi-parent
        // graph large enough to produce distance ties.
        let mut b = EkgBuilder::new();
        let mut ids = vec![b.concept("c0")];
        for i in 1..120usize {
            let c = b.concept(&format!("c{i}"));
            let p1 = ids[(i * 7 + 3) % i];
            b.is_a(c, p1);
            if i > 2 {
                let p2 = ids[(i * 13 + 1) % (i - 2)];
                if p2 != p1 {
                    b.is_a(c, p2);
                }
            }
            ids.push(c);
        }
        let g = b.build().expect("valid");
        let mut dij = UpwardScratch::new();
        let mut bfs = UpwardScratch::new();
        for &c in &ids {
            g.upward_distances_into(c, &mut dij);
            g.upward_unit_distances_into(c, &mut bfs);
            assert_eq!(dij.reached(), bfs.reached(), "settle order for {c:?}");
            for &r in dij.reached() {
                assert_eq!(dij.distance(r), bfs.distance(r), "distance to {r:?} from {c:?}");
            }
        }
    }

    #[test]
    fn build_rejects_cycle() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let x = b.concept("x");
        let y = b.concept("y");
        b.is_a(x, root);
        b.is_a(x, y);
        b.is_a(y, x);
        match b.build() {
            Err(MedKbError::CycleDetected { .. }) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn build_rejects_multiple_roots() {
        let mut b = EkgBuilder::new();
        let r1 = b.concept("r1");
        let _r2 = b.concept("r2");
        let x = b.concept("x");
        b.is_a(x, r1);
        match b.build() {
            Err(MedKbError::InvalidRoot { roots: 2 }) => {}
            other => panic!("expected 2-root error, got {other:?}"),
        }
    }

    #[test]
    fn build_rejects_self_edge_and_duplicates() {
        let mut b = EkgBuilder::new();
        let r = b.concept("r");
        b.is_a(r, r);
        assert!(b.build().is_err());

        let mut b = EkgBuilder::new();
        let r = b.concept("r");
        let x = b.concept("x");
        b.is_a(x, r);
        b.is_a(x, r);
        assert!(b.build().is_err());
    }

    #[test]
    fn topo_puts_children_before_parents() {
        let g = diamond();
        let pos: HashMap<ExtConceptId, usize> =
            g.topo_children_first().iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for c in g.concepts() {
            for e in g.parents(c) {
                assert!(pos[&c] < pos[&e.to], "{c:?} should precede parent {:?}", e.to);
            }
        }
        assert_eq!(*g.topo_children_first().last().unwrap(), g.root());
    }

    #[test]
    fn depth_is_min_hops_from_root() {
        let g = diamond();
        assert_eq!(g.depth(g.root()), 0);
        assert_eq!(g.depth(id_of(&g, "a")), 1);
        assert_eq!(g.depth(id_of(&g, "c")), 2);
        assert_eq!(g.depth(id_of(&g, "d")), 3);
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = diamond();
        let c = id_of(&g, "c");
        let anc = g.ancestors(c);
        assert_eq!(anc.len(), 3); // a, b, root
        assert!(anc.contains(&g.root()));
        let desc = g.descendants(g.root());
        assert_eq!(desc.len(), 4);
        assert!(g.descendants(id_of(&g, "d")).is_empty());
    }

    #[test]
    fn is_ancestor_basic() {
        let g = diamond();
        assert!(g.is_ancestor(g.root(), id_of(&g, "d")));
        assert!(g.is_ancestor(id_of(&g, "a"), id_of(&g, "c")));
        assert!(!g.is_ancestor(id_of(&g, "c"), id_of(&g, "a")));
        assert!(!g.is_ancestor(id_of(&g, "a"), id_of(&g, "a")));
        assert!(!g.is_ancestor(id_of(&g, "a"), id_of(&g, "b")));
    }

    #[test]
    fn upward_distances_take_min_over_paths() {
        let g = diamond();
        let d = id_of(&g, "d");
        let dist = g.upward_distances(d);
        assert_eq!(dist[&id_of(&g, "c")], 1);
        assert_eq!(dist[&id_of(&g, "a")], 2);
        assert_eq!(dist[&g.root()], 3);
        assert_eq!(g.distance_to_ancestor(d, d), Some(0));
        assert_eq!(g.distance_to_ancestor(id_of(&g, "a"), d), None);
    }

    #[test]
    fn neighborhood_respects_radius() {
        let g = diamond();
        let d = id_of(&g, "d");
        let n1: Vec<_> = g.neighborhood(d, 1).iter().map(|&(c, _)| c).collect();
        assert_eq!(n1, vec![id_of(&g, "c")]);
        let n2 = g.neighborhood(d, 2);
        assert_eq!(n2.len(), 3); // c, a, b
        let all = g.neighborhood(d, 10);
        assert_eq!(all.len(), 4); // everything but d itself
    }

    #[test]
    fn shortcut_shrinks_hops_but_keeps_weight() {
        let mut g = diamond();
        let d = id_of(&g, "d");
        let root = g.root();
        assert_eq!(g.neighborhood(d, 1).len(), 1);
        g.add_shortcut(d, root, 3).unwrap();
        let n1: HashSet<_> = g.neighborhood(d, 1).iter().map(|&(c, _)| c).collect();
        assert!(n1.contains(&root));
        // Semantic (weighted) distance is unchanged by the shortcut.
        assert_eq!(g.distance_to_ancestor(d, root), Some(3));
        assert_eq!(g.shortcut_count(), 1);
    }

    #[test]
    fn shortcut_rejects_non_ancestor_and_duplicates() {
        let mut g = diamond();
        let a = id_of(&g, "a");
        let b = id_of(&g, "b");
        let d = id_of(&g, "d");
        assert!(g.add_shortcut(a, b, 2).is_err()); // siblings
        assert!(g.add_shortcut(g.root(), d, 2).is_err()); // wrong direction
        g.add_shortcut(d, g.root(), 3).unwrap();
        assert!(g.add_shortcut(d, g.root(), 3).is_err()); // duplicate
        assert!(g.add_shortcut(d, a, 1).is_err()); // must span >= 2 hops
    }

    #[test]
    fn lookup_resolves_names_and_synonyms() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let f = b.concept("Hyperpyrexia");
        b.synonym(f, "high fever");
        b.is_a(f, root);
        let g = b.build().unwrap();
        assert_eq!(g.lookup_name("hyperpyrexia"), &[f]);
        assert_eq!(g.lookup_name("HIGH  FEVER"), &[f]);
        assert!(g.lookup_name("absent").is_empty());
        assert_eq!(g.synonyms(f).collect::<Vec<_>>(), vec!["high fever"]);
    }

    /// The delta-mutation contract: mutating a graph and rebuilding its
    /// derived tables must land on exactly the parts a fresh builder run
    /// over the same final inputs would produce.
    #[test]
    fn mutations_match_fresh_build() {
        let mut g = diamond();
        let b_id = id_of(&g, "b");
        let d = id_of(&g, "d");
        // Grow: new concept "e" (synonym "ee") under b, new edge d -> b.
        let e = g.add_concept("e", &["ee".to_string()], &[b_id]).unwrap();
        assert_eq!(e.as_usize(), 5);
        g.add_is_a(d, b_id).unwrap();
        g.add_synonym(id_of(&g, "a"), "alpha").unwrap();
        g.rebuild_derived().unwrap();

        // The twin built from scratch with the same declaration order.
        let mut tb = EkgBuilder::new();
        let root = tb.concept("root");
        let a = tb.concept("a");
        let bb = tb.concept("b");
        let c = tb.concept("c");
        let dd = tb.concept("d");
        let ee = tb.concept("e");
        tb.synonym(a, "alpha");
        tb.synonym(ee, "ee");
        tb.is_a(a, root);
        tb.is_a(bb, root);
        tb.is_a(c, a);
        tb.is_a(c, bb);
        tb.is_a(dd, c);
        tb.is_a(ee, bb);
        tb.is_a(dd, bb);
        let twin = tb.build().unwrap();
        assert_eq!(g.to_parts(), twin.to_parts());
    }

    #[test]
    fn edge_remove_then_positional_add_restores_parts() {
        let mut g = diamond();
        let c = id_of(&g, "c");
        let a = id_of(&g, "a");
        let before = g.to_parts();
        let (up_pos, down_pos) = g.remove_is_a(c, a).unwrap();
        assert_eq!((up_pos, down_pos), (0, 0));
        g.rebuild_derived().unwrap();
        assert_ne!(g.to_parts(), before);
        g.add_is_a_at(c, a, up_pos, down_pos).unwrap();
        g.rebuild_derived().unwrap();
        assert_eq!(g.to_parts(), before);
    }

    #[test]
    fn mutation_validation_errors() {
        let mut g = diamond();
        let a = id_of(&g, "a");
        let c = id_of(&g, "c");
        let d = id_of(&g, "d");
        // Cycle: a -> c while c -> a exists transitively.
        assert!(g.add_is_a(a, c).is_err());
        // Duplicate edge.
        assert!(g.add_is_a(c, a).is_err());
        // Root cannot gain a parent.
        assert!(g.add_is_a(g.root(), a).is_err());
        // Self edge.
        assert!(g.add_is_a(a, a).is_err());
        // d's only parent edge cannot go.
        assert!(g.remove_is_a(d, c).is_err());
        // Nonexistent edge.
        assert!(g.remove_is_a(d, a).is_err());
        // Duplicate primary name / empty parents.
        assert!(g.add_concept("a", &[], &[g.root()]).is_err());
        assert!(g.add_concept("fresh", &[], &[]).is_err());
        // Synonym index bounds.
        assert!(g.remove_synonym(a, 0).is_err());
    }

    #[test]
    fn synonym_removal_keeps_justified_lookup_entries() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let f = b.concept("fever");
        b.is_a(f, root);
        let mut g = b.build().unwrap();
        // Two synonyms normalizing to the same key, plus one matching the
        // primary name.
        g.add_synonym(f, "high fever").unwrap();
        g.add_synonym(f, "HIGH  FEVER").unwrap();
        g.add_synonym(f, "Fever").unwrap();
        assert_eq!(g.lookup_name("high fever"), &[f]);
        // Removing one carrier keeps the entry (the other justifies it).
        let raw = g.remove_synonym(f, 0).unwrap();
        assert_eq!(raw, "high fever");
        assert_eq!(g.lookup_name("high fever"), &[f]);
        // Removing the last carrier drops the entry.
        g.remove_synonym(f, 0).unwrap();
        assert!(g.lookup_name("high fever").is_empty());
        // The primary name keeps its entry even when the twin synonym goes.
        g.remove_synonym(f, 0).unwrap();
        assert_eq!(g.lookup_name("fever"), &[f]);
    }

    #[test]
    fn unreachable_concept_rejected() {
        // x -> r2 is a second component; r2 is a second root, so the root
        // check fires first — make a graph with one root but an island by
        // giving the island a cycle... not possible (cycle check fires).
        // Instead: single root, concept with parent edge to itself removed —
        // actually any parentless concept is a root, so unreachability from
        // the root implies multiple roots in a DAG. Verify that reasoning:
        let mut b = EkgBuilder::new();
        let r = b.concept("r");
        let x = b.concept("x");
        let y = b.concept("y");
        b.is_a(x, r);
        b.is_a(y, x);
        let g = b.build().unwrap();
        assert_eq!(g.len(), 3);
    }
}
