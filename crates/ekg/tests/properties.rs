//! Property tests over randomly generated rooted DAGs.
//!
//! The strategy builds graphs that are valid by construction (node 0 is the
//! root; every later node picks at least one parent among earlier nodes),
//! then checks the structural invariants every Ekg consumer relies on.

use std::collections::{HashMap, HashSet};

use medkb_ekg::lcs::{lcs, lcs_with_upward_scratch};
use medkb_ekg::path::path_between;
use medkb_ekg::{Ekg, EkgBuilder, NeighborhoodScan, ReachabilityIndex, UpwardScratch};
use medkb_types::ExtConceptId;
use proptest::prelude::*;

/// `parents[i]` (for node i+1) = distinct parent picks among nodes 0..=i.
fn dag_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(any::<proptest::sample::Index>(), 1..3), 1..40)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, picks)| {
                    let mut parents: Vec<usize> =
                        picks.into_iter().map(|p| p.index(i + 1)).collect();
                    parents.sort_unstable();
                    parents.dedup();
                    parents
                })
                .collect()
        })
}

fn build(parent_lists: &[Vec<usize>]) -> Ekg {
    let mut b = EkgBuilder::new();
    let mut ids: Vec<ExtConceptId> = vec![b.concept("n0")];
    for (i, parents) in parent_lists.iter().enumerate() {
        let c = b.concept(&format!("n{}", i + 1));
        for &p in parents {
            b.is_a(c, ids[p]);
        }
        ids.push(c);
    }
    b.build().expect("construction is valid by strategy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_topo_order_children_before_parents(parents in dag_strategy()) {
        let g = build(&parents);
        let pos: HashMap<ExtConceptId, usize> =
            g.topo_children_first().iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for c in g.concepts() {
            for e in g.parents(c) {
                prop_assert!(pos[&c] < pos[&e.to]);
            }
        }
        prop_assert_eq!(*g.topo_children_first().last().unwrap(), g.root());
    }

    #[test]
    fn prop_depth_consistent_with_parents(parents in dag_strategy()) {
        let g = build(&parents);
        prop_assert_eq!(g.depth(g.root()), 0);
        for c in g.concepts() {
            if c == g.root() { continue; }
            let min_parent_depth =
                g.native_parents(c).map(|p| g.depth(p)).min().unwrap();
            prop_assert_eq!(g.depth(c), min_parent_depth + 1);
        }
    }

    #[test]
    fn prop_reachability_index_matches_walks(parents in dag_strategy()) {
        let g = build(&parents);
        let idx = ReachabilityIndex::build(&g);
        for a in g.concepts() {
            for d in g.concepts() {
                prop_assert_eq!(idx.is_ancestor(a, d), g.is_ancestor(a, d));
            }
        }
    }

    #[test]
    fn prop_upward_distances_cover_exactly_the_ancestors(parents in dag_strategy()) {
        let g = build(&parents);
        for c in g.concepts() {
            let dist = g.upward_distances(c);
            let anc = g.ancestors(c);
            let keys: HashSet<ExtConceptId> = dist.keys().copied().collect();
            prop_assert_eq!(&keys, &anc);
            for (&a, &d) in &dist {
                prop_assert!(d >= 1);
                // Distance to an ancestor is at most the depth gap's
                // worst case: the chain through any path.
                prop_assert!(d as usize <= g.len());
                let _ = a;
            }
        }
    }

    #[test]
    fn prop_lcs_concept_set_is_symmetric(parents in dag_strategy()) {
        let g = build(&parents);
        let nodes: Vec<ExtConceptId> = g.concepts().collect();
        for (i, &a) in nodes.iter().enumerate().step_by(3) {
            for &b in nodes.iter().skip(i).step_by(5) {
                let ab = lcs(&g, a, b);
                let ba = lcs(&g, b, a);
                prop_assert_eq!(&ab.concepts, &ba.concepts);
                prop_assert_eq!(ab.total_distance(), ba.total_distance());
                // Every LCS member subsumes (or equals) both endpoints.
                for &c in &ab.concepts {
                    prop_assert!(c == a || g.is_ancestor(c, a));
                    prop_assert!(c == b || g.is_ancestor(c, b));
                }
            }
        }
    }

    #[test]
    fn prop_path_weight_in_unit_interval(parents in dag_strategy()) {
        let g = build(&parents);
        let nodes: Vec<ExtConceptId> = g.concepts().collect();
        for (i, &a) in nodes.iter().enumerate().step_by(4) {
            for &b in nodes.iter().skip(i + 1).step_by(4) {
                let (path, _) = path_between(&g, a, b);
                let w = path.weight(0.9, 1.0);
                prop_assert!((0.0..=1.0).contains(&w), "{w}");
                // Reversing the endpoints reverses the shape.
                let (rev, _) = path_between(&g, b, a);
                prop_assert_eq!(path.reversed(), rev);
            }
        }
    }

    #[test]
    fn prop_neighborhood_monotone_in_radius(parents in dag_strategy()) {
        let g = build(&parents);
        let c = g.concepts().last().unwrap();
        let mut prev: HashSet<ExtConceptId> = HashSet::new();
        for r in 1..=4u32 {
            let cur: HashSet<ExtConceptId> =
                g.neighborhood(c, r).into_iter().map(|(n, _)| n).collect();
            prop_assert!(prev.is_subset(&cur), "radius {r} lost nodes");
            for (n, hops) in g.neighborhood(c, r) {
                prop_assert!(hops >= 1 && hops <= r);
                prop_assert_ne!(n, c);
            }
            prev = cur;
        }
    }

    #[test]
    fn prop_lcs_with_upward_matches_lcs(parents in dag_strategy()) {
        // The query-scoped fast path (precomputed query-side distances,
        // bitset minimality pruning, reused candidate-side scratch) must be
        // indistinguishable from the per-pair reference on any DAG. One
        // scratch is deliberately reused across every pair to exercise the
        // epoch-stamping invalidation.
        let g = build(&parents);
        let reach = ReachabilityIndex::build(&g);
        let mut scratch = UpwardScratch::new();
        let nodes: Vec<ExtConceptId> = g.concepts().collect();
        for &a in nodes.iter().step_by(2) {
            let up_a = g.upward_distances_from(a);
            prop_assert_eq!(up_a.source(), a);
            for &b in &nodes {
                let fast = lcs_with_upward_scratch(&g, &reach, &up_a, b, &mut scratch);
                prop_assert_eq!(fast, lcs(&g, a, b), "lcs({a:?}, {b:?})");
            }
        }
    }

    #[test]
    fn prop_upward_distances_from_matches_hashmap_dijkstra(parents in dag_strategy()) {
        let g = build(&parents);
        for c in g.concepts() {
            let dense = g.upward_distances_from(c);
            let sparse = g.upward_distances(c);
            prop_assert_eq!(dense.len(), sparse.len());
            prop_assert_eq!(dense.get(c), Some(0));
            for (a, d) in dense.iter() {
                prop_assert_eq!(sparse.get(&a).copied(), Some(d));
            }
        }
    }

    #[test]
    fn prop_incremental_scan_matches_fresh_neighborhood(parents in dag_strategy()) {
        // Growing one scan radius-by-radius must reproduce, prefix by
        // prefix, what a fresh full scan at each radius returns — the
        // invariant dynamic-radius growth relies on.
        let g = build(&parents);
        let start = g.concepts().last().unwrap();
        let mut scan = NeighborhoodScan::new(&g, start);
        for r in 1..=5u32 {
            scan.expand_to(r);
            prop_assert_eq!(scan.radius(), r);
            prop_assert_eq!(scan.discovered(), &g.neighborhood(start, r)[..]);
        }
    }

    #[test]
    fn prop_shortcut_preserves_semantic_distance(parents in dag_strategy()) {
        let mut g = build(&parents);
        // Find a (descendant, ancestor) pair at distance >= 2 and shortcut it.
        let mut target = None;
        'outer: for c in g.concepts() {
            for (a, d) in g.upward_distances(c) {
                if d >= 2 {
                    target = Some((c, a, d));
                    break 'outer;
                }
            }
        }
        if let Some((c, a, d)) = target {
            let before = g.distance_to_ancestor(c, a);
            g.add_shortcut(c, a, d).unwrap();
            prop_assert_eq!(g.distance_to_ancestor(c, a), before);
            // But the hop distance became 1.
            prop_assert!(g.neighborhood(c, 1).iter().any(|&(n, _)| n == a));
        }
    }
}
