//! Differential oracles: optimized path ≡ reference twin, on every world,
//! at every thread count.
//!
//! Each `check_*` function panics with the world's label on the first
//! divergence; [`check_world`] runs the full battery. The contracts pinned
//! here are exactly the ones DESIGN.md §9/§11 promise:
//!
//! * `MentionCounts::count` / `count_with_threads` ≡ `count_reference`
//! * `ingest_with_stats` ≡ `ingest_reference` (mappings, flagged set,
//!   frequencies, shortcuts, instance index)
//! * `lcs_with_upward{,_scratch}` ≡ the per-pair `lcs` Dijkstra
//! * `relax_concept` / batch sharding ≡ `relax_concept_reference`
//! * `Gazetteer::scan` ≡ a naïve longest-match reference matcher

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_corpus::MentionCounts;
use medkb_ekg::lcs::lcs;
use medkb_ekg::{
    lcs_with_upward, lcs_with_upward_scratch, DenseReachability, ReachabilityIndex, UpwardScratch,
};
use medkb_core::{
    ingest, ingest_reference, ingest_with_stats, outputs_identical, DeltaEngine, IngestOutput,
    MappingMethod, ParallelConfig, QrScorer, QueryRelaxer, RelaxConfig,
};
use medkb_snomed::ContextTag;
use medkb_text::{tokenize, Gazetteer, PhraseMatch};
use medkb_types::{ContextId, ExtConceptId, Id};

use crate::worlds::AdversarialWorld;

/// Thread counts every parallel path is swept over.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Pin the mention counters: sequential optimized and every sharded run
/// must equal the reference scan.
pub fn check_counts(w: &AdversarialWorld) -> MentionCounts {
    let reference = MentionCounts::count_reference(&w.corpus, &w.ekg);
    let fast = MentionCounts::count(&w.corpus, &w.ekg);
    assert_eq!(fast, reference, "[{}] count diverged from count_reference", w.label);
    for threads in THREAD_SWEEP {
        let par = MentionCounts::count_with_threads(&w.corpus, &w.ekg, threads);
        assert_eq!(par, reference, "[{}] counts diverged at {threads} threads", w.label);
    }
    reference
}

/// Pin the staged parallel ingestion pipeline against the sequential
/// reference, for every thread count.
pub fn check_ingest(
    w: &AdversarialWorld,
    counts: &MentionCounts,
    mapping: MappingMethod,
) -> IngestOutput {
    let base = RelaxConfig { mapping, ..RelaxConfig::default() };
    let reference = ingest_reference(&w.kb, w.ekg.clone(), counts, None, &base)
        .unwrap_or_else(|e| panic!("[{}] reference ingest failed: {e}", w.label));
    for threads in THREAD_SWEEP {
        let cfg = RelaxConfig {
            parallel: ParallelConfig {
                clamp_to_cores: false,
                ..ParallelConfig::with_threads(threads)
            },
            ..base.clone()
        };
        let (out, _stats) = ingest_with_stats(&w.kb, w.ekg.clone(), counts, None, &cfg)
            .unwrap_or_else(|e| panic!("[{}] staged ingest failed at {threads} threads: {e}", w.label));
        assert_eq!(out.mappings, reference.mappings, "[{}] mappings @{threads}", w.label);
        assert_eq!(out.flagged, reference.flagged, "[{}] flagged @{threads}", w.label);
        assert_eq!(
            out.instances_of, reference.instances_of,
            "[{}] instance index @{threads}",
            w.label
        );
        assert_eq!(out.freqs, reference.freqs, "[{}] frequencies @{threads}", w.label);
        assert_eq!(
            out.shortcuts_added, reference.shortcuts_added,
            "[{}] shortcut count @{threads}",
            w.label
        );
        assert_eq!(
            out.ekg.shortcut_count(),
            reference.ekg.shortcut_count(),
            "[{}] customized graph @{threads}",
            w.label
        );
    }
    reference
}

/// Pin the query-scoped LCS (dense upward table + reachability pruning +
/// reusable scratch) against the per-pair Dijkstra reference, all pairs.
pub fn check_lcs(w: &AdversarialWorld) {
    let ekg = &w.ekg;
    let reach = ReachabilityIndex::build(ekg);
    let concepts: Vec<ExtConceptId> = ekg.concepts().take(20).collect();
    let mut scratch = UpwardScratch::new();
    for &a in &concepts {
        let up = ekg.upward_distances_from(a);
        for &b in &concepts {
            let slow = lcs(ekg, a, b);
            let fast = lcs_with_upward_scratch(ekg, &reach, &up, b, &mut scratch);
            assert_eq!(fast, slow, "[{}] lcs({a:?},{b:?}) scratch path", w.label);
            let fresh = lcs_with_upward(ekg, &reach, &up, b);
            assert_eq!(fresh, slow, "[{}] lcs({a:?},{b:?}) fresh path", w.label);
        }
    }
}

/// Pin the hybrid interval + exception-set reachability index against the
/// dense bitset closure, exhaustively: `is_ancestor` over **every** pair,
/// plus the derived `ancestor_count` / `descendant_counts` tables (which
/// feed intrinsic IC, so a single off-by-one would silently shift scores).
pub fn check_reach_hybrid(w: &AdversarialWorld) {
    let hybrid = ReachabilityIndex::build(&w.ekg);
    let dense = DenseReachability::build(&w.ekg);
    for a in w.ekg.concepts() {
        assert_eq!(
            hybrid.ancestor_count(a),
            dense.ancestor_count(a),
            "[{}] ancestor_count({a:?}) diverged",
            w.label
        );
        for d in w.ekg.concepts() {
            assert_eq!(
                hybrid.is_ancestor(a, d),
                dense.is_ancestor(a, d),
                "[{}] is_ancestor({a:?}, {d:?}) diverged",
                w.label
            );
        }
    }
    assert_eq!(
        hybrid.descendant_counts(),
        dense.descendant_counts(),
        "[{}] descendant_counts diverged",
        w.label
    );
}

/// Pin the persistent world store: `open(save(out))` must reconstruct an
/// [`IngestOutput`] whose every persisted component is bit-identical to
/// `out`, and whose relaxation answers are bit-identical over the world's
/// query battery.
pub fn check_store_round_trip(w: &AdversarialWorld, out: &IngestOutput, config: &RelaxConfig) {
    let reopened = medkb_store::WorldStore::open_bytes(&medkb_store::WorldStore::save_bytes(out))
        .unwrap_or_else(|e| panic!("[{}] store round trip failed to open: {e}", w.label));
    assert_eq!(out.ekg.to_parts(), reopened.ekg.to_parts(), "[{}] store: graph", w.label);
    assert_eq!(out.contexts, reopened.contexts, "[{}] store: contexts", w.label);
    assert_eq!(out.tag_of, reopened.tag_of, "[{}] store: tags", w.label);
    assert_eq!(out.freqs, reopened.freqs, "[{}] store: frequency tables", w.label);
    assert_eq!(out.mappings, reopened.mappings, "[{}] store: mappings", w.label);
    assert_eq!(out.instances_of, reopened.instances_of, "[{}] store: instance index", w.label);
    assert_eq!(out.flagged, reopened.flagged, "[{}] store: flagged set", w.label);
    assert_eq!(out.reach.to_parts(), reopened.reach.to_parts(), "[{}] store: reach", w.label);
    assert_eq!(out.mapper.to_parts(), reopened.mapper.to_parts(), "[{}] store: mapper", w.label);
    assert_eq!(out.shortcuts_added, reopened.shortcuts_added, "[{}] store: shortcuts", w.label);

    let original = QueryRelaxer::new(out.clone(), config.clone());
    let restored = QueryRelaxer::new(reopened, config.clone());
    for q in w.query_concepts() {
        let want = original.relax_concept(q, None, 5).unwrap();
        let got = restored.relax_concept(q, None, 5).unwrap();
        assert_eq!(got, want, "[{}] store: answers for {q:?} diverged", w.label);
    }
}

/// Pin the admissibility chain behind score-bounded pruning (DESIGN.md
/// §13): for every candidate within radius 4 of every query concept,
/// `exact_score(c) ≤ upper_bound(c) ≤ ring_cap(h)`, and ring caps are
/// nonincreasing in the hop count — so no skip or ring termination the
/// bounded scan performs can ever discard a true top-k member.
pub fn check_bounds(w: &AdversarialWorld, out: &IngestOutput, config: &RelaxConfig) {
    let scorer = QrScorer::new(&out.ekg, &out.freqs, config);
    let mut tags: Vec<Option<ContextTag>> = vec![None];
    tags.extend(out.contexts.first().map(|c| Some(out.tag(c.id))));
    for q in w.query_concepts() {
        let candidates = out.ekg.neighborhood(q, 4);
        let max_h = candidates.iter().map(|&(_, h)| h).max().unwrap_or(0);
        let max_dc = candidates.iter().map(|&(c, _)| out.ekg.depth(c)).max().unwrap_or(0);
        for &tag in &tags {
            let mut scoped = scorer.query_scoped(q, tag, &out.reach);
            let bounds = scoped.bounds(max_h, max_dc);
            let mut prev = f64::INFINITY;
            for h in 0..=max_h {
                let cap = bounds.ring_cap(h);
                assert!(
                    cap <= prev,
                    "[{}] ring_cap increased {prev} → {cap} at h={h} for {q:?}/{tag:?}",
                    w.label
                );
                prev = cap;
            }
            for &(c, h) in &candidates {
                let exact = scoped.score(c);
                let descendant = out.reach.is_ancestor(q, c);
                let bound =
                    bounds.upper_bound(descendant, h, out.ekg.depth(c), scorer.ic(c, tag));
                assert!(
                    exact <= bound,
                    "[{}] inadmissible bound {bound} < exact {exact} for {q:?}→{c:?} h={h} tag={tag:?}",
                    w.label
                );
                if !descendant {
                    let refined = bounds.refined_bound(
                        &out.reach,
                        c,
                        h,
                        out.ekg.depth(c),
                        scorer.ic(c, tag),
                    );
                    assert!(
                        exact <= refined,
                        "[{}] inadmissible refined bound {refined} < exact {exact} \
                         for {q:?}→{c:?} h={h} tag={tag:?}",
                        w.label
                    );
                    assert!(
                        refined <= bound,
                        "[{}] refined bound {refined} above table bound {bound} \
                         for {q:?}→{c:?} h={h}",
                        w.label
                    );
                }
                let cap = bounds.ring_cap(h);
                assert!(
                    bound <= cap,
                    "[{}] upper_bound {bound} above ring_cap {cap} for {q:?}→{c:?} h={h}",
                    w.label
                );
            }
        }
    }
}

/// Pin the optimized relaxer and the sharded batch API against
/// `relax_concept_reference`, element-wise, for every thread count — and
/// pin that toggling `pruning` off changes nothing but latency.
pub fn check_relax(w: &AdversarialWorld, out: IngestOutput, config: RelaxConfig) {
    let unpruned =
        QueryRelaxer::new(out.clone(), RelaxConfig { pruning: false, ..config.clone() });
    let r = QueryRelaxer::new(out, RelaxConfig { pruning: true, ..config });
    let mut contexts: Vec<Option<ContextId>> = vec![None];
    contexts.extend(r.ingested().contexts.first().map(|c| Some(c.id)));

    let mut queries: Vec<(ExtConceptId, Option<ContextId>)> = Vec::new();
    for q in w.query_concepts() {
        for &ctx in &contexts {
            queries.push((q, ctx));
        }
    }
    for &(q, ctx) in &queries {
        for k in [1usize, 3, 17] {
            let fast = r.relax_concept(q, ctx, k);
            let off = unpruned.relax_concept(q, ctx, k);
            let slow = r.relax_concept_reference(q, ctx, k);
            match (&fast, &slow) {
                (Ok(f), Ok(s)) => {
                    assert_eq!(f, s, "[{}] relax({q:?},{ctx:?},k={k})", w.label);
                }
                (Err(_), Err(_)) => {}
                (f, s) => panic!(
                    "[{}] relax({q:?},{ctx:?},k={k}) outcome kind diverged: \
                     optimized={f:?} reference={s:?}",
                    w.label
                ),
            }
            match (&fast, &off) {
                (Ok(f), Ok(o)) => {
                    assert_eq!(
                        f, o,
                        "[{}] pruning changed relax({q:?},{ctx:?},k={k})",
                        w.label
                    );
                }
                (Err(_), Err(_)) => {}
                (f, o) => panic!(
                    "[{}] pruning changed outcome kind of relax({q:?},{ctx:?},k={k}): \
                     pruned={f:?} exhaustive={o:?}",
                    w.label
                ),
            }
        }
    }

    let sequential: Vec<_> = queries.iter().map(|&(q, c)| r.relax_concept(q, c, 5)).collect();
    for threads in THREAD_SWEEP {
        let batch = r.relax_concepts_batch_with_threads(&queries, 5, threads);
        assert_eq!(batch.len(), sequential.len(), "[{}] batch length @{threads}", w.label);
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            match (b, s) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b, s, "[{}] batch slot {i} @{threads} threads", w.label);
                }
                (Err(_), Err(_)) => {}
                (b, s) => panic!(
                    "[{}] batch slot {i} @{threads} threads outcome kind diverged: \
                     batch={b:?} sequential={s:?}",
                    w.label
                ),
            }
        }
    }
}

/// Pin the token-trie gazetteer against a naïve longest-match scan over the
/// same phrase set.
pub fn check_gazetteer(w: &AdversarialWorld) {
    let mut g = Gazetteer::new();
    let mut phrases: Vec<(String, u32)> = Vec::new();
    for c in w.ekg.concepts() {
        let payload = c.as_usize() as u32;
        let name = w.ekg.name(c).to_string();
        g.insert(&name, payload);
        phrases.push((name, payload));
        for syn in w.ekg.synonyms(c) {
            g.insert(syn, payload);
            phrases.push((syn.to_string(), payload));
        }
    }
    // Reference phrase table: token sequence → payload, later insert wins
    // (the gazetteer's documented overwrite semantics).
    let mut table: HashMap<Vec<String>, u32> = HashMap::new();
    let mut max_len = 0usize;
    for (phrase, payload) in &phrases {
        let tokens = tokenize(phrase);
        if tokens.is_empty() {
            continue;
        }
        max_len = max_len.max(tokens.len());
        table.insert(tokens, *payload);
    }

    for utterance in utterances(w) {
        let tokens = tokenize(&utterance);
        let fast = g.scan(&utterance);
        let slow = scan_reference(&table, max_len, &tokens);
        assert_eq!(
            fast, slow,
            "[{}] gazetteer diverged on utterance {:?}",
            w.label,
            &utterance[..utterance.len().min(120)]
        );
    }
}

/// Naïve greedy longest-match reference: at each position try every length
/// up to the longest registered phrase.
fn scan_reference(
    table: &HashMap<Vec<String>, u32>,
    max_len: usize,
    tokens: &[String],
) -> Vec<PhraseMatch> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut best: Option<(usize, u32)> = None;
        for len in 1..=max_len.min(tokens.len() - i) {
            if let Some(&payload) = table.get(&tokens[i..i + len]) {
                best = Some((len, payload));
            }
        }
        match best {
            Some((len, payload)) => {
                out.push(PhraseMatch { start_token: i, len, payload });
                i += len;
            }
            None => i += 1,
        }
    }
    out
}

/// Deterministic hostile utterances for `w`: name joins with adversarial
/// separators, truncated names, and raw junk.
fn utterances(w: &AdversarialWorld) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(w.seed ^ 0x5CAD_FEED);
    let names: Vec<&str> = w.ekg.concepts().map(|c| w.ekg.name(c)).collect();
    let seps = [" ", " and ", "§", "!!", "\u{301}", ", ", " the "];
    let mut out: Vec<String> = vec![
        String::new(),
        "   ".to_string(),
        "!!!???".to_string(),
        "\u{301}\u{308}\u{30A}".to_string(),
        "totally unrelated utterance".to_string(),
    ];
    for _ in 0..8 {
        let mut s = String::new();
        for _ in 0..rng.gen_range(1..4) {
            s.push_str(names[rng.gen_range(0..names.len())]);
            s.push_str(seps[rng.gen_range(0..seps.len())]);
        }
        out.push(s);
    }
    // Truncations: a name minus its last token exercises the
    // prefix-without-terminal path.
    for name in names.iter().take(3) {
        let toks = tokenize(name);
        if toks.len() > 1 {
            out.push(toks[..toks.len() - 1].join(" "));
        }
    }
    out
}

/// Pin incremental delta ingestion against an honest full re-ingest: for
/// every delta kind, at every thread count, applying the delta must leave
/// the engine's [`IngestOutput`] **bit-identical** to `ingest` run from
/// scratch on the same mutated inputs — and the relaxation answers over
/// the world's query battery must match element-wise. Deltas compound on
/// one engine per thread count, so later kinds run on already-churned
/// state.
pub fn check_delta(w: &AdversarialWorld) {
    use crate::deltas::{generate_delta, DeltaKind};
    for threads in THREAD_SWEEP {
        let cfg = RelaxConfig {
            mapping: MappingMethod::Exact,
            parallel: ParallelConfig {
                clamp_to_cores: false,
                ..ParallelConfig::with_threads(threads)
            },
            ..RelaxConfig::default()
        };
        let mut engine = DeltaEngine::new(
            w.kb.clone(),
            w.corpus.clone(),
            w.ekg.clone(),
            None,
            cfg.clone(),
        )
        .unwrap_or_else(|e| panic!("[{}] delta engine build failed: {e}", w.label));
        for (i, &kind) in DeltaKind::ALL.iter().enumerate() {
            let delta = generate_delta(
                w.seed.wrapping_mul(31).wrapping_add(i as u64),
                kind,
                &engine,
            );
            engine.apply(&delta).unwrap_or_else(|e| {
                panic!(
                    "[{}] {kind:?} delta rejected @{threads} threads: {e}\nops: {:?}",
                    w.label, delta.ops
                )
            });
            let counts = MentionCounts::count_with_threads(
                engine.corpus(),
                engine.native_ekg(),
                threads,
            );
            let full = ingest(
                engine.kb(),
                engine.native_ekg().clone(),
                &counts,
                None,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("[{}] full re-ingest failed after {kind:?}: {e}", w.label));
            assert!(
                outputs_identical(engine.output(), &full),
                "[{}] {kind:?} delta @{threads} threads diverged from full re-ingest",
                w.label
            );
            let queries: Vec<ExtConceptId> =
                engine.native_ekg().concepts().take(6).collect();
            let incremental = QueryRelaxer::new(engine.output().clone(), cfg.clone());
            let honest = QueryRelaxer::new(full, cfg.clone());
            for q in queries {
                let got = incremental.relax_concept(q, None, 5);
                let want = honest.relax_concept(q, None, 5);
                match (&got, &want) {
                    (Ok(g), Ok(s)) => assert_eq!(
                        g, s,
                        "[{}] {kind:?} delta @{threads}: answers for {q:?} diverged",
                        w.label
                    ),
                    (Err(_), Err(_)) => {}
                    (g, s) => panic!(
                        "[{}] {kind:?} delta @{threads}: outcome kind for {q:?} diverged: \
                         incremental={g:?} honest={s:?}",
                        w.label
                    ),
                }
            }
        }
    }
}

/// Run the full differential battery on one world.
pub fn check_world(w: &AdversarialWorld) {
    let counts = check_counts(w);
    check_lcs(w);
    check_reach_hybrid(w);
    check_gazetteer(w);

    let exact = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let out = check_ingest(w, &counts, MappingMethod::Exact);
    check_bounds(w, &out, &exact);
    check_store_round_trip(w, &out, &exact);
    check_relax(w, out, exact);

    // Edit-distance mapping exercises the DP prefilter; skipped on worlds
    // with ~10k-char names where the quadratic DP would dominate runtime.
    if !w.has_long_names {
        let edit = RelaxConfig { mapping: MappingMethod::edit_tau2(), ..RelaxConfig::default() };
        let out = check_ingest(w, &counts, MappingMethod::edit_tau2());
        check_relax(w, out, edit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::AdversarialWorld;

    /// The fast seeded pass `scripts/tier1.sh` runs
    /// (`cargo test -q -p medkb-fuzz smoke`): one world per graph shape,
    /// spanning several name styles and corpus shapes.
    #[test]
    fn smoke_one_world_per_shape() {
        for seed in [0u64, 1, 2, 3, 4, 36, 57, 78] {
            check_world(&AdversarialWorld::generate(seed));
        }
    }

    #[test]
    fn reference_scanner_handles_overlaps_and_overwrites() {
        let mut table = HashMap::new();
        table.insert(vec!["kidney".to_string()], 1);
        table.insert(vec!["kidney".to_string(), "disease".to_string()], 2);
        let tokens: Vec<String> =
            ["chronic", "kidney", "disease"].iter().map(|s| s.to_string()).collect();
        let out = scan_reference(&table, 2, &tokens);
        assert_eq!(out, vec![PhraseMatch { start_token: 1, len: 2, payload: 2 }]);
    }
}
