//! Differential fuzzing harness for the ingest/relax pipeline.
//!
//! The optimized paths of this workspace (staged parallel ingestion, the
//! query-scoped scoring engine, the sharded batch relaxer, the token-trie
//! matchers) each keep a deliberately naïve reference twin. The ordinary
//! test suites pin the two on *plausible* inputs — generated MED worlds and
//! the paper fragment. This crate attacks the same contracts with
//! *adversarial* inputs instead:
//!
//! * [`worlds`] — a seeded generator of degenerate graphs (singleton,
//!   linear chain, star, disconnected-under-root forests, near-cyclic
//!   shortcut lattices), hostile names (non-ASCII, combining marks,
//!   punctuation-only, 10k-character), and degenerate corpora (empty,
//!   single-document, one-tag-only).
//! * [`oracles`] — differential oracles asserting the optimized paths stay
//!   bit-identical to their references on every such world, across 1/2/4/8
//!   threads.
//!
//! Every divergence the harness ever finds gets a minimized fixture under
//! the repo-root `tests/fixtures/fuzz_regressions/` so it can never
//! silently come back (see DESIGN.md §11).

#![warn(missing_docs)]

pub mod deltas;
pub mod oracles;
pub mod worlds;

pub use deltas::{generate_delta, DeltaKind};
pub use oracles::{
    check_bounds, check_delta, check_reach_hybrid, check_store_round_trip, check_world,
    THREAD_SWEEP,
};
pub use worlds::{AdversarialWorld, CorpusShape, DagShape, NameStyle};
