//! Seeded adversarial delta generators.
//!
//! Each generator derives a [`Delta`] from the engine's **current** inputs
//! (deltas compound across a soak run), valid by construction: ops whose
//! preconditions depend on earlier ops in the same delta are simulated
//! against scratch state before being emitted. The four churn kinds cover
//! every dirty-flag combination the engine's phase-2 recompute branches on,
//! and [`DeltaKind::NoOp`] pins the everything-clean path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_core::{Delta, DeltaEngine, DeltaOp};
use medkb_snomed::ContextTag;
use medkb_types::{ExtConceptId, Id, InstanceId};

/// The delta families the differential oracle sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Documents added/removed (counts + frequency patching, trie reuse).
    DocChurn,
    /// Native `is_a` edges added/removed (reachability repair, rollup
    /// cones, shortcut reruns).
    EdgeChurn,
    /// Concepts added/retired and synonyms churned (full recount + remap,
    /// graph growth).
    ConceptChurn,
    /// KB instances added/tombstoned/restored (mapping-slab patching).
    InstanceChurn,
    /// Nothing, or work that cancels out — the derived state must not
    /// move a bit.
    NoOp,
}

impl DeltaKind {
    /// All kinds, in sweep order.
    pub const ALL: [DeltaKind; 5] = [
        DeltaKind::DocChurn,
        DeltaKind::EdgeChurn,
        DeltaKind::ConceptChurn,
        DeltaKind::InstanceChurn,
        DeltaKind::NoOp,
    ];
}

/// Generate a valid `kind` delta against the engine's current inputs.
/// Deterministic in `(seed, kind, engine state)`.
pub fn generate_delta(seed: u64, kind: DeltaKind, engine: &DeltaEngine) -> Delta {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA55E_55ED).wrapping_add(seed));
    let ops = match kind {
        DeltaKind::DocChurn => doc_churn(&mut rng, engine),
        DeltaKind::EdgeChurn => edge_churn(&mut rng, engine),
        DeltaKind::ConceptChurn => concept_churn(&mut rng, seed, engine),
        DeltaKind::InstanceChurn => instance_churn(&mut rng, seed, engine),
        DeltaKind::NoOp => no_op(&mut rng, engine),
    };
    Delta::new(ops)
}

const FILLER: &[&str] = &["the", "drug", "treats", "patients", "with", "reported", "of"];

/// Sentences that mention real (possibly hostile) concept names, so delta
/// documents move actual trie counts, not just vocabulary.
fn random_sentences(rng: &mut StdRng, names: &[String]) -> Vec<(ContextTag, Vec<String>)> {
    (0..rng.gen_range(1..=3))
        .map(|_| {
            let tag = ContextTag::ALL[rng.gen_range(0..ContextTag::ALL.len())];
            let mut fragments: Vec<String> = Vec::new();
            for _ in 0..rng.gen_range(1..=2) {
                fragments.push(FILLER[rng.gen_range(0..FILLER.len())].to_string());
                fragments.push(names[rng.gen_range(0..names.len())].clone());
            }
            fragments.push(FILLER[rng.gen_range(0..FILLER.len())].to_string());
            (tag, fragments)
        })
        .collect()
}

fn concept_names(engine: &DeltaEngine) -> Vec<String> {
    let ekg = engine.native_ekg();
    ekg.concepts().map(|c| ekg.name(c).to_string()).collect()
}

fn doc_churn(rng: &mut StdRng, engine: &DeltaEngine) -> Vec<DeltaOp> {
    let names = concept_names(engine);
    let mut n_docs = engine.corpus().len();
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..=4) {
        if n_docs > 0 && rng.gen_bool(0.4) {
            ops.push(DeltaOp::RemoveDocument { index: rng.gen_range(0..n_docs) });
            n_docs -= 1;
        } else {
            ops.push(DeltaOp::AddDocument { sentences: random_sentences(rng, &names) });
            n_docs += 1;
        }
    }
    ops
}

fn edge_churn(rng: &mut StdRng, engine: &DeltaEngine) -> Vec<DeltaOp> {
    // Validity (no duplicate edge, no cycle, no orphaned child) depends on
    // the ops already emitted, so candidates are auditioned on a scratch
    // graph with the very mutators the engine will run.
    let mut sim = engine.native_ekg().clone();
    let n = sim.len();
    let mut ops = Vec::new();
    if n < 2 {
        return ops;
    }
    for _ in 0..rng.gen_range(1..=3) {
        if rng.gen_bool(0.5) {
            for _ in 0..20 {
                let child = ExtConceptId::from_usize(rng.gen_range(0..n));
                let parent = ExtConceptId::from_usize(rng.gen_range(0..n));
                if sim.add_is_a(child, parent).is_ok() {
                    ops.push(DeltaOp::AddIsA { child, parent });
                    break;
                }
            }
        } else {
            let cands: Vec<ExtConceptId> =
                sim.concepts().filter(|&c| sim.native_parent_count(c) >= 2).collect();
            if cands.is_empty() {
                continue;
            }
            let child = cands[rng.gen_range(0..cands.len())];
            let parents: Vec<ExtConceptId> =
                sim.parents(child).iter().filter(|e| !e.shortcut).map(|e| e.to).collect();
            let parent = parents[rng.gen_range(0..parents.len())];
            sim.remove_is_a(child, parent).expect("audited removal");
            ops.push(DeltaOp::RemoveIsA { child, parent });
        }
    }
    ops
}

fn concept_churn(rng: &mut StdRng, seed: u64, engine: &DeltaEngine) -> Vec<DeltaOp> {
    let names = concept_names(engine);
    let mut n = engine.native_ekg().len();
    // Synonym counts per concept, tracked so removals stay in range as the
    // delta's own ops shift them.
    let mut syn_counts: Vec<usize> =
        engine.native_ekg().concepts().map(|c| engine.native_ekg().synonyms(c).count()).collect();
    let root = engine.native_ekg().root();
    let mut ops = Vec::new();
    for i in 0..rng.gen_range(1..=3) {
        match rng.gen_range(0..4) {
            0 => {
                // Synonyms deliberately collide with existing primary names
                // (legal, just ambiguous) to stress mapper + trie rebuilds.
                let synonyms = if rng.gen_bool(0.6) {
                    vec![format!("{} variant", names[rng.gen_range(0..names.len())])]
                } else {
                    Vec::new()
                };
                let mut parents =
                    vec![ExtConceptId::from_usize(rng.gen_range(0..n))];
                let extra = ExtConceptId::from_usize(rng.gen_range(0..n));
                if !parents.contains(&extra) && rng.gen_bool(0.5) {
                    parents.push(extra);
                }
                ops.push(DeltaOp::AddConcept {
                    name: format!("delta node {seed} {i}"),
                    synonyms,
                    parents,
                });
                syn_counts.push(0);
                n += 1;
            }
            1 => {
                let concept = ExtConceptId::from_usize(rng.gen_range(0..n));
                let synonym = if rng.gen_bool(0.5) {
                    names[rng.gen_range(0..names.len())].clone()
                } else {
                    format!("delta syn {seed} {i}")
                };
                ops.push(DeltaOp::AddSynonym { concept, synonym });
                syn_counts[Id::as_usize(concept)] += 1;
            }
            2 => {
                let cands: Vec<usize> =
                    (0..n).filter(|&c| syn_counts[c] > 0).collect();
                if !cands.is_empty() {
                    let c = cands[rng.gen_range(0..cands.len())];
                    let index = rng.gen_range(0..syn_counts[c]);
                    ops.push(DeltaOp::RemoveSynonym {
                        concept: ExtConceptId::from_usize(c),
                        index,
                    });
                    syn_counts[c] -= 1;
                }
            }
            _ => {
                if n > 1 {
                    let mut c = ExtConceptId::from_usize(rng.gen_range(0..n));
                    if c == root {
                        c = ExtConceptId::from_usize(
                            (Id::as_usize(root) + 1 + rng.gen_range(0..n - 1)) % n,
                        );
                    }
                    if c != root {
                        ops.push(DeltaOp::RetireConcept { concept: c });
                    }
                }
            }
        }
    }
    ops
}

fn instance_churn(rng: &mut StdRng, seed: u64, engine: &DeltaEngine) -> Vec<DeltaOp> {
    let kb = engine.kb();
    let names = concept_names(engine);
    let mut live: Vec<InstanceId> = kb.instances().map(|(id, _)| id).collect();
    let mut retired: Vec<InstanceId> = (0..kb.instance_slots())
        .map(InstanceId::from_usize)
        .filter(|&id| kb.is_retired(id))
        .collect();
    let Some(onto_concept) = live.first().map(|&id| kb.concept_of(id)).or_else(|| {
        retired.first().map(|&id| kb.concept_of(id))
    }) else {
        return Vec::new();
    };
    let mut slots = kb.instance_slots();
    let mut ops = Vec::new();
    for i in 0..rng.gen_range(1..=3) {
        match rng.gen_range(0..3) {
            0 => {
                // Half mappable (a live concept name), half junk the mapper
                // must ignore.
                let name = if rng.gen_bool(0.5) {
                    names[rng.gen_range(0..names.len())].clone()
                } else {
                    format!("unmappable instance {seed} {i}")
                };
                ops.push(DeltaOp::AddInstance { name, concept: onto_concept });
                live.push(InstanceId::from_usize(slots));
                slots += 1;
            }
            1 if !live.is_empty() => {
                let at = rng.gen_range(0..live.len());
                let id = live.swap_remove(at);
                ops.push(DeltaOp::RemoveInstance { id });
                retired.push(id);
            }
            2 if !retired.is_empty() => {
                let at = rng.gen_range(0..retired.len());
                let id = retired.swap_remove(at);
                ops.push(DeltaOp::RestoreInstance { id });
                live.push(id);
            }
            _ => {}
        }
    }
    ops
}

fn no_op(rng: &mut StdRng, engine: &DeltaEngine) -> Vec<DeltaOp> {
    if rng.gen_bool(0.5) {
        Vec::new()
    } else {
        // Add a document and remove it again: real churn through the
        // incremental counters that must cancel to the last bit.
        let names = concept_names(engine);
        let index = engine.corpus().len();
        vec![
            DeltaOp::AddDocument { sentences: random_sentences(rng, &names) },
            DeltaOp::RemoveDocument { index },
        ]
    }
}
