//! Seeded adversarial-world generator.
//!
//! A world is the full input surface of the offline pipeline: an external
//! knowledge graph, a KB whose instance names may or may not map into it,
//! and a mention corpus. The generator deterministically stripes every
//! combination of graph shape × name style × corpus shape across seeds, so
//! a run over any 100 consecutive seeds covers the whole matrix.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_corpus::{Corpus, Document, Sentence};
use medkb_ekg::{Ekg, EkgBuilder};
use medkb_kb::{Kb, KbBuilder};
use medkb_snomed::oracle::ContextTag;
use medkb_text::{normalize, tokenize};
use medkb_types::{ExtConceptId, Id};

/// Degenerate DAG shapes the relaxation algorithms must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagShape {
    /// One concept, zero edges: the root is also the only candidate.
    Singleton,
    /// A single maximal-depth chain: every LCS walk is the worst case.
    LinearChain,
    /// A root with only leaves: every pair's LCS is the root.
    Star,
    /// Disjoint chains that share nothing but the mandatory root (the
    /// closest legal graph to "disconnected" — the builder rejects true
    /// multi-root forests with a typed error).
    DisconnectedForest,
    /// A chain plus dense skip edges: many redundant upward routes, the
    /// near-cyclic case for shortcut insertion and LCS minimality checks.
    ShortcutLattice,
}

impl DagShape {
    /// All shapes, in striping order.
    pub const ALL: [DagShape; 5] = [
        DagShape::Singleton,
        DagShape::LinearChain,
        DagShape::Star,
        DagShape::DisconnectedForest,
        DagShape::ShortcutLattice,
    ];
}

/// Hostile name styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// Plain ASCII words (the control group).
    Ascii,
    /// Multi-byte letters, including `İ` whose lowercase expands to two
    /// chars (the normalize-idempotence regression).
    NonAscii,
    /// Combining marks that normalization treats as separators.
    CombiningMarks,
    /// Punctuation-heavy names, including one per world that normalizes to
    /// the empty string.
    PunctuationOnly,
    /// One ~10k-character name per world (plus ASCII fillers).
    Long,
}

impl NameStyle {
    /// All styles, in striping order.
    pub const ALL: [NameStyle; 5] = [
        NameStyle::Ascii,
        NameStyle::NonAscii,
        NameStyle::CombiningMarks,
        NameStyle::PunctuationOnly,
        NameStyle::Long,
    ];
}

/// Degenerate corpus shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusShape {
    /// No documents at all: every frequency falls back to intrinsic IC.
    Empty,
    /// Exactly one document (document-frequency == total-frequency edge).
    SingleDoc,
    /// Several documents, all sentences carrying one context tag.
    OneTagOnly,
    /// A small mixed corpus (the control group).
    Mixed,
}

impl CorpusShape {
    /// All corpus shapes, in striping order.
    pub const ALL: [CorpusShape; 4] = [
        CorpusShape::Empty,
        CorpusShape::SingleDoc,
        CorpusShape::OneTagOnly,
        CorpusShape::Mixed,
    ];
}

/// One generated adversarial world.
#[derive(Debug, Clone)]
pub struct AdversarialWorld {
    /// Human-readable description, embedded in every oracle assertion.
    pub label: String,
    /// The seed that generated it (reuse to reproduce).
    pub seed: u64,
    /// Graph shape used.
    pub shape: DagShape,
    /// Name style used.
    pub style: NameStyle,
    /// Corpus shape used.
    pub corpus_shape: CorpusShape,
    /// The external knowledge graph.
    pub ekg: Ekg,
    /// The knowledge base (mini MED-style ontology + instances).
    pub kb: Kb,
    /// The mention corpus.
    pub corpus: Corpus,
    /// Whether a ~10k-char name is present (edit-distance mapping is
    /// skipped on these worlds to keep the suite fast).
    pub has_long_names: bool,
}

impl AdversarialWorld {
    /// Generate the world for `seed`. Deterministic: the same seed always
    /// yields the same world.
    pub fn generate(seed: u64) -> Self {
        let shape = DagShape::ALL[(seed as usize) % DagShape::ALL.len()];
        let style = NameStyle::ALL[(seed as usize / 5) % NameStyle::ALL.len()];
        let corpus_shape = CorpusShape::ALL[(seed as usize / 25) % CorpusShape::ALL.len()];
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));

        let (ekg, has_long_names) = build_graph(&mut rng, shape, style);
        let kb = build_kb(&mut rng, &ekg);
        let corpus = build_corpus(&mut rng, &ekg, corpus_shape);

        let label = format!(
            "seed={seed} shape={shape:?} style={style:?} corpus={corpus_shape:?} \
             concepts={} instances={} docs={}",
            ekg.len(),
            kb.instance_count(),
            corpus.len()
        );
        Self { label, seed, shape, style, corpus_shape, ekg, kb, corpus, has_long_names }
    }

    /// The concepts differential relaxation queries should start from (all
    /// of them — worlds are tiny).
    pub fn query_concepts(&self) -> Vec<ExtConceptId> {
        self.ekg.concepts().take(6).collect()
    }
}

const ASCII_WORDS: &[&str] = &[
    "fever", "renal", "chronic", "acute", "toxic", "cardiac", "nodular", "cystic", "lesion",
    "syndrome", "disease", "disorder", "finding", "stage",
];

const NON_ASCII_WORDS: &[&str] = &[
    "naïve", "İstanbul", "µg", "σειρά", "中枢", "βλάβη", "sjögren", "ménière", "straße", "𝛼wave",
];

/// Base words carrying combining marks (NFD-style decomposed accents); the
/// marks themselves are non-alphanumeric, so normalization splits on them.
const COMBINING_WORDS: &[&str] =
    &["e\u{301}clat", "a\u{30A}ngstro\u{308}m", "n\u{303}andu", "o\u{323}edema", "u\u{336}lcer"];

/// Produce a name for concept `i` in the given style. Uniqueness (as a raw
/// string) is the caller's job; `i` is woven in to make that cheap.
fn hostile_name(rng: &mut StdRng, style: NameStyle, i: usize) -> String {
    fn pick<'a>(rng: &mut StdRng, words: &[&'a str]) -> &'a str {
        words[rng.gen_range(0..words.len())]
    }
    match style {
        NameStyle::Ascii => {
            format!("{} {} {i}", pick(rng, ASCII_WORDS), pick(rng, ASCII_WORDS))
        }
        NameStyle::NonAscii => {
            format!("{} {} {i}", pick(rng, NON_ASCII_WORDS), pick(rng, ASCII_WORDS))
        }
        NameStyle::CombiningMarks => {
            format!("{} {} {i}", pick(rng, COMBINING_WORDS), pick(rng, COMBINING_WORDS))
        }
        NameStyle::PunctuationOnly => {
            if i == 1 {
                // Normalizes to the empty string — nothing can match it,
                // nothing may panic on it.
                "!!!???;;;".to_string()
            } else {
                format!("§¶!{i}?!({})", "~".repeat(rng.gen_range(1..5)))
            }
        }
        NameStyle::Long => {
            if i == 1 {
                let word = pick(rng, ASCII_WORDS);
                let mut s = String::with_capacity(10_100);
                while s.len() < 10_000 {
                    s.push_str(word);
                    s.push(' ');
                }
                s.push_str(&i.to_string());
                s
            } else {
                format!("{} {} {i}", pick(rng, ASCII_WORDS), pick(rng, ASCII_WORDS))
            }
        }
    }
}

fn build_graph(rng: &mut StdRng, shape: DagShape, style: NameStyle) -> (Ekg, bool) {
    let n = match shape {
        DagShape::Singleton => 1,
        DagShape::LinearChain => rng.gen_range(4..12),
        DagShape::Star => rng.gen_range(4..16),
        DagShape::DisconnectedForest => rng.gen_range(6..16),
        DagShape::ShortcutLattice => rng.gen_range(5..12),
    };
    let mut used: HashSet<String> = HashSet::new();
    let mut names: Vec<String> = Vec::with_capacity(n);
    let mut has_long = false;
    for i in 0..n {
        let mut name = hostile_name(rng, style, i);
        while !used.insert(name.clone()) {
            name.push('x');
        }
        has_long = has_long || name.len() >= 10_000;
        names.push(name);
    }

    let mut eb = EkgBuilder::new();
    let ids: Vec<ExtConceptId> = names.iter().map(|s| eb.concept(s)).collect();
    match shape {
        DagShape::Singleton => {}
        DagShape::LinearChain => {
            for w in ids.windows(2) {
                eb.is_a(w[1], w[0]);
            }
        }
        DagShape::Star => {
            for &leaf in &ids[1..] {
                eb.is_a(leaf, ids[0]);
            }
        }
        DagShape::DisconnectedForest => {
            // 2–4 chains that meet only at the root.
            let branches = rng.gen_range(2..=4.min(n - 1));
            for (b, chunk) in ids[1..].chunks(((n - 1) / branches).max(1)).enumerate() {
                let _ = b;
                eb.is_a(chunk[0], ids[0]);
                for w in chunk.windows(2) {
                    eb.is_a(w[1], w[0]);
                }
            }
        }
        DagShape::ShortcutLattice => {
            let mut edges: HashSet<(usize, usize)> = HashSet::new();
            for i in 1..n {
                edges.insert((i, i - 1));
            }
            // Dense skip edges: every deep node also subsumes under a few
            // random strict ancestors further up the chain.
            for i in 2..n {
                for _ in 0..rng.gen_range(1..3) {
                    let j = rng.gen_range(0..i - 1);
                    edges.insert((i, j));
                }
            }
            for (c, p) in edges {
                eb.is_a(ids[c], ids[p]);
            }
        }
    }
    // A few hostile synonyms, including ones that collide with other
    // concepts' primary names after normalization (legal, just ambiguous).
    for &c in ids.iter().skip(1) {
        if rng.gen_bool(0.3) {
            let target = ids[rng.gen_range(0..ids.len())];
            let base = names[target.as_usize()].clone();
            eb.synonym(c, &format!("{base} variant"));
        }
        if rng.gen_bool(0.15) {
            eb.synonym(c, "e\u{301}ponym");
        }
    }
    (eb.build().expect("adversarial graphs stay within builder invariants"), has_long)
}

fn build_kb(rng: &mut StdRng, ekg: &Ekg) -> Kb {
    let mut ob = medkb_ontology::OntologyBuilder::new();
    let finding = ob.concept("Finding");
    let indication = ob.concept("Indication");
    let risk = ob.concept("Risk");
    let drug = ob.concept("Drug");
    ob.relationship("treat", drug, indication);
    ob.relationship("cause", drug, risk);
    ob.relationship("hasFinding", indication, finding);
    ob.relationship("hasFinding", risk, finding);
    let onto = ob.build().expect("mini MED ontology");

    let mut kb = KbBuilder::new(onto);
    let fc = kb.ontology().lookup_concept("Finding").unwrap();
    let mut used: HashSet<String> = HashSet::new();
    for c in ekg.concepts() {
        let name = ekg.name(c).to_string();
        // Most concepts get an exactly-named (mappable) instance.
        if rng.gen_bool(0.7) && used.insert(normalize(&name)) {
            kb.instance(&name, fc);
        }
        // Some get a perturbed, unmappable sibling instance.
        if rng.gen_bool(0.2) {
            let hostile = format!("{name} ???");
            if used.insert(normalize(&hostile)) {
                kb.instance(&hostile, fc);
            }
        }
    }
    // Instances no matcher can do anything with.
    for trap in ["", "   ", "!!!", "\u{301}\u{308}"] {
        if used.insert(normalize(trap)) {
            kb.instance(trap, fc);
        }
    }
    kb.build().expect("instance-only KB always validates")
}

fn build_corpus(rng: &mut StdRng, ekg: &Ekg, shape: CorpusShape) -> Corpus {
    let mut corpus = Corpus::new();
    let (n_docs, tags): (usize, &[ContextTag]) = match shape {
        CorpusShape::Empty => return corpus,
        CorpusShape::SingleDoc => (1, &ContextTag::ALL),
        CorpusShape::OneTagOnly => (rng.gen_range(2..6), &[ContextTag::Risk]),
        CorpusShape::Mixed => (rng.gen_range(3..9), &ContextTag::ALL),
    };
    const FILLER: &[&str] = &["the", "drug", "treats", "patients", "with", "reported", "of"];
    let concepts: Vec<ExtConceptId> = ekg.concepts().collect();
    for _ in 0..n_docs {
        let mut doc = Document::default();
        for _ in 0..rng.gen_range(1..6) {
            let tag = tags[rng.gen_range(0..tags.len())];
            let mut words: Vec<String> = Vec::new();
            words.push(FILLER[rng.gen_range(0..FILLER.len())].to_string());
            // Mention 1–2 concepts by (tokenized) name, so the trie scan
            // has real work even on hostile names.
            for _ in 0..rng.gen_range(1..3) {
                let c = concepts[rng.gen_range(0..concepts.len())];
                words.extend(tokenize(ekg.name(c)));
                words.push(FILLER[rng.gen_range(0..FILLER.len())].to_string());
            }
            let tokens = words.iter().map(|w| corpus.vocab.intern(w)).collect();
            doc.sentences.push(Sentence { tag, tokens });
        }
        corpus.docs.push(doc);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = AdversarialWorld::generate(42);
        let b = AdversarialWorld::generate(42);
        assert_eq!(a.label, b.label);
        assert_eq!(a.ekg.len(), b.ekg.len());
        for c in a.ekg.concepts() {
            assert_eq!(a.ekg.name(c), b.ekg.name(c));
        }
        assert_eq!(a.kb.instance_count(), b.kb.instance_count());
        assert_eq!(a.corpus.len(), b.corpus.len());
    }

    #[test]
    fn striping_covers_the_whole_matrix() {
        let mut shapes = HashSet::new();
        let mut styles = HashSet::new();
        let mut corpora = HashSet::new();
        for seed in 0..100 {
            let w = AdversarialWorld::generate(seed);
            shapes.insert(format!("{:?}", w.shape));
            styles.insert(format!("{:?}", w.style));
            corpora.insert(format!("{:?}", w.corpus_shape));
        }
        assert_eq!(shapes.len(), DagShape::ALL.len());
        assert_eq!(styles.len(), NameStyle::ALL.len());
        assert_eq!(corpora.len(), CorpusShape::ALL.len());
    }

    #[test]
    fn singleton_world_is_truly_degenerate() {
        // seed 0 stripes to Singleton/Ascii/Empty.
        let w = AdversarialWorld::generate(0);
        assert_eq!(w.shape, DagShape::Singleton);
        assert_eq!(w.ekg.len(), 1);
        assert_eq!(w.corpus_shape, CorpusShape::Empty);
        assert!(w.corpus.is_empty());
    }

    #[test]
    fn long_style_worlds_carry_a_10k_name() {
        // style index 4 (Long) occupies seeds 20..25 within each 25-block.
        let w = AdversarialWorld::generate(21);
        assert_eq!(w.style, NameStyle::Long);
        assert!(w.has_long_names);
        assert!(w.ekg.concepts().any(|c| w.ekg.name(c).len() >= 10_000));
    }

    #[test]
    fn multi_root_graphs_are_rejected_with_a_typed_error_not_a_panic() {
        // The one degenerate shape the substrate refuses outright: make
        // sure refusal is an error, since fuzz worlds must route around it.
        let mut eb = EkgBuilder::new();
        eb.concept("island a");
        eb.concept("island b");
        match eb.build() {
            Err(medkb_types::MedKbError::InvalidRoot { roots }) => assert_eq!(roots, 2),
            other => panic!("expected InvalidRoot, got {other:?}"),
        }
    }
}
