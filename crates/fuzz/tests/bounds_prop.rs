//! Property tests for score-bounded pruning (DESIGN.md §13) over the
//! adversarial world generator:
//!
//! * `upper_bound(c) ≥ exact_score(c)` for every candidate the bounded
//!   scan could consult (plus the ring-cap dominance chain), and
//! * the pruned top-k is **bit-identical** — ids, scores, order — to the
//!   exhaustive `relax_concept_reference`, sequentially and through the
//!   sharded batch API at 1/2/4/8 threads.
//!
//! Seeds range over the same 0..240 space the differential shards sweep,
//! so every shrunk counterexample maps straight onto a reproducible world.

use medkb_core::{ingest, IngestOutput, MappingMethod, QueryRelaxer, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_fuzz::{check_bounds, AdversarialWorld, THREAD_SWEEP};
use medkb_types::{ContextId, ExtConceptId};
use proptest::prelude::*;

fn world_and_output(seed: u64) -> (AdversarialWorld, IngestOutput, RelaxConfig) {
    let w = AdversarialWorld::generate(seed);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let counts = MentionCounts::count(&w.corpus, &w.ekg);
    let out = ingest(&w.kb, w.ekg.clone(), &counts, None, &config)
        .unwrap_or_else(|e| panic!("[{}] ingest failed: {e}", w.label));
    (w, out, config)
}

fn query_mix(
    w: &AdversarialWorld,
    r: &QueryRelaxer,
) -> Vec<(ExtConceptId, Option<ContextId>)> {
    let mut contexts: Vec<Option<ContextId>> = vec![None];
    contexts.extend(r.ingested().contexts.first().map(|c| Some(c.id)));
    let mut queries = Vec::new();
    for q in w.query_concepts() {
        for &ctx in &contexts {
            queries.push((q, ctx));
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Admissibility: the Eq. 5 upper bound dominates the exact score for
    /// every (query, tag, candidate) triple in a radius-4 neighborhood.
    #[test]
    fn bounds_are_admissible_on_adversarial_worlds(seed in 0u64..240) {
        let (w, out, config) = world_and_output(seed);
        check_bounds(&w, &out, &config);
    }

    /// Bit-identity: pruned top-k ≡ exhaustive reference for arbitrary k,
    /// element-wise through the batch API at every sweep thread count.
    #[test]
    fn pruned_topk_is_bit_identical_to_reference(seed in 0u64..240, k in 1usize..20) {
        let (w, out, config) = world_and_output(seed);
        let r = QueryRelaxer::new(out, RelaxConfig { pruning: true, ..config });
        let queries = query_mix(&w, &r);

        let reference: Vec<_> =
            queries.iter().map(|&(q, ctx)| r.relax_concept_reference(q, ctx, k)).collect();
        for (&(q, ctx), slow) in queries.iter().zip(&reference) {
            let fast = r.relax_concept(q, ctx, k);
            match (&fast, slow) {
                (Ok(f), Ok(s)) => {
                    prop_assert_eq!(f, s, "[{}] relax({:?},{:?},k={})", w.label, q, ctx, k);
                }
                (Err(_), Err(_)) => {}
                (f, s) => panic!(
                    "[{}] relax({q:?},{ctx:?},k={k}) outcome kind diverged: \
                     pruned={f:?} reference={s:?}",
                    w.label
                ),
            }
        }

        for threads in THREAD_SWEEP {
            let batch = r.relax_concepts_batch_with_threads(&queries, k, threads);
            prop_assert_eq!(batch.len(), reference.len());
            for (i, (b, s)) in batch.iter().zip(&reference).enumerate() {
                match (b, s) {
                    (Ok(b), Ok(s)) => {
                        prop_assert_eq!(
                            b, s,
                            "[{}] batch slot {} @{} threads k={}",
                            w.label, i, threads, k
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (b, s) => panic!(
                        "[{}] batch slot {i} @{threads} threads k={k} kind diverged: \
                         batch={b:?} reference={s:?}",
                        w.label
                    ),
                }
            }
        }
    }
}
