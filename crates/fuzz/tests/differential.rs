//! The full differential suite: 240 adversarial worlds, every optimized
//! path pinned bit-identical to its reference twin at 1/2/4/8 threads.
//!
//! Seeds stripe the generator's shape × style × corpus matrix (see
//! `worlds.rs`), so each 100-seed span covers every combination. The run is
//! split into shards purely so the test harness can execute them on
//! parallel threads.

use medkb_fuzz::{check_world, AdversarialWorld};

fn run_seeds(range: std::ops::Range<u64>) {
    for seed in range {
        check_world(&AdversarialWorld::generate(seed));
    }
}

#[test]
fn differential_suite_shard_0() {
    run_seeds(0..60);
}

#[test]
fn differential_suite_shard_1() {
    run_seeds(60..120);
}

#[test]
fn differential_suite_shard_2() {
    run_seeds(120..180);
}

#[test]
fn differential_suite_shard_3() {
    run_seeds(180..240);
}
