//! The delta-vs-full differential suite: on 240 adversarial worlds, every
//! delta kind applied at 1/2/4/8 threads must leave the incremental
//! engine's output **bit-identical** to an honest full re-ingest of the
//! same mutated inputs (see `check_delta`).
//!
//! The `smoke_*` test is the fast pass `scripts/tier1.sh` runs; the shards
//! split the full sweep so the harness can run them on parallel threads.
//! The store tests pin the persistence satellite: delta application
//! commutes with a save/open round trip, and a version-bumped image is a
//! typed validation error, never a misread.

use medkb_core::{outputs_identical, DeltaEngine, MappingMethod, RelaxConfig};
use medkb_fuzz::{check_delta, generate_delta, AdversarialWorld, DeltaKind};
use medkb_store::WorldStore;
use medkb_types::MedKbError;

fn run_seeds(range: std::ops::Range<u64>) {
    for seed in range {
        check_delta(&AdversarialWorld::generate(seed));
    }
}

/// One world per graph shape (the tier-1 smoke battery).
#[test]
fn smoke_delta_one_world_per_shape() {
    for seed in [0u64, 1, 2, 3, 4] {
        check_delta(&AdversarialWorld::generate(seed));
    }
}

#[test]
fn delta_differential_shard_0() {
    run_seeds(0..60);
}

#[test]
fn delta_differential_shard_1() {
    run_seeds(60..120);
}

#[test]
fn delta_differential_shard_2() {
    run_seeds(120..180);
}

#[test]
fn delta_differential_shard_3() {
    run_seeds(180..240);
}

fn exact_config() -> RelaxConfig {
    RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() }
}

/// `save → open → from_opened → apply` must equal `apply → save → open`:
/// an engine adopting a persisted world continues exactly where a
/// never-persisted engine would be.
#[test]
fn store_round_trip_commutes_with_delta_apply() {
    let w = AdversarialWorld::generate(3);
    let cfg = exact_config();
    let mut direct =
        DeltaEngine::new(w.kb.clone(), w.corpus.clone(), w.ekg.clone(), None, cfg.clone())
            .expect("engine build");
    let opened = WorldStore::open_bytes(&WorldStore::save_bytes(direct.output()))
        .expect("round trip of the pre-delta output");
    let mut adopted = DeltaEngine::from_opened(
        w.kb.clone(),
        w.corpus.clone(),
        w.ekg.clone(),
        None,
        cfg,
        opened,
    );
    for (i, &kind) in DeltaKind::ALL.iter().enumerate() {
        let delta = generate_delta(7_000 + i as u64, kind, &direct);
        direct.apply(&delta).expect("delta applies to the direct engine");
        adopted.apply(&delta).expect("delta applies to the adopted engine");
        let persisted = WorldStore::open_bytes(&WorldStore::save_bytes(direct.output()))
            .expect("round trip of the post-delta output");
        assert!(
            outputs_identical(&persisted, adopted.output()),
            "{kind:?}: apply→save→open diverged from save→open→apply"
        );
        assert!(
            outputs_identical(direct.output(), adopted.output()),
            "{kind:?}: adopted engine diverged from the direct engine"
        );
    }
}

/// A store image from a different format version must surface as a typed
/// [`MedKbError::Validation`] naming the version — the delta engine can
/// never silently adopt a world it would misread.
#[test]
fn mismatched_store_version_is_a_validation_error() {
    let w = AdversarialWorld::generate(2);
    let engine =
        DeltaEngine::new(w.kb.clone(), w.corpus.clone(), w.ekg.clone(), None, exact_config())
            .expect("engine build");
    let mut bytes = WorldStore::save_bytes(engine.output());
    // FORMAT_VERSION lives at bytes 8..12 (little endian, after the magic).
    bytes[8] = bytes[8].wrapping_add(1);
    match WorldStore::open_bytes(&bytes) {
        Err(MedKbError::Validation(report)) => {
            let text = report.to_string();
            assert!(
                text.contains("unsupported format version"),
                "report must name the version defect: {text}"
            );
        }
        other => panic!("expected a validation error, got {other:?}"),
    }
}
