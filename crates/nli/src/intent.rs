//! Multinomial naive-Bayes intent (context) classification.
//!
//! Stands in for Watson Assistant's intent model (§4): trained on the
//! bootstrap utterances from [`crate::trainset`], it maps a user utterance
//! to the most likely context. Entity words appear across many intents and
//! wash out; the carrier signal is the phrasing ("treat" vs "cause" vs
//! "monitor"), which is exactly how production intent classifiers behave.

use std::collections::HashMap;

use medkb_text::tokenize;
use medkb_types::ContextId;

use crate::trainset::LabeledQuery;

/// A trained multinomial naive-Bayes intent classifier.
#[derive(Debug, Clone)]
pub struct IntentClassifier {
    /// log prior per class.
    priors: HashMap<ContextId, f64>,
    /// log P(word | class) with Laplace smoothing.
    likelihoods: HashMap<ContextId, HashMap<String, f64>>,
    /// log of the smoothing mass for unseen words, per class.
    unseen: HashMap<ContextId, f64>,
    vocab_size: usize,
}

impl IntentClassifier {
    /// Train from labeled utterances.
    ///
    /// # Panics
    /// Panics on an empty training set — the bootstrap always produces
    /// at least one example per context.
    pub fn train(examples: &[LabeledQuery]) -> Self {
        assert!(!examples.is_empty(), "intent training set must not be empty");
        let mut class_counts: HashMap<ContextId, usize> = HashMap::new();
        let mut word_counts: HashMap<ContextId, HashMap<String, usize>> = HashMap::new();
        let mut vocab: std::collections::HashSet<String> = std::collections::HashSet::new();
        for ex in examples {
            *class_counts.entry(ex.context).or_insert(0) += 1;
            let words = word_counts.entry(ex.context).or_default();
            for tok in tokenize(&ex.text) {
                vocab.insert(tok.clone());
                *words.entry(tok).or_insert(0) += 1;
            }
        }
        let total = examples.len() as f64;
        let vocab_size = vocab.len().max(1);
        let mut priors = HashMap::new();
        let mut likelihoods = HashMap::new();
        let mut unseen = HashMap::new();
        for (&class, &count) in &class_counts {
            priors.insert(class, (count as f64 / total).ln());
            let words = &word_counts[&class];
            let class_tokens: usize = words.values().sum();
            let denom = (class_tokens + vocab_size) as f64;
            let map: HashMap<String, f64> = words
                .iter()
                .map(|(w, &c)| (w.clone(), ((c + 1) as f64 / denom).ln()))
                .collect();
            likelihoods.insert(class, map);
            unseen.insert(class, (1.0 / denom).ln());
        }
        Self { priors, likelihoods, unseen, vocab_size }
    }

    /// Vocabulary size seen at training.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Classify an utterance, returning the best context and a softmax-ish
    /// confidence in `(0, 1]`.
    pub fn classify(&self, utterance: &str) -> Option<(ContextId, f64)> {
        let tokens = tokenize(utterance);
        if tokens.is_empty() {
            return None;
        }
        let mut scores: Vec<(ContextId, f64)> = self
            .priors
            .iter()
            .map(|(&class, &prior)| {
                let words = &self.likelihoods[&class];
                let unseen = self.unseen[&class];
                let ll: f64 =
                    tokens.iter().map(|t| words.get(t).copied().unwrap_or(unseen)).sum();
                (class, prior + ll)
            })
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let best = scores[0];
        // Normalized confidence via log-sum-exp over all classes.
        let max = best.1;
        let lse: f64 = scores.iter().map(|&(_, s)| (s - max).exp()).sum::<f64>().ln() + max;
        Some((best.0, (best.1 - lse).exp()))
    }

    /// Full ranked class list with normalized probabilities.
    pub fn classify_all(&self, utterance: &str) -> Vec<(ContextId, f64)> {
        let tokens = tokenize(utterance);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut scores: Vec<(ContextId, f64)> = self
            .priors
            .iter()
            .map(|(&class, &prior)| {
                let words = &self.likelihoods[&class];
                let unseen = self.unseen[&class];
                let ll: f64 =
                    tokens.iter().map(|t| words.get(t).copied().unwrap_or(unseen)).sum();
                (class, prior + ll)
            })
            .collect();
        let max = scores.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max);
        let lse: f64 = scores.iter().map(|&(_, s)| (s - max).exp()).sum::<f64>().ln() + max;
        for (_, s) in scores.iter_mut() {
            *s = (*s - lse).exp();
        }
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(text: &str, ctx: u32) -> LabeledQuery {
        LabeledQuery { text: text.to_string(), context: ContextId::new(ctx) }
    }

    fn classifier() -> IntentClassifier {
        IntentClassifier::train(&[
            labeled("what drugs treat fever", 0),
            labeled("which medication is used for headache", 0),
            labeled("how do you treat kidney disease", 0),
            labeled("what drugs cause fever", 1),
            labeled("which medication has the risk of causing rash", 1),
            labeled("can any drug lead to dizziness", 1),
        ])
    }

    #[test]
    fn separates_treat_from_cause() {
        // The entity ("ulcer") is unseen in training, so only the phrasing
        // carries signal — the situation intent classifiers live in.
        let c = classifier();
        let (treat, _) = c.classify("what drugs treat ulcer").unwrap();
        assert_eq!(treat, ContextId::new(0));
        let (cause, _) = c.classify("which drugs cause ulcer").unwrap();
        assert_eq!(cause, ContextId::new(1));
    }

    #[test]
    fn confidence_normalized() {
        let c = classifier();
        let all = c.classify_all("what drugs treat fever");
        let sum: f64 = all.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(all[0].1 >= all[1].1);
    }

    #[test]
    fn unseen_entity_words_do_not_break_it() {
        let c = classifier();
        let (ctx, _) = c.classify("what drugs treat pyelectasia").unwrap();
        assert_eq!(ctx, ContextId::new(0));
    }

    #[test]
    fn empty_utterance_is_none() {
        let c = classifier();
        assert!(c.classify("").is_none());
        assert!(c.classify("?!").is_none());
        assert!(c.classify_all("").is_empty());
    }

    #[test]
    fn ambiguous_utterance_has_low_margin() {
        let c = classifier();
        let all = c.classify_all("fever");
        // Entity-only utterance: close to the prior split.
        assert!(all[0].1 < 0.9, "{all:?}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        let _ = IntentClassifier::train(&[]);
    }
}
