//! Natural-language interface substrates (§4, §6).
//!
//! The paper integrates its query relaxation with two closed systems: IBM
//! Watson Assistant (a conversational interface) and an ATHENA-style
//! natural language query system. Both are reproduced here from scratch:
//!
//! * [`trainset`] — the §4 bootstrap: generate labeled training queries
//!   for every context from the domain ontology and the KB instances
//!   (including the "replace the instance with other instances of the same
//!   concept" enrichment).
//! * [`intent`] — a multinomial naive-Bayes intent classifier standing in
//!   for Watson Assistant's intent model.
//! * [`extract`] — gazetteer entity extraction over KB instance names plus
//!   unknown-mention detection (the trigger for Scenario 1 relaxation).
//! * [`conversation`] — the dialogue engine: context tracking across
//!   turns ("what about fever?"), conversation repair through relaxation
//!   on unknown terms (Figure 7), and concept expansion on known terms
//!   (Figure 8). A switch disables relaxation to produce the Table 3
//!   "no QR" system.
//! * [`nlq`] — the one-shot NLQ pipeline (Figure 9): evidence generation
//!   over ontology elements and instance values, relaxation of unmatched
//!   tokens, and Steiner-tree interpretation generation ranked by
//!   compactness and relaxation scores.
//! * [`sql`] — rendering an interpretation as the "structured query such
//!   as SQL" §6.2 says the NLQ system emits.

#![warn(missing_docs)]

pub mod conversation;
pub mod extract;
pub mod intent;
pub mod nlq;
pub mod sql;
pub mod trainset;

pub use conversation::{ConversationEngine, Response};
pub use extract::{EntityExtractor, Extraction};
pub use intent::IntentClassifier;
pub use nlq::{Interpretation, NlqEngine};
