//! Entity mention extraction (the Watson Assistant entity layer of §6.1).
//!
//! Known mentions are spotted with a longest-match gazetteer over KB
//! instance names. Remaining content words — after removing template
//! vocabulary — are grouped into contiguous *unknown mentions*, the
//! "pyelectasia" case that triggers relaxation.

use std::collections::HashSet;

use medkb_kb::Kb;
use medkb_text::{tokenize, Gazetteer};
use medkb_types::{Id, InstanceId};

/// Words that belong to question phrasing rather than entities.
const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "for", "with", "in", "on", "to", "and", "or", "is", "are",
    "be", "can", "do", "does", "you", "any", "what", "which", "who", "how", "when",
    "drug", "drugs", "medication", "medications", "medicine", "treat", "treats",
    "treated", "treatment", "cause", "causes", "causing", "caused", "risk", "risks",
    "side", "effect", "effects", "used", "use", "using", "indicated", "avoided",
    "lead", "leads", "happens", "overdose", "toxic", "monitored", "monitoring",
    "checks", "needed", "patients", "patient", "about", "tell", "me", "give",
    "information", "should", "has", "have", "by", "as",
];

/// The result of scanning one utterance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extraction {
    /// Instances whose names were found, in utterance order.
    pub known: Vec<InstanceId>,
    /// Contiguous unknown content-word mentions, in utterance order.
    pub unknown: Vec<String>,
}

impl Extraction {
    /// Whether nothing entity-like was found at all.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty() && self.unknown.is_empty()
    }
}

/// Gazetteer-based entity extractor over a KB.
#[derive(Debug, Clone)]
pub struct EntityExtractor {
    gazetteer: Gazetteer,
    stopwords: HashSet<&'static str>,
}

impl EntityExtractor {
    /// Build from all instance names of `kb`.
    pub fn build(kb: &Kb) -> Self {
        let mut gazetteer = Gazetteer::new();
        for (id, instance) in kb.instances() {
            gazetteer.insert(&instance.name, id.as_u32());
        }
        Self { gazetteer, stopwords: STOPWORDS.iter().copied().collect() }
    }

    /// Scan `utterance` for known instances and unknown mentions.
    pub fn extract(&self, utterance: &str) -> Extraction {
        let tokens = tokenize(utterance);
        let matches = self.gazetteer.scan_tokens(&tokens);
        let mut covered = vec![false; tokens.len()];
        let mut known = Vec::new();
        for m in &matches {
            known.push(InstanceId::new(m.payload));
            covered[m.start_token..m.start_token + m.len].fill(true);
        }
        // Group the leftover non-stopword tokens into contiguous mentions.
        let mut unknown = Vec::new();
        let mut current: Vec<&str> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            let is_content = !covered[i] && !self.stopwords.contains(tok.as_str());
            if is_content {
                current.push(tok);
            } else if !current.is_empty() {
                unknown.push(current.join(" "));
                current.clear();
            }
        }
        if !current.is_empty() {
            unknown.push(current.join(" "));
        }
        Extraction { known, unknown }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ontology::OntologyBuilder;

    fn kb() -> Kb {
        let mut b = OntologyBuilder::new();
        let drug = b.concept("Drug");
        let finding = b.concept("Finding");
        b.relationship("treats", drug, finding);
        let o = b.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(o);
        let onto = kb.ontology();
        let (dc, fc) =
            (onto.lookup_concept("Drug").unwrap(), onto.lookup_concept("Finding").unwrap());
        kb.instance("aspirin", dc);
        kb.instance("kidney disease", fc);
        kb.instance("fever", fc);
        kb.build().unwrap()
    }

    #[test]
    fn finds_known_instances() {
        let e = EntityExtractor::build(&kb());
        let x = e.extract("what drugs treat fever");
        assert_eq!(x.known.len(), 1);
        assert!(x.unknown.is_empty());
    }

    #[test]
    fn multiword_instances_matched_longest() {
        let e = EntityExtractor::build(&kb());
        let x = e.extract("which medication is used for kidney disease");
        assert_eq!(x.known.len(), 1);
        assert!(x.unknown.is_empty());
    }

    #[test]
    fn unknown_term_detected() {
        let e = EntityExtractor::build(&kb());
        let x = e.extract("what drugs treat pyelectasia");
        assert!(x.known.is_empty());
        assert_eq!(x.unknown, vec!["pyelectasia"]);
    }

    #[test]
    fn multiword_unknown_mention_grouped() {
        let e = EntityExtractor::build(&kb());
        let x = e.extract("what drugs treat psychogenic hyperthermia quickly");
        assert_eq!(x.unknown, vec!["psychogenic hyperthermia quickly"]);
    }

    #[test]
    fn known_and_unknown_coexist() {
        let e = EntityExtractor::build(&kb());
        let x = e.extract("does aspirin help with pyelectasia");
        assert_eq!(x.known.len(), 1);
        assert_eq!(x.unknown, vec!["help", "pyelectasia"]);
    }

    #[test]
    fn pure_template_words_yield_empty() {
        let e = EntityExtractor::build(&kb());
        assert!(e.extract("what drugs treat").is_empty());
        assert!(e.extract("").is_empty());
    }
}
