//! Rendering an NLQ interpretation as SQL (§6.2).
//!
//! The NLQ system the paper integrates with "interprets [the query] over
//! the domain ontology to produce a structured query such as SQL". Under
//! the standard ontology-to-relational mapping — one table per concept,
//! one join table per relationship — an interpretation tree becomes a
//! join query: the tree's relationships are the joins, the data values are
//! the `WHERE` predicates, and the concept evidences select the projected
//! table.

use std::collections::HashSet;

use medkb_kb::Kb;
use medkb_types::{OntoConceptId, RelationshipId};

use crate::nlq::{Evidence, Interpretation};

/// Render `interpretation` as a SQL query over the virtual star schema.
///
/// Projection: the first concept evidence (or, failing that, the domain of
/// the first tree relationship). Each tree relationship `D --r--> R`
/// contributes `JOIN r ON r.domain_id = D.id JOIN R ON r.range_id = R.id`;
/// each data value contributes a `WHERE <table>.name = '<value>'`
/// predicate (with the relaxation score kept as a trailing comment, the
/// ranking signal the paper feeds into interpretation selection).
pub fn to_sql(kb: &Kb, interpretation: &Interpretation) -> String {
    let onto = kb.ontology();
    let table = |c: OntoConceptId| onto.concept_name(c).to_lowercase().replace(' ', "_");
    let join_table = |r: RelationshipId| {
        let rel = onto.relationship(r);
        format!("{}_{}", rel.name.to_lowercase(), table(rel.range))
    };

    // Projection target.
    let projected: OntoConceptId = interpretation
        .selection
        .iter()
        .find_map(|(_, e)| match e {
            Evidence::Concept(c) => Some(*c),
            _ => None,
        })
        .or_else(|| {
            interpretation.tree.first().map(|&r| onto.relationship(r).domain)
        })
        .unwrap_or_else(|| OntoConceptId::new(0));

    let mut sql = format!("SELECT DISTINCT {p}.* FROM {p}", p = table(projected));
    let mut joined: HashSet<OntoConceptId> = HashSet::from([projected]);
    // Greedy join ordering: repeatedly attach a tree edge that touches an
    // already-joined concept.
    let mut remaining: Vec<RelationshipId> = interpretation.tree.clone();
    while let Some(pos) = remaining.iter().position(|&r| {
        let rel = onto.relationship(r);
        joined.contains(&rel.domain) || joined.contains(&rel.range)
    }) {
        let r = remaining.remove(pos);
        let rel = onto.relationship(r);
        let jt = join_table(r);
        if joined.contains(&rel.domain) {
            sql.push_str(&format!(
                "\n  JOIN {jt} ON {jt}.domain_id = {}.id\n  JOIN {rng} ON {jt}.range_id = {rng}.id",
                table(rel.domain),
                rng = table(rel.range),
            ));
            joined.insert(rel.range);
        } else {
            sql.push_str(&format!(
                "\n  JOIN {jt} ON {jt}.range_id = {}.id\n  JOIN {dom} ON {jt}.domain_id = {dom}.id",
                table(rel.range),
                dom = table(rel.domain),
            ));
            joined.insert(rel.domain);
        }
    }

    // Predicates from data values.
    let mut predicates = Vec::new();
    for (_, e) in &interpretation.selection {
        if let Evidence::DataValue { instance, score } = e {
            let concept = kb.concept_of(*instance);
            let name = kb.name(*instance).replace('\'', "''");
            predicates.push(format!(
                "{}.name = '{}' /* relaxation score {:.2} */",
                table(concept),
                name,
                score
            ));
        }
    }
    if !predicates.is_empty() {
        sql.push_str("\nWHERE ");
        sql.push_str(&predicates.join("\n  AND "));
    }
    sql.push(';');
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlq::NlqEngine;
    use medkb_core::{ingest, MappingMethod, QueryRelaxer, RelaxConfig};
    use medkb_corpus::MentionCounts;
    use std::collections::HashMap;

    fn engine() -> NlqEngine {
        let f = medkb_snomed::figures::paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let drug = ob.concept("Drug");
        let risk = ob.concept("Risk");
        let finding = ob.concept("Finding");
        ob.relationship("cause", drug, risk);
        ob.relationship("hasFinding", risk, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let o = kb.ontology();
        let (dc, rc, fc) = (
            o.lookup_concept("Drug").unwrap(),
            o.lookup_concept("Risk").unwrap(),
            o.lookup_concept("Finding").unwrap(),
        );
        let r_cause = kb.ontology().lookup_relationship("Drug-cause-Risk").unwrap();
        let r_has = kb.ontology().lookup_relationship("Risk-hasFinding-Finding").unwrap();
        let aspirin = kb.instance("aspirin", dc);
        let risk_row = kb.instance("renal adverse events", rc);
        let kd = kb.instance("kidney disease", fc);
        kb.triple(aspirin, r_cause, risk_row);
        kb.triple(risk_row, r_has, kd);
        let kb = kb.build().unwrap();
        let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
        NlqEngine::new(kb, QueryRelaxer::new(out, config))
    }

    #[test]
    fn renders_the_figure9_query() {
        let e = engine();
        let interps = e.interpret("what risks are caused by aspirin with pyelectasia");
        let sql = to_sql(e.kb(), &interps[0]);
        assert!(sql.starts_with("SELECT DISTINCT risk.*"), "{sql}");
        assert!(sql.contains("JOIN cause_risk"), "{sql}");
        assert!(sql.contains("aspirin"), "{sql}");
        assert!(sql.contains("relaxation score"), "{sql}");
        assert!(sql.ends_with(';'), "{sql}");
    }

    #[test]
    fn escapes_single_quotes_in_values() {
        let e = engine();
        let interp = Interpretation {
            selection: vec![(
                "x".into(),
                Evidence::DataValue { instance: e.kb().lookup_name("aspirin")[0], score: 1.0 },
            )],
            tree: vec![],
            compactness: 0,
            score: 1.0,
        };
        let sql = to_sql(e.kb(), &interp);
        assert!(!sql.contains("JOIN"));
        assert!(sql.contains("WHERE drug.name = 'aspirin'"), "{sql}");
    }

    #[test]
    fn join_ordering_attaches_connected_edges() {
        let e = engine();
        let interps = e.interpret("which drug causes kidney disease");
        let sql = to_sql(e.kb(), &interps[0]);
        // Both tree edges appear as joins.
        assert!(sql.matches("JOIN").count() >= 2, "{sql}");
    }
}
