//! Training-data bootstrap for intent classification (§4).
//!
//! "The first step is to generate all possible contexts … The second step
//! is to associate a query workload to the generated contexts … we can
//! further enrich the query workload [by replacing] identified instances
//! with other instances of the same concept."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_kb::Kb;
use medkb_ontology::ContextSpec;
use medkb_snomed::ContextTag;
use medkb_types::ContextId;

/// Utterance templates per context tag. `{e}` is the entity slot.
pub const QUERY_TEMPLATES: [(ContextTag, &[&str]); 5] = [
    (
        ContextTag::Treatment,
        &[
            "what drugs treat {e}",
            "which medication is used for {e}",
            "how do you treat {e}",
            "what is the treatment for {e}",
            "which drugs are indicated for {e}",
        ],
    ),
    (
        ContextTag::Risk,
        &[
            "what drugs cause {e}",
            "which medication has the risk of causing {e}",
            "can any drug lead to {e}",
            "what are the drugs with {e} as a side effect",
            "which drugs should be avoided with {e}",
        ],
    ),
    (
        ContextTag::Monitoring,
        &[
            "what should be monitored for {e}",
            "which checks are needed for patients with {e}",
        ],
    ),
    (
        ContextTag::Toxicology,
        &[
            "what happens in an overdose with {e}",
            "what are the toxic effects related to {e}",
        ],
    ),
    (
        ContextTag::General,
        &["tell me about {e}", "what is {e}", "give me information on {e}"],
    ),
];

/// A labeled training utterance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledQuery {
    /// The utterance text.
    pub text: String,
    /// The context (intent) label.
    pub context: ContextId,
}

/// Generate up to `per_context` labeled utterances for each of `contexts`,
/// filling entity slots with KB instances of the context's range concept
/// (the §4 enrichment). Contexts whose range concept has no instances get
/// a placeholder entity so that every intent has at least a few examples.
pub fn generate_training_queries(
    kb: &Kb,
    contexts: &[ContextSpec],
    tag_of: impl Fn(ContextId) -> ContextTag,
    per_context: usize,
    seed: u64,
) -> Vec<LabeledQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for ctx in contexts {
        let tag = tag_of(ctx.id);
        let templates = QUERY_TEMPLATES
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, ts)| ts)
            .expect("every tag has templates");
        let instances = kb.instances_of_subtree(ctx.range);
        for i in 0..per_context {
            let template = templates[i % templates.len()];
            let entity = if instances.is_empty() {
                kb.ontology().concept_name(ctx.range).to_lowercase()
            } else {
                let pick = instances[rng.gen_range(0..instances.len())];
                kb.name(pick).to_string()
            };
            out.push(LabeledQuery { text: template.replace("{e}", &entity), context: ctx.id });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_snomed::{MedWorld, WorldConfig};

    #[test]
    fn every_context_gets_examples() {
        let w = MedWorld::generate(&WorldConfig::tiny(81));
        let queries =
            generate_training_queries(&w.kb, &w.contexts, |c| w.tag_of(c), 4, 1);
        assert_eq!(queries.len(), w.contexts.len() * 4);
        for ctx in &w.contexts {
            assert!(queries.iter().any(|q| q.context == ctx.id));
        }
    }

    #[test]
    fn treatment_queries_use_treatment_phrasing() {
        let w = MedWorld::generate(&WorldConfig::tiny(82));
        let queries =
            generate_training_queries(&w.kb, &w.contexts, |c| w.tag_of(c), 5, 2);
        let treat_ctx = w.treatment_context();
        let sample: Vec<&LabeledQuery> =
            queries.iter().filter(|q| q.context == treat_ctx).collect();
        assert!(!sample.is_empty());
        assert!(sample.iter().any(|q| q.text.contains("treat") || q.text.contains("indicated")));
    }

    #[test]
    fn entities_come_from_kb_instances() {
        let w = MedWorld::generate(&WorldConfig::tiny(83));
        let queries =
            generate_training_queries(&w.kb, &w.contexts, |c| w.tag_of(c), 3, 3);
        let treat_ctx = w.treatment_context();
        let with_instance = queries
            .iter()
            .filter(|q| q.context == treat_ctx)
            .filter(|q| {
                w.kb.instances().any(|(_, inst)| q.text.contains(&*inst.name))
            })
            .count();
        assert!(with_instance > 0);
    }

    #[test]
    fn deterministic() {
        let w = MedWorld::generate(&WorldConfig::tiny(84));
        let a = generate_training_queries(&w.kb, &w.contexts, |c| w.tag_of(c), 3, 9);
        let b = generate_training_queries(&w.kb, &w.contexts, |c| w.tag_of(c), 3, 9);
        assert_eq!(a, b);
    }
}
