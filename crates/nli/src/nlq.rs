//! The one-shot natural language query pipeline (§6.2, Figure 9).
//!
//! Mirrors the ATHENA-style flow the paper integrates with:
//!
//! 1. **Evidence generation** — each utterance token (span) collects
//!    *metadata* evidence (ontology concepts and relationships matched by
//!    name) or *data-value* evidence (KB instances matched by name, plus —
//!    through query relaxation — semantically related instances for
//!    unknown spans, carrying their relaxation scores).
//! 2. **Interpretation generation** — for each selection of one evidence
//!    per span, connect the referenced ontology concepts in the semantic
//!    graph with an (approximate) Steiner tree and rank interpretations by
//!    compactness, breaking ties with the relaxation scores, exactly the
//!    ranking refinement the paper describes for the pyelectasia example.

use std::collections::{HashMap, HashSet, VecDeque};

use medkb_core::QueryRelaxer;
use medkb_kb::Kb;
use medkb_text::tokenize;
use medkb_types::{InstanceId, OntoConceptId, RelationshipId};

use crate::extract::EntityExtractor;

/// One piece of evidence for a token span.
#[derive(Debug, Clone, PartialEq)]
pub enum Evidence {
    /// The span names an ontology concept.
    Concept(OntoConceptId),
    /// The span names an ontology relationship.
    Relationship(RelationshipId),
    /// The span names (or relaxes to) a KB instance; `score` is 1 for a
    /// direct match and the Eq. 5 similarity for a relaxed one.
    DataValue {
        /// The matched instance.
        instance: InstanceId,
        /// Match confidence.
        score: f64,
    },
}

/// Evidence set of one span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvidence {
    /// The surface span.
    pub span: String,
    /// Candidate evidences, best first.
    pub candidates: Vec<Evidence>,
}

/// One ranked interpretation of the utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Interpretation {
    /// The chosen evidence per span (span text, evidence).
    pub selection: Vec<(String, Evidence)>,
    /// The relationships of the connecting (Steiner) tree.
    pub tree: Vec<RelationshipId>,
    /// Number of tree edges (lower = more compact = better).
    pub compactness: usize,
    /// Sum of data-value scores (higher breaks compactness ties).
    pub score: f64,
}

/// The NLQ engine.
pub struct NlqEngine {
    kb: Kb,
    relaxer: QueryRelaxer,
    extractor: EntityExtractor,
    /// Relaxed candidates per unknown span.
    pub relax_k: usize,
    /// Maximum evidence candidates kept per span.
    pub max_candidates: usize,
}

impl NlqEngine {
    /// Assemble an engine over a KB and a relaxer built from the same
    /// ontology.
    pub fn new(kb: Kb, relaxer: QueryRelaxer) -> Self {
        let extractor = EntityExtractor::build(&kb);
        Self { kb, relaxer, extractor, relax_k: 3, max_candidates: 3 }
    }

    /// The KB queried.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Evidence generation (§6.2).
    pub fn evidences(&self, utterance: &str) -> Vec<SpanEvidence> {
        let mut out = Vec::new();
        let tokens = tokenize(utterance);

        // Metadata evidence: concept and relationship names.
        let onto = self.kb.ontology();
        let concept_by_name: HashMap<String, OntoConceptId> = onto
            .concepts()
            .map(|c| (onto.concept_name(c).to_lowercase(), c))
            .collect();
        let rel_names = onto.relationship_name_index();

        let mut covered = vec![false; tokens.len()];
        for (i, tok) in tokens.iter().enumerate() {
            let singular = tok.trim_end_matches('s');
            if let Some(&c) =
                concept_by_name.get(tok.as_str()).or_else(|| concept_by_name.get(singular))
            {
                out.push(SpanEvidence {
                    span: tok.clone(),
                    candidates: vec![Evidence::Concept(c)],
                });
                covered[i] = true;
                continue;
            }
            let rel_key = rel_names
                .keys()
                .find(|name| {
                    let lower = name.to_lowercase();
                    lower == *tok || lower == singular || lower.trim_end_matches('d') == singular
                })
                .copied();
            if let Some(name) = rel_key {
                let candidates: Vec<Evidence> = rel_names[name]
                    .iter()
                    .take(self.max_candidates)
                    .map(|&r| Evidence::Relationship(r))
                    .collect();
                out.push(SpanEvidence { span: tok.clone(), candidates });
                covered[i] = true;
            }
        }

        // Data-value evidence: known instances and relaxed unknowns.
        let extraction = self.extractor.extract(utterance);
        for inst in extraction.known {
            out.push(SpanEvidence {
                span: self.kb.name(inst).to_string(),
                candidates: vec![Evidence::DataValue { instance: inst, score: 1.0 }],
            });
        }
        for unknown in extraction.unknown {
            // Skip spans that already produced metadata evidence.
            if out.iter().any(|e| unknown.contains(&e.span)) {
                continue;
            }
            if let Ok(res) = self.relaxer.relax(&unknown, None, self.relax_k) {
                let mut candidates = Vec::new();
                for ans in &res.answers {
                    for &inst in &ans.instances {
                        candidates.push(Evidence::DataValue { instance: inst, score: ans.score });
                        if candidates.len() >= self.max_candidates {
                            break;
                        }
                    }
                    if candidates.len() >= self.max_candidates {
                        break;
                    }
                }
                if !candidates.is_empty() {
                    out.push(SpanEvidence { span: unknown, candidates });
                }
            }
        }
        out
    }

    /// Interpretation generation: enumerate selection sets (capped),
    /// connect each in the semantic graph, rank by compactness then score.
    pub fn interpret(&self, utterance: &str) -> Vec<Interpretation> {
        let evidences = self.evidences(utterance);
        if evidences.is_empty() {
            return Vec::new();
        }
        let mut selections: Vec<Vec<(String, Evidence)>> = vec![Vec::new()];
        for ev in &evidences {
            let mut next = Vec::new();
            for sel in &selections {
                for cand in &ev.candidates {
                    if next.len() >= 64 {
                        break;
                    }
                    let mut s = sel.clone();
                    s.push((ev.span.clone(), cand.clone()));
                    next.push(s);
                }
            }
            selections = next;
        }

        let mut interpretations: Vec<Interpretation> = selections
            .into_iter()
            .map(|selection| {
                let (tree, compactness) = self.steiner_tree(&selection);
                let score: f64 = selection
                    .iter()
                    .map(|(_, e)| match e {
                        Evidence::DataValue { score, .. } => *score,
                        _ => 0.0,
                    })
                    .sum();
                Interpretation { selection, tree, compactness, score }
            })
            .collect();
        interpretations.sort_by(|a, b| {
            a.compactness.cmp(&b.compactness).then(b.score.total_cmp(&a.score))
        });
        interpretations
    }

    /// Interpret and execute in one call: try interpretations in rank
    /// order and return the first whose execution yields results, together
    /// with the interpretation used — the system behaviour users actually
    /// see ("the top interpretation with answers wins").
    pub fn answer(&self, utterance: &str) -> Option<(Interpretation, Vec<InstanceId>)> {
        let interps = self.interpret(utterance);
        for interp in interps {
            let results = self.execute(&interp);
            if !results.is_empty() {
                return Some((interp, results));
            }
        }
        None
    }

    /// Execute the top interpretation: for each data value, walk backwards
    /// over data edges whose relationship is in the tree — or
    /// schema-compatible with a tree edge modulo TBox subsumption (the
    /// tree is a schema-level object; the data may use an equally valid
    /// sibling relationship, e.g. `hasFinding` to a `Disease ⊑ Finding`
    /// where the tree chose `forDisease`).
    pub fn execute(&self, interpretation: &Interpretation) -> Vec<InstanceId> {
        let onto = self.kb.ontology();
        let compatible = |r: RelationshipId| -> bool {
            if interpretation.tree.contains(&r) {
                return true;
            }
            let rel = onto.relationship(r);
            interpretation.tree.iter().any(|&t| {
                let te = onto.relationship(t);
                let dom_ok = rel.domain == te.domain
                    || onto.concept_subsumes(te.domain, rel.domain)
                    || onto.concept_subsumes(rel.domain, te.domain);
                let range_ok = rel.range == te.range
                    || onto.concept_subsumes(te.range, rel.range)
                    || onto.concept_subsumes(rel.range, te.range);
                dom_ok && range_ok
            })
        };
        let mut out: HashSet<InstanceId> = HashSet::new();
        for (_, ev) in &interpretation.selection {
            let Evidence::DataValue { instance, .. } = ev else { continue };
            let mut frontier = vec![*instance];
            for _ in 0..interpretation.tree.len().max(1) {
                let mut next = Vec::new();
                for &cur in &frontier {
                    for &(rel, subj) in self.kb.incoming(cur) {
                        if compatible(rel) {
                            next.push(subj);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                out.extend(next.iter().copied());
                frontier = next;
            }
        }
        let mut v: Vec<InstanceId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Metric-closure Steiner tree approximation over the ontology's
    /// semantic graph (concepts = nodes, relationships = undirected unit
    /// edges). Returns the tree's relationships and its edge count.
    fn steiner_tree(&self, selection: &[(String, Evidence)]) -> (Vec<RelationshipId>, usize) {
        let onto = self.kb.ontology();
        // Terminal concepts referenced by the selection.
        let mut terminals: Vec<OntoConceptId> = Vec::new();
        let mut forced_edges: HashSet<RelationshipId> = HashSet::new();
        for (_, ev) in selection {
            match ev {
                Evidence::Concept(c) => terminals.push(*c),
                Evidence::Relationship(r) => {
                    let rel = onto.relationship(*r);
                    terminals.push(rel.domain);
                    terminals.push(rel.range);
                    forced_edges.insert(*r);
                }
                Evidence::DataValue { instance, .. } => {
                    terminals.push(self.kb.concept_of(*instance));
                }
            }
        }
        terminals.sort_unstable();
        terminals.dedup();
        if terminals.len() <= 1 {
            let count = forced_edges.len();
            return (forced_edges.into_iter().collect(), count);
        }

        // BFS shortest paths from each terminal over the semantic graph.
        let paths: Vec<HashMap<OntoConceptId, (OntoConceptId, RelationshipId)>> =
            terminals.iter().map(|&t| self.bfs_parents(t)).collect();

        // Greedy metric-closure MST: connect terminals one by one through
        // their shortest paths to the growing component.
        let mut edges: HashSet<RelationshipId> = forced_edges.clone();
        let mut component: HashSet<OntoConceptId> = HashSet::from([terminals[0]]);
        let mut remaining: Vec<usize> = (1..terminals.len()).collect();
        while !remaining.is_empty() {
            // Pick the remaining terminal with the shortest distance to
            // the component.
            let mut best: Option<(usize, usize, OntoConceptId)> = None; // (idx in remaining, dist, attach point)
            for (ri, &ti) in remaining.iter().enumerate() {
                for &node in component.iter() {
                    if let Some(d) = path_length(&paths[ti], terminals[ti], node) {
                        if best.is_none_or(|(_, bd, _)| d < bd) {
                            best = Some((ri, d, node));
                        }
                    }
                }
            }
            let Some((ri, _, attach)) = best else { break };
            let ti = remaining.remove(ri);
            // Walk the path from `attach` back to terminal ti, collecting
            // edges and adding intermediate concepts to the component.
            let mut cur = attach;
            while cur != terminals[ti] {
                let Some(&(prev, rel)) = paths[ti].get(&cur) else { break };
                edges.insert(rel);
                component.insert(cur);
                cur = prev;
            }
            component.insert(terminals[ti]);
        }
        let count = edges.len();
        let mut v: Vec<RelationshipId> = edges.into_iter().collect();
        v.sort_unstable();
        (v, count)
    }

    /// BFS over the semantic graph from `source`, recording for each
    /// reached concept the predecessor towards the source.
    ///
    /// TBox inheritance applies: a concept participates in every
    /// relationship declared on any of its ancestors (a `Symptom` is a
    /// `Finding`, so `Indication-hasFinding-Finding` connects it too).
    fn bfs_parents(
        &self,
        source: OntoConceptId,
    ) -> HashMap<OntoConceptId, (OntoConceptId, RelationshipId)> {
        let onto = self.kb.ontology();
        let mut parents = HashMap::new();
        let mut seen = HashSet::from([source]);
        let mut queue = VecDeque::from([source]);
        while let Some(c) = queue.pop_front() {
            let mut hosts: Vec<OntoConceptId> = vec![c];
            hosts.extend(
                onto.concepts().filter(|&a| onto.concept_subsumes(a, c)),
            );
            let mut neighbors: Vec<(OntoConceptId, RelationshipId)> = Vec::new();
            for host in hosts {
                for &r in onto.relationships_from(host) {
                    neighbors.push((onto.relationship(r).range, r));
                }
                for &r in onto.relationships_to(host) {
                    neighbors.push((onto.relationship(r).domain, r));
                }
            }
            for (n, r) in neighbors {
                if seen.insert(n) {
                    parents.insert(n, (c, r));
                    queue.push_back(n);
                }
            }
        }
        parents
    }
}

/// Hop count from `node` back to `source` following the BFS parents, if
/// reachable.
fn path_length(
    parents: &HashMap<OntoConceptId, (OntoConceptId, RelationshipId)>,
    source: OntoConceptId,
    node: OntoConceptId,
) -> Option<usize> {
    if node == source {
        return Some(0);
    }
    let mut cur = node;
    let mut len = 0;
    while cur != source {
        let &(prev, _) = parents.get(&cur)?;
        cur = prev;
        len += 1;
        if len > parents.len() {
            return None;
        }
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_core::{ingest, MappingMethod, QueryRelaxer, RelaxConfig};
    use medkb_corpus::MentionCounts;
    use medkb_snomed::figures::paper_fragment;
    use std::collections::HashMap as Map;

    /// Figure-1-shaped KB with the fragment findings and one drug.
    fn engine() -> NlqEngine {
        let f = paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let drug = ob.concept("Drug");
        let indication = ob.concept("Indication");
        let risk = ob.concept("Risk");
        let finding = ob.concept("Finding");
        ob.relationship("treat", drug, indication);
        ob.relationship("cause", drug, risk);
        ob.relationship("hasFinding", indication, finding);
        ob.relationship("hasFinding", risk, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let o = kb.ontology();
        let (dc, ic, rc, fc) = (
            o.lookup_concept("Drug").unwrap(),
            o.lookup_concept("Indication").unwrap(),
            o.lookup_concept("Risk").unwrap(),
            o.lookup_concept("Finding").unwrap(),
        );
        let r_treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let r_cause = kb.ontology().lookup_relationship("Drug-cause-Risk").unwrap();
        let r_ind = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let r_risk = kb.ontology().lookup_relationship("Risk-hasFinding-Finding").unwrap();
        let aspirin = kb.instance("aspirin", dc);
        let ind = kb.instance("renal indication", ic);
        let risk_i = kb.instance("renal risk", rc);
        let kd = kb.instance("kidney disease", fc);
        let nephro = kb.instance("nephropathy", fc);
        kb.triple(aspirin, r_treat, ind);
        kb.triple(aspirin, r_cause, risk_i);
        kb.triple(ind, r_ind, kd);
        kb.triple(risk_i, r_risk, nephro);
        let kb = kb.build().unwrap();

        let counts = MentionCounts::from_direct(Map::new(), Map::new(), 1);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
        NlqEngine::new(kb, QueryRelaxer::new(out, config))
    }

    #[test]
    fn figure9_evidences_for_the_running_example() {
        let e = engine();
        let evs = e.evidences("what are the risks caused by using aspirin with pyelectasia");
        let spans: Vec<&str> = evs.iter().map(|s| s.span.as_str()).collect();
        assert!(spans.contains(&"risks") || spans.contains(&"risk"), "{spans:?}");
        assert!(spans.contains(&"aspirin"), "{spans:?}");
        // pyelectasia is unknown: it must arrive as relaxed data values.
        let pyel = evs.iter().find(|s| s.span.contains("pyelectasia")).expect("relaxed span");
        assert!(matches!(pyel.candidates[0], Evidence::DataValue { .. }));
        let names: Vec<&str> = pyel
            .candidates
            .iter()
            .map(|c| match c {
                Evidence::DataValue { instance, .. } => e.kb.name(*instance),
                _ => "?",
            })
            .collect();
        assert!(
            names.contains(&"kidney disease") || names.contains(&"nephropathy"),
            "{names:?}"
        );
    }

    #[test]
    fn interpretations_ranked_by_compactness() {
        let e = engine();
        let interps = e.interpret("risks caused by aspirin with pyelectasia");
        assert!(!interps.is_empty());
        for w in interps.windows(2) {
            assert!(
                w[0].compactness < w[1].compactness
                    || (w[0].compactness == w[1].compactness && w[0].score >= w[1].score)
            );
        }
    }

    #[test]
    fn execute_reaches_the_drug() {
        let e = engine();
        let interps = e.interpret("which drug treats kidney disease");
        let top = &interps[0];
        let results = e.execute(top);
        let names: Vec<&str> = results.iter().map(|&i| e.kb.name(i)).collect();
        assert!(names.contains(&"aspirin"), "{names:?}");
    }

    #[test]
    fn answer_falls_back_across_interpretations() {
        let e = engine();
        let (interp, results) = e.answer("which drug treats kidney disease").expect("answerable");
        assert!(!results.is_empty());
        assert!(!interp.tree.is_empty());
        // Unanswerable input yields None rather than an empty success.
        assert!(e.answer("").is_none());
    }

    #[test]
    fn relationship_evidence_recognized() {
        let e = engine();
        let evs = e.evidences("what does aspirin treat");
        assert!(evs.iter().any(|s| matches!(s.candidates[0], Evidence::Relationship(_))));
    }

    #[test]
    fn empty_utterance_yields_nothing() {
        let e = engine();
        assert!(e.interpret("").is_empty());
        assert!(e.evidences("the of with").is_empty());
    }

    #[test]
    fn steiner_tree_connects_concept_pairs() {
        let e = engine();
        // Drug and Finding are 2 hops apart (via Indication or Risk).
        let interps = e.interpret("drug finding");
        assert!(!interps.is_empty());
        assert!(interps[0].compactness >= 2, "{:?}", interps[0]);
    }
}
