//! The conversational system (§6.1): Watson-Assistant-style dialogue over
//! the medical KB, with query relaxation integrated for conversation
//! repair (Scenario 1, Figure 7) and concept expansion (Scenario 2,
//! Figure 8).

use medkb_core::{Feedback, FeedbackStore, QueryRelaxer};
use medkb_kb::Kb;
use medkb_types::{ContextId, InstanceId};

use crate::extract::EntityExtractor;
use crate::intent::IntentClassifier;

/// A reply from the conversational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A direct answer for a known entity in a recognized context.
    Answer {
        /// The context the answer was computed in.
        context: ContextId,
        /// The entity the user asked about.
        entity: InstanceId,
        /// Answer instances (e.g. drugs).
        results: Vec<InstanceId>,
        /// Related concepts offered for exploration (Scenario 2); empty
        /// when relaxation is disabled.
        expansions: Vec<(InstanceId, f64)>,
        /// Rendered reply.
        text: String,
    },
    /// Conversation repair: the term was unknown, relaxation found
    /// semantically related KB entries (Scenario 1).
    Repair {
        /// The unknown term.
        unknown_term: String,
        /// Suggested related instances with scores, best first.
        suggestions: Vec<(InstanceId, f64)>,
        /// Rendered reply.
        text: String,
    },
    /// A yes/no verification answer ("does aspirin treat fever?").
    Verification {
        /// The subject entity (e.g. the drug).
        subject: InstanceId,
        /// The object entity (e.g. the finding).
        object: InstanceId,
        /// Whether the KB supports the claim in the recognized context.
        holds: bool,
        /// Rendered reply.
        text: String,
    },
    /// The system could not make sense of the utterance.
    DontUnderstand {
        /// Rendered reply.
        text: String,
    },
}

impl Response {
    /// The rendered reply text.
    pub fn text(&self) -> &str {
        match self {
            Response::Answer { text, .. }
            | Response::Repair { text, .. }
            | Response::Verification { text, .. }
            | Response::DontUnderstand { text } => text,
        }
    }
}

/// Dialogue state carried across turns (§4, "Context management").
#[derive(Debug, Clone, Default)]
struct DialogueState {
    context: Option<ContextId>,
    last_entity: Option<InstanceId>,
    /// An unresolved repair offer awaiting confirmation (Figure 7's
    /// "did you mean …" turn).
    pending_repair: Option<PendingRepair>,
}

/// A repair offer the user has not yet confirmed or declined.
#[derive(Debug, Clone)]
struct PendingRepair {
    context: Option<ContextId>,
    /// The external concept the unknown term resolved to.
    query_concept: medkb_types::ExtConceptId,
    suggestions: Vec<(InstanceId, f64)>,
}

/// The conversational engine.
pub struct ConversationEngine {
    kb: Kb,
    relaxer: QueryRelaxer,
    classifier: IntentClassifier,
    extractor: EntityExtractor,
    state: DialogueState,
    /// Accumulated relevance feedback (§7.2's proposed extension): repair
    /// confirmations and declines progressively improve future rankings.
    pub feedback: FeedbackStore,
    /// Disable to obtain the Table 3 "no QR" system.
    pub use_relaxation: bool,
    /// How many relaxed results to request.
    pub k: usize,
    /// Below this intent confidence the previous turn's context is kept.
    pub confidence_floor: f64,
}

impl ConversationEngine {
    /// Assemble an engine. The classifier should be trained on the §4
    /// bootstrap queries; the extractor on the same KB.
    pub fn new(
        kb: Kb,
        relaxer: QueryRelaxer,
        classifier: IntentClassifier,
        extractor: EntityExtractor,
    ) -> Self {
        Self {
            kb,
            relaxer,
            classifier,
            extractor,
            state: DialogueState::default(),
            feedback: FeedbackStore::new(),
            use_relaxation: true,
            k: 7,
            confidence_floor: 0.35,
        }
    }

    /// Reset the dialogue state (a new conversation).
    pub fn reset(&mut self) {
        self.state = DialogueState::default();
    }

    /// The KB the engine answers from.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// Handle one user utterance.
    pub fn handle(&mut self, utterance: &str) -> Response {
        // 0. A pending repair offer: "yes"/"the first one" confirms it,
        //    "no"/"none" declines it (and teaches the feedback store);
        //    anything else falls through to normal handling.
        if let Some(response) = self.resolve_pending_repair(utterance) {
            return response;
        }

        // 1. Context: classifier opinion, falling back to the dialogue
        //    state on low confidence ("what about fever?").
        let classified = self.classifier.classify(utterance);
        let context = match classified {
            Some((ctx, conf)) if conf >= self.confidence_floor => Some(ctx),
            _ => self.state.context.or(classified.map(|(c, _)| c)),
        };

        // 2. Entities.
        let extraction = self.extractor.extract(utterance);

        // Verification questions mention two known entities under a
        // polar-question lead ("does aspirin treat fever?").
        if extraction.known.len() >= 2 {
            let lead = medkb_text::tokenize(utterance)
                .first()
                .map(|t| ["does", "do", "is", "are", "can", "will"].contains(&t.as_str()))
                .unwrap_or(false);
            if lead {
                if let Some(context) = context {
                    return self.verify(context, extraction.known[0], extraction.known[1]);
                }
            }
        }

        let entity = extraction.known.first().copied().or({
            // Follow-up without an entity: reuse the last one.
            if extraction.unknown.is_empty() {
                self.state.last_entity
            } else {
                None
            }
        });

        if let Some(entity) = entity {
            let Some(context) = context else {
                return self.dont_understand();
            };
            self.state.context = Some(context);
            self.state.last_entity = Some(entity);
            let results = self.answer(context, entity);
            let expansions = if self.use_relaxation {
                self.expansions(context, entity)
            } else {
                Vec::new()
            };
            let text = self.render_answer(entity, &results, &expansions);
            return Response::Answer { context, entity, results, expansions, text };
        }

        if let Some(unknown) = extraction.unknown.first() {
            if !self.use_relaxation {
                return self.dont_understand();
            }
            // Scenario 1: repair through relaxation.
            match self.relaxer.relax(unknown, context, self.k) {
                Ok(res) => {
                    let mut suggestions: Vec<(InstanceId, f64)> = Vec::new();
                    // When the approximate matcher resolved the term to a
                    // flagged concept, its own instances are the best
                    // repair suggestions ("did you mean …").
                    for &inst in self.relaxer.ingested().instances(res.query_concept) {
                        suggestions.push((inst, 1.0));
                    }
                    for ans in &res.answers {
                        for &inst in &ans.instances {
                            suggestions.push((inst, ans.score));
                        }
                    }
                    if suggestions.is_empty() {
                        return self.dont_understand();
                    }
                    self.state.context = context;
                    self.state.pending_repair = Some(PendingRepair {
                        context,
                        query_concept: res.query_concept,
                        suggestions: suggestions.clone(),
                    });
                    let names: Vec<&str> =
                        suggestions.iter().take(5).map(|&(i, _)| self.kb.name(i)).collect();
                    let text = format!(
                        "I couldn't find \"{unknown}\". Closest matches in the knowledge \
                         base: {}. Did you mean \"{}\"?",
                        names.join(", "),
                        self.kb.name(suggestions[0].0)
                    );
                    return Response::Repair { unknown_term: unknown.clone(), suggestions, text };
                }
                Err(_) => return self.dont_understand(),
            }
        }

        self.dont_understand()
    }

    /// Answer a `[context, entity]` pair by walking the KB: subjects of the
    /// context relationship, extended one hop towards drug-like subjects
    /// when the context's domain is itself the range of another
    /// relationship (Drug → Indication → Finding).
    ///
    /// Intent classifiers confuse sibling contexts of the same semantic
    /// family ("Disease-hasSymptom-Symptom" vs
    /// "Indication-hasFinding-Finding"), so when the classified context's
    /// relationship has no triples at the entity, the engine falls back to
    /// an incoming relationship whose context shares the classified
    /// context's tag.
    fn answer(&self, context: ContextId, entity: InstanceId) -> Vec<InstanceId> {
        let onto = self.kb.ontology();
        let ingested = self.relaxer.ingested();
        let find_spec = |id: ContextId| ingested.contexts.iter().find(|c| c.id == id);
        let spec = find_spec(context).expect("context ids come from the same ingestion");
        let mut direct = self.kb.subjects(entity, spec.relationship);
        let mut spec = spec;
        if direct.is_empty() {
            let wanted_tag = ingested.tag(context);
            let incoming_rels: std::collections::HashSet<_> =
                self.kb.incoming(entity).iter().map(|&(r, _)| r).collect();
            let fallback = ingested
                .contexts
                .iter()
                .filter(|c| incoming_rels.contains(&c.relationship))
                .find(|c| ingested.tag(c.id) == wanted_tag)
                .or_else(|| {
                    ingested
                        .contexts
                        .iter()
                        .find(|c| incoming_rels.contains(&c.relationship))
                });
            if let Some(fb) = fallback {
                spec = fb;
                direct = self.kb.subjects(entity, fb.relationship);
            }
        }
        if direct.is_empty() {
            return direct;
        }
        // Extend towards the subjects' owners when available.
        let owner_rels = onto.relationships_to(spec.domain);
        if owner_rels.is_empty() {
            return direct;
        }
        let mut extended = Vec::new();
        for &mid in &direct {
            for &rel in owner_rels {
                extended.extend(self.kb.subjects(mid, rel));
            }
        }
        extended.sort_unstable();
        extended.dedup();
        if extended.is_empty() {
            direct
        } else {
            extended
        }
    }

    /// Scenario 2 expansions: relaxed concepts related to a known entity.
    ///
    /// A known KB instance already has its external concept from
    /// ingestion's mapping table, so relaxation starts there rather than
    /// re-resolving the (possibly typo'd) instance name.
    fn expansions(&self, context: ContextId, entity: InstanceId) -> Vec<(InstanceId, f64)> {
        let relaxed = match self.relaxer.ingested().mappings.get(entity) {
            Some(concept) => self.relaxer.relax_concept_with_feedback(
                concept,
                Some(context),
                self.k,
                Some(&self.feedback),
            ),
            None => self.relaxer.relax(self.kb.name(entity), Some(context), self.k),
        };
        match relaxed {
            Ok(res) => {
                let mut out = Vec::new();
                for ans in &res.answers {
                    for &inst in &ans.instances {
                        if inst != entity {
                            out.push((inst, ans.score));
                        }
                    }
                }
                out
            }
            Err(_) => Vec::new(),
        }
    }

    fn render_answer(
        &self,
        entity: InstanceId,
        results: &[InstanceId],
        expansions: &[(InstanceId, f64)],
    ) -> String {
        let mut text = if results.is_empty() {
            format!("I found no entries for \"{}\".", self.kb.name(entity))
        } else {
            let names: Vec<&str> = results.iter().take(5).map(|&i| self.kb.name(i)).collect();
            format!("For \"{}\": {}.", self.kb.name(entity), names.join(", "))
        };
        if !expansions.is_empty() {
            let names: Vec<&str> =
                expansions.iter().take(5).map(|&(i, _)| self.kb.name(i)).collect();
            text.push_str(&format!(" Related topics you can explore: {}.", names.join(", ")));
        }
        text
    }

    /// Answer a polar question: does `subject` relate to `object` in the
    /// classified context (in either mention order)?
    fn verify(&mut self, context: ContextId, first: InstanceId, second: InstanceId) -> Response {
        let holds = self.answer(context, second).contains(&first)
            || self.answer(context, first).contains(&second);
        let (subject, object) = (first, second);
        self.state.context = Some(context);
        self.state.last_entity = Some(object);
        let label = self
            .relaxer
            .ingested()
            .contexts
            .iter()
            .find(|c| c.id == context)
            .map(|c| c.label.clone())
            .unwrap_or_default();
        let text = if holds {
            format!(
                "Yes — the knowledge base links \"{}\" and \"{}\" ({label}).",
                self.kb.name(subject),
                self.kb.name(object)
            )
        } else {
            format!(
                "I find no record linking \"{}\" and \"{}\" in that sense.",
                self.kb.name(subject),
                self.kb.name(object)
            )
        };
        Response::Verification { subject, object, holds, text }
    }

    fn dont_understand(&self) -> Response {
        Response::DontUnderstand { text: "I'm sorry, I don't understand.".to_string() }
    }

    /// Confirmation handling for a pending repair offer.
    fn resolve_pending_repair(&mut self, utterance: &str) -> Option<Response> {
        let pending = self.state.pending_repair.clone()?;
        let tokens = medkb_text::tokenize(utterance);
        let affirm = ["yes", "yeah", "sure", "ok", "okay", "first"];
        let decline = ["no", "none", "neither", "nope"];
        let is_affirm = !tokens.is_empty() && tokens.iter().all(|t| affirm.contains(&t.as_str()));
        let is_decline =
            !tokens.is_empty() && tokens.iter().all(|t| decline.contains(&t.as_str()));
        if !is_affirm && !is_decline {
            // Picking a suggestion by name also counts as acceptance.
            if let Some(&chosen) = self.extractor.extract(utterance).known.first() {
                if pending.suggestions.iter().any(|&(i, _)| i == chosen) {
                    self.state.pending_repair = None;
                    self.learn(&pending, chosen, Feedback::Accept);
                    return Some(self.answer_pending(&pending, chosen));
                }
            }
            // Unrelated utterance: drop the offer silently.
            self.state.pending_repair = None;
            return None;
        }
        self.state.pending_repair = None;
        if is_decline {
            for &(inst, _) in pending.suggestions.iter().take(3) {
                self.learn(&pending, inst, Feedback::Reject);
            }
            return Some(Response::DontUnderstand {
                text: "Understood — could you rephrase the condition?".to_string(),
            });
        }
        let chosen = pending.suggestions[0].0;
        self.learn(&pending, chosen, Feedback::Accept);
        Some(self.answer_pending(&pending, chosen))
    }

    /// Answer for a confirmed repair suggestion, keeping the dialogue state
    /// consistent.
    fn answer_pending(&mut self, pending: &PendingRepair, chosen: InstanceId) -> Response {
        let context = pending
            .context
            .or(self.state.context)
            .unwrap_or_else(|| self.relaxer.ingested().contexts[0].id);
        self.state.context = Some(context);
        self.state.last_entity = Some(chosen);
        let results = self.answer(context, chosen);
        let expansions =
            if self.use_relaxation { self.expansions(context, chosen) } else { Vec::new() };
        let text = self.render_answer(chosen, &results, &expansions);
        Response::Answer { context, entity: chosen, results, expansions, text }
    }

    /// Fold a confirmation/decline into the feedback store, keyed by the
    /// concept the unknown query term resolved to.
    fn learn(&mut self, pending: &PendingRepair, inst: InstanceId, signal: Feedback) {
        let ingested = self.relaxer.ingested();
        let Some(candidate) = ingested.mappings.get(inst) else { return };
        let Some(ctx) = pending.context.or(self.state.context) else { return };
        let tag = ingested.tag(ctx);
        self.feedback.record(&ingested.ekg, pending.query_concept, candidate, tag, signal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainset::generate_training_queries;
    use medkb_core::{ingest, MappingMethod, RelaxConfig};
    use medkb_corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
    use medkb_snomed::{MedWorld, WorldConfig};

    fn engine() -> ConversationEngine {
        let world = MedWorld::generate(&WorldConfig::tiny(91));
        let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
            .generate(&CorpusConfig::tiny(92));
        let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config)
            .unwrap();
        let relaxer = QueryRelaxer::new(out, config);
        let queries =
            generate_training_queries(&world.kb, &world.contexts, |c| world.tag_of(c), 6, 93);
        let classifier = IntentClassifier::train(&queries);
        let extractor = EntityExtractor::build(&world.kb);
        ConversationEngine::new(world.kb.clone(), relaxer, classifier, extractor)
    }

    /// A finding instance that participates in a treat triple and whose
    /// name the (exact) mapper resolved during ingestion — the normal
    /// "known term" situation of Scenario 2.
    fn treated_finding(e: &ConversationEngine) -> InstanceId {
        let rel = e
            .kb
            .ontology()
            .lookup_relationship("Indication-hasFinding-Finding")
            .unwrap();
        e.kb.instances()
            .map(|(id, _)| id)
            .find(|id| {
                !e.kb.subjects(*id, rel).is_empty()
                    && e.relaxer.ingested().mappings.contains_key(*id)
            })
            .expect("world has mapped treated findings")
    }

    #[test]
    fn known_entity_gets_answer_with_expansions() {
        let mut e = engine();
        let f = treated_finding(&e);
        let q = format!("what drugs treat {}", e.kb.name(f));
        match e.handle(&q) {
            Response::Answer { results, expansions, entity, .. } => {
                assert_eq!(entity, f);
                assert!(!results.is_empty(), "treated finding must have drug answers");
                assert!(!expansions.is_empty(), "scenario 2 expansions expected");
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn unknown_term_triggers_repair() {
        let mut e = engine();
        match e.handle("what drugs treat zeppelinosis") {
            Response::Repair { unknown_term, suggestions, .. } => {
                assert_eq!(unknown_term, "zeppelinosis");
                // Unknown term is unmappable under exact mapping → the
                // relaxer errors → handled below.
                assert!(!suggestions.is_empty());
            }
            // Under exact mapping an unmappable term cannot be relaxed:
            // "I don't understand" is the correct no-QR-able outcome.
            Response::DontUnderstand { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_terminology_term_relaxes_to_suggestions() {
        let mut e = engine();
        // Pick a terminology finding with no KB instance: exact lookup in
        // the EKS succeeds, but the KB has nothing — the Scenario 1 case.
        let world_unmapped = {
            let ekg = &e.relaxer.ingested().ekg;
            let flagged = &e.relaxer.ingested().flagged;
            ekg.concepts()
                .find(|c| {
                    !flagged.contains(c)
                        && ekg.depth(*c) >= 3
                        && ekg.neighborhood(*c, 4).iter().any(|(n, _)| flagged.contains(n))
                        // The name must not embed a KB instance name as a
                        // sub-phrase, or the extractor resolves it as known.
                        && e.extractor.extract(ekg.name(*c)).known.is_empty()
                })
                .expect("unflagged concept near flagged ones exists")
        };
        let name = e.relaxer.ingested().ekg.name(world_unmapped).to_string();
        match e.handle(&format!("what drugs treat {name}")) {
            Response::Repair { suggestions, .. } => {
                assert!(!suggestions.is_empty());
            }
            other => panic!("expected repair for {name}, got {other:?}"),
        }
    }

    #[test]
    fn no_qr_system_fails_on_unknown_terms() {
        let mut e = engine();
        e.use_relaxation = false;
        let ekg_name = {
            let ekg = &e.relaxer.ingested().ekg;
            let flagged = &e.relaxer.ingested().flagged;
            let c = ekg.concepts().find(|c| !flagged.contains(c) && ekg.depth(*c) >= 3).unwrap();
            ekg.name(c).to_string()
        };
        match e.handle(&format!("what drugs treat {ekg_name}")) {
            Response::DontUnderstand { .. } => {}
            other => panic!("no-QR system should not understand, got {other:?}"),
        }
    }

    #[test]
    fn followup_inherits_context_and_entity_switch() {
        let mut e = engine();
        let f = treated_finding(&e);
        let first = format!("what drugs treat {}", e.kb.name(f));
        let r1 = e.handle(&first);
        let ctx1 = match r1 {
            Response::Answer { context, .. } => context,
            other => panic!("{other:?}"),
        };
        // Another treated finding for the follow-up.
        let rel = e
            .kb
            .ontology()
            .lookup_relationship("Indication-hasFinding-Finding")
            .unwrap();
        let f2 = e
            .kb
            .instances()
            .map(|(id, _)| id)
            .find(|&id| id != f && !e.kb.subjects(id, rel).is_empty());
        if let Some(f2) = f2 {
            let follow = format!("what about {}", e.kb.name(f2));
            match e.handle(&follow) {
                Response::Answer { context, entity, .. } => {
                    assert_eq!(context, ctx1, "context must carry over");
                    assert_eq!(entity, f2);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn repair_confirmation_yes_answers_with_top_suggestion() {
        let mut e = engine();
        let name = unknown_term_name(&e);
        let repair = e.handle(&format!("what drugs treat {name}"));
        let top = match repair {
            Response::Repair { suggestions, .. } => suggestions[0].0,
            other => panic!("expected repair, got {other:?}"),
        };
        match e.handle("yes") {
            Response::Answer { entity, .. } => assert_eq!(entity, top),
            other => panic!("expected answer after confirmation, got {other:?}"),
        }
        assert!(!e.feedback.is_empty(), "confirmation must teach the feedback store");
    }

    #[test]
    fn repair_decline_records_rejection() {
        let mut e = engine();
        let name = unknown_term_name(&e);
        match e.handle(&format!("what drugs treat {name}")) {
            Response::Repair { .. } => {}
            other => panic!("expected repair, got {other:?}"),
        }
        match e.handle("no") {
            Response::DontUnderstand { text } => assert!(text.contains("rephrase")),
            other => panic!("expected rephrase prompt, got {other:?}"),
        }
        assert!(!e.feedback.is_empty());
    }

    #[test]
    fn repair_resolved_by_naming_a_suggestion() {
        let mut e = engine();
        let name = unknown_term_name(&e);
        let suggestions = match e.handle(&format!("what drugs treat {name}")) {
            Response::Repair { suggestions, .. } => suggestions,
            other => panic!("expected repair, got {other:?}"),
        };
        let pick = suggestions[suggestions.len().min(2) - 1].0;
        let pick_name = e.kb.name(pick).to_string();
        match e.handle(&pick_name) {
            Response::Answer { entity, .. } => assert_eq!(entity, pick),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    /// A terminology name unknown to the KB that relaxes to suggestions.
    fn unknown_term_name(e: &ConversationEngine) -> String {
        let ekg = &e.relaxer.ingested().ekg;
        let flagged = &e.relaxer.ingested().flagged;
        ekg.concepts()
            .find(|c| {
                !flagged.contains(c)
                    && ekg.depth(*c) >= 3
                    && ekg.neighborhood(*c, 4).iter().any(|(n, _)| flagged.contains(n))
                    && e.extractor.extract(ekg.name(*c)).known.is_empty()
            })
            .map(|c| ekg.name(c).to_string())
            .expect("suitable unknown term exists")
    }

    #[test]
    fn verification_question_answers_yes_and_no() {
        let mut e = engine();
        let rel = e
            .kb
            .ontology()
            .lookup_relationship("Indication-hasFinding-Finding")
            .unwrap();
        let r_treat = e.kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        // A (drug, finding) pair connected through an indication.
        let (drug, finding) = e
            .kb
            .instances()
            .map(|(id, _)| id)
            .find_map(|f| {
                let inds = e.kb.subjects(f, rel);
                let drugs: Vec<_> =
                    inds.iter().flat_map(|&i| e.kb.subjects(i, r_treat)).collect();
                drugs.first().map(|&d| (d, f))
            })
            .expect("a connected pair exists");
        let q = format!("does {} treat {}", e.kb.name(drug), e.kb.name(finding));
        match e.handle(&q) {
            Response::Verification { holds, .. } => assert!(holds, "{q}"),
            other => panic!("expected verification, got {other:?}"),
        }
        // An unconnected pair answers no.
        let other_drug = e
            .kb
            .instances()
            .map(|(id, _)| id)
            .find(|&d| {
                d != drug
                    && e.kb.concept_of(d) == e.kb.concept_of(drug)
                    && !e
                        .kb
                        .subjects(finding, rel)
                        .iter()
                        .flat_map(|&i| e.kb.subjects(i, r_treat))
                        .any(|x| x == d)
            });
        if let Some(od) = other_drug {
            let q = format!("does {} treat {}", e.kb.name(od), e.kb.name(finding));
            match e.handle(&q) {
                Response::Verification { holds, .. } => assert!(!holds, "{q}"),
                other => panic!("expected verification, got {other:?}"),
            }
        }
    }

    #[test]
    fn gibberish_is_not_understood() {
        let mut e = engine();
        match e.handle("?!") {
            Response::DontUnderstand { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut e = engine();
        let f = treated_finding(&e);
        let _ = e.handle(&format!("what drugs treat {}", e.kb.name(f)));
        e.reset();
        // A bare follow-up now has neither context nor entity.
        match e.handle("what about") {
            Response::DontUnderstand { .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
