//! Determinism pins for the staged parallel ingestion pipeline.
//!
//! The optimization contract of DESIGN.md §9 is that the staged pipeline
//! (`ingest`) and the sharded mention counter (`count_with_threads`) are
//! bit-identical to the preserved sequential references (`ingest_reference`,
//! `count_reference`) for *every* thread count — the shard boundaries move,
//! the outputs never do. These tests pin that over randomized worlds.
//! `clamp_to_cores` is off so the multi-way sharded code paths genuinely
//! run even on single-core hosts.

use medkb_core::{
    ingest, ingest_reference, MappingMethod, ParallelConfig, RelaxConfig,
};
use medkb_corpus::{Corpus, CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_snomed::{MedWorld, WorldConfig};
use proptest::prelude::*;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn world_and_corpus(seed: u64) -> (MedWorld, Corpus) {
    let world = MedWorld::generate(&WorldConfig::tiny(seed));
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
        .generate(&CorpusConfig::tiny(seed.wrapping_mul(3) ^ 0x9E37));
    (world, corpus)
}

fn check_world(world: &MedWorld, corpus: &Corpus, mapping: MappingMethod) {
    let ekg = &world.terminology.ekg;
    let reference_counts = MentionCounts::count_reference(corpus, ekg);
    let base = RelaxConfig { mapping, ..RelaxConfig::default() };
    let reference = ingest_reference(&world.kb, ekg.clone(), &reference_counts, None, &base)
        .expect("reference ingest");

    for threads in THREAD_SWEEP {
        let counts = MentionCounts::count_with_threads(corpus, ekg, threads);
        assert_eq!(counts, reference_counts, "counts diverged at {threads} threads");

        let cfg = RelaxConfig {
            parallel: ParallelConfig {
                clamp_to_cores: false,
                ..ParallelConfig::with_threads(threads)
            },
            ..base.clone()
        };
        let out = ingest(&world.kb, ekg.clone(), &counts, None, &cfg).expect("staged ingest");
        assert_eq!(out.mappings, reference.mappings, "mappings diverged at {threads} threads");
        assert_eq!(out.flagged, reference.flagged, "flagged diverged at {threads} threads");
        assert_eq!(
            out.shortcuts_added, reference.shortcuts_added,
            "shortcut count diverged at {threads} threads"
        );
        assert_eq!(out.freqs, reference.freqs, "frequencies diverged at {threads} threads");
        assert_eq!(
            out.ekg.shortcut_count(),
            reference.ekg.shortcut_count(),
            "customized graph diverged at {threads} threads"
        );
    }
}

proptest! {
    // World generation dominates the cost, so a handful of random worlds
    // with the full 1/2/4/8 sweep each gives broad coverage cheaply.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn prop_parallel_ingest_matches_reference(seed in 0u64..10_000) {
        let (world, corpus) = world_and_corpus(seed);
        check_world(&world, &corpus, MappingMethod::Exact);
    }
}

/// Edit-distance mapping exercises the candidate prefilter inside the
/// sharded mapping stage (typo'd instance names map through the DP).
#[test]
fn parallel_ingest_matches_reference_with_edit_mapping() {
    let (world, corpus) = world_and_corpus(417);
    check_world(&world, &corpus, MappingMethod::edit_tau2());
}
