//! Property tests of the core method's invariants over random taxonomies
//! and random corpus counts.

use std::collections::HashMap;

use medkb_core::{FrequencyMode, Frequencies, QrScorer, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_ekg::{Ekg, EkgBuilder};
use medkb_snomed::oracle::N_TAGS;
use medkb_snomed::ContextTag;
use medkb_types::{ExtConceptId, Id};
use proptest::prelude::*;

/// Random rooted DAG (node 0 root; node i+1 picks parents among 0..=i)
/// plus random direct counts per node for two context tags.
fn world_strategy() -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<(u64, u64)>)> {
    proptest::collection::vec(
        proptest::collection::vec(any::<proptest::sample::Index>(), 1..3),
        1..24,
    )
    .prop_flat_map(|raw| {
        let n = raw.len() + 1;
        let parents: Vec<Vec<usize>> = raw
            .into_iter()
            .enumerate()
            .map(|(i, picks)| {
                let mut p: Vec<usize> = picks.into_iter().map(|x| x.index(i + 1)).collect();
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        (
            Just(parents),
            proptest::collection::vec((0u64..200, 0u64..200), n..=n),
        )
    })
}

fn build(parents: &[Vec<usize>], counts: &[(u64, u64)]) -> (Ekg, MentionCounts) {
    let mut b = EkgBuilder::new();
    let mut ids = vec![b.concept("n0")];
    for (i, ps) in parents.iter().enumerate() {
        let c = b.concept(&format!("n{}", i + 1));
        for &p in ps {
            b.is_a(c, ids[p]);
        }
        ids.push(c);
    }
    let ekg = b.build().expect("valid by construction");
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    let mut doc_freq = HashMap::new();
    for (i, &(t, r)) in counts.iter().enumerate() {
        let mut row = [0u64; N_TAGS];
        row[ContextTag::Treatment.index()] = t;
        row[ContextTag::Risk.index()] = r;
        let id = ExtConceptId::from_usize(i);
        direct.insert(id, row);
        doc_freq.insert(id, 1 + (t / 40) as u32);
    }
    (ekg, MentionCounts::from_direct(direct, doc_freq, 100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_rollup_root_is_one_and_monotone((parents, counts) in world_strategy()) {
        let (ekg, mentions) = build(&parents, &counts);
        for mode in [FrequencyMode::PaperRecursive, FrequencyMode::DescendantSet] {
            let freqs = Frequencies::compute(&ekg, &mentions, mode, false);
            for tag in [ContextTag::Treatment, ContextTag::Risk] {
                let total_direct: u64 = counts
                    .iter()
                    .map(|&(t, r)| if tag == ContextTag::Treatment { t } else { r })
                    .sum();
                if total_direct > 0 {
                    prop_assert!((freqs.freq(ekg.root(), tag) - 1.0).abs() < 1e-12);
                }
                for c in ekg.concepts() {
                    let f = freqs.freq(c, tag);
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "{f}");
                    for p in ekg.native_parents(c) {
                        prop_assert!(freqs.freq(p, tag) + 1e-12 >= f);
                    }
                }
            }
        }
    }

    #[test]
    fn prop_descendant_set_root_equals_direct_sum((parents, counts) in world_strategy()) {
        let (ekg, mentions) = build(&parents, &counts);
        let freqs =
            Frequencies::compute(&ekg, &mentions, FrequencyMode::DescendantSet, false);
        let tag = ContextTag::Treatment;
        let total_direct: u64 = counts.iter().map(|&(t, _)| t).sum();
        // Exact semantics: each mention counted once at the root.
        prop_assert!((freqs.total(tag) - total_direct as f64).abs() < 1e-6);
        // The paper-literal recursion can only over-count.
        let rec = Frequencies::compute(&ekg, &mentions, FrequencyMode::PaperRecursive, false);
        prop_assert!(rec.total(tag) + 1e-9 >= freqs.total(tag));
    }

    #[test]
    fn prop_eq5_scores_bounded_and_reflexive((parents, counts) in world_strategy()) {
        let (ekg, mentions) = build(&parents, &counts);
        let freqs =
            Frequencies::compute(&ekg, &mentions, FrequencyMode::PaperRecursive, true);
        let config = RelaxConfig::default();
        let scorer = QrScorer::new(&ekg, &freqs, &config);
        let nodes: Vec<ExtConceptId> = ekg.concepts().collect();
        for &a in nodes.iter().step_by(3) {
            let self_score = scorer.score(a, a, Some(ContextTag::Treatment));
            prop_assert!((self_score - 1.0).abs() < 1e-12, "sim(a,a) = {self_score}");
            for &b in nodes.iter().step_by(4) {
                for tag in [Some(ContextTag::Treatment), Some(ContextTag::Risk), None] {
                    let s = scorer.score(a, b, tag);
                    prop_assert!((0.0..=1.0).contains(&s), "{s}");
                }
            }
        }
    }

    #[test]
    fn prop_intrinsic_ic_monotone_down((parents, counts) in world_strategy()) {
        let (ekg, mentions) = build(&parents, &counts);
        let freqs =
            Frequencies::compute(&ekg, &mentions, FrequencyMode::PaperRecursive, false);
        for c in ekg.concepts() {
            let ic = freqs.intrinsic_ic(c);
            prop_assert!((0.0..=1.0).contains(&ic));
            for p in ekg.native_parents(c) {
                prop_assert!(freqs.intrinsic_ic(p) <= ic + 1e-12,
                    "parent must be at most as informative");
            }
        }
    }
}
