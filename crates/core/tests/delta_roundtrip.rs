//! Property: a delta followed by its engine-returned inverse restores the
//! derived [`IngestOutput`] bit-identically (`medkb_core::delta` docs).
//!
//! Ops are drawn from the invertible families (documents, synonyms, edges,
//! instances — `AddConcept` is the documented non-invertible exception and
//! is excluded); each is constructed valid against the engine's current
//! state, so the property never trips over rejected deltas. A second
//! engine applies the whole sequence as one batch delta, pinning the
//! equivalence of batched and one-at-a-time application along the way.

use medkb_core::{
    outputs_identical, Delta, DeltaEngine, DeltaOp, IngestOutput, MappingMethod, RelaxConfig,
};
use medkb_corpus::{CorpusConfig, CorpusGenerator};
use medkb_snomed::{ContextTag, MedWorld, WorldConfig};
use medkb_types::{ExtConceptId, Id, InstanceId};
use proptest::prelude::*;

fn engine() -> DeltaEngine {
    let world = MedWorld::generate(&WorldConfig::tiny(71));
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
        .generate(&CorpusConfig::tiny(72));
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    DeltaEngine::new(world.kb, corpus, world.terminology.ekg, None, config).unwrap()
}

fn add_document(e: &DeltaEngine, a: u64, b: u64) -> DeltaOp {
    let ekg = e.native_ekg();
    let n = ekg.len() as u64;
    let name = |x: u64| ekg.name(ExtConceptId::from_usize((x % n) as usize)).to_string();
    DeltaOp::AddDocument {
        sentences: vec![(
            ContextTag::ALL[(a % ContextTag::ALL.len() as u64) as usize],
            vec!["patients with".to_string(), name(a), "show".to_string(), name(b)],
        )],
    }
}

/// Turn one generated `(kind, a, b)` triple into an op that is valid
/// against the engine's current inputs; falls back to a document append
/// (always valid) when the kind has no live target.
fn valid_op(e: &DeltaEngine, kind: u8, a: u64, b: u64) -> DeltaOp {
    let ekg = e.native_ekg();
    let n = ekg.len();
    match kind {
        1 if !e.corpus().is_empty() => {
            DeltaOp::RemoveDocument { index: (a % e.corpus().len() as u64) as usize }
        }
        2 => DeltaOp::AddSynonym {
            concept: ExtConceptId::from_usize((a % n as u64) as usize),
            synonym: format!("delta synonym {a} {b}"),
        },
        3 => {
            let with_syns: Vec<ExtConceptId> =
                ekg.concepts().filter(|&c| ekg.synonyms(c).next().is_some()).collect();
            if with_syns.is_empty() {
                return add_document(e, a, b);
            }
            let c = with_syns[(a % with_syns.len() as u64) as usize];
            let count = ekg.synonyms(c).count();
            DeltaOp::RemoveSynonym { concept: c, index: (b % count as u64) as usize }
        }
        4 => {
            for probe in 0..20u64 {
                let child = ExtConceptId::from_usize(((a + probe) % n as u64) as usize);
                let parent = ExtConceptId::from_usize(((b + 3 * probe) % n as u64) as usize);
                if child != ekg.root()
                    && child != parent
                    && !ekg.parents(child).iter().any(|edge| edge.to == parent)
                    && !ekg.is_ancestor(child, parent)
                {
                    return DeltaOp::AddIsA { child, parent };
                }
            }
            add_document(e, a, b)
        }
        5 => {
            let removable: Vec<ExtConceptId> =
                ekg.concepts().filter(|&c| ekg.native_parent_count(c) >= 2).collect();
            if removable.is_empty() {
                return add_document(e, a, b);
            }
            let child = removable[(a % removable.len() as u64) as usize];
            let parents: Vec<ExtConceptId> =
                ekg.parents(child).iter().filter(|edge| !edge.shortcut).map(|edge| edge.to).collect();
            DeltaOp::RemoveIsA { child, parent: parents[(b % parents.len() as u64) as usize] }
        }
        6 => {
            let live: Vec<InstanceId> = e.kb().instances().map(|(id, _)| id).collect();
            match live.first() {
                Some(&first) if b.is_multiple_of(2) => DeltaOp::AddInstance {
                    name: ekg.name(ExtConceptId::from_usize((a % n as u64) as usize)).to_string(),
                    concept: e.kb().concept_of(first),
                },
                Some(_) => {
                    DeltaOp::RemoveInstance { id: live[(a % live.len() as u64) as usize] }
                }
                None => add_document(e, a, b),
            }
        }
        7 => {
            let retired: Vec<InstanceId> = (0..e.kb().instance_slots())
                .map(InstanceId::from_usize)
                .filter(|&id| e.kb().is_retired(id))
                .collect();
            match retired.first() {
                Some(_) => {
                    DeltaOp::RestoreInstance { id: retired[(a % retired.len() as u64) as usize] }
                }
                None => add_document(e, a, b),
            }
        }
        _ => add_document(e, a, b),
    }
}

fn full_twin(e: &DeltaEngine) -> IngestOutput {
    let counts = medkb_corpus::MentionCounts::count(e.corpus(), e.native_ekg());
    medkb_core::ingest(e.kb(), e.native_ekg().clone(), &counts, None, e.config()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn delta_then_inverse_restores_output_bit_identically(
        choices in proptest::collection::vec((0u8..8, any::<u64>(), any::<u64>()), 1..6)
    ) {
        let mut sequential = engine();
        let before = sequential.output().clone();

        // Apply one op at a time, materializing each against live state.
        let mut ops: Vec<DeltaOp> = Vec::new();
        let mut inverses: Vec<Delta> = Vec::new();
        for &(kind, a, b) in &choices {
            let op = valid_op(&sequential, kind, a, b);
            let inv = sequential
                .apply(&Delta::new(vec![op.clone()]))
                .expect("constructed op must be valid");
            ops.push(op);
            inverses.push(inv);
        }

        // The same ops as one batch delta on a fresh twin engine: batched
        // and sequential application are the same function.
        let mut batched = engine();
        let inverse = batched.apply(&Delta::new(ops)).expect("batch delta must be valid");
        prop_assert!(
            outputs_identical(sequential.output(), batched.output()),
            "batched application diverged from one-at-a-time"
        );
        prop_assert!(
            outputs_identical(batched.output(), &full_twin(&batched)),
            "delta output diverged from honest full re-ingest"
        );

        // Engine-returned inverses restore the original output exactly —
        // batched inverse on one engine, stacked inverses on the other.
        batched.apply(&inverse).expect("inverse delta must be valid");
        prop_assert!(
            outputs_identical(batched.output(), &before),
            "batch inverse did not restore the original output"
        );
        for inv in inverses.iter().rev() {
            sequential.apply(inv).expect("stacked inverse must be valid");
        }
        prop_assert!(
            outputs_identical(sequential.output(), &before),
            "stacked inverses did not restore the original output"
        );
    }
}
