//! Concept frequencies and information content (Eq. 1–2, §5.1).
//!
//! `freq(A) = |A| + Σ_{A_i ⊑ A} freq(A_i)` is computed per context in one
//! children-first topological pass (Algorithm 1 lines 12–18), normalized so
//! the root has frequency 1, and turned into information content
//! `IC(A) = −log freq(A)` (Eq. 1). Contexts map onto the corpus's context
//! tags (sentence families); Example 3's aggregation — a context whose
//! range concept has TBox descendants uses the total frequency over the
//! descendants' contexts — falls out of that mapping, and an explicit
//! aggregate (all tags) backs the no-context ablation.
//!
//! Zero-frequency concepts get half-count smoothing for IC: the corpus not
//! mentioning a concept is evidence of extreme specificity, not of
//! impossibility.

use medkb_corpus::MentionCounts;
use medkb_ekg::{Ekg, ReachabilityIndex};
use medkb_snomed::oracle::N_TAGS;
use medkb_snomed::ContextTag;
use medkb_types::{ExtConceptId, IdVec};

use crate::config::FrequencyMode;

/// Per-context (tag) normalized frequencies, corpus IC, and intrinsic IC.
#[derive(Debug, Clone, PartialEq)]
pub struct Frequencies {
    /// Normalized rolled-up frequency per tag, `[0, 1]`.
    per_tag: Vec<IdVec<ExtConceptId, f64>>,
    /// Root (total) raw rolled-up weight per tag.
    per_tag_total: [f64; N_TAGS],
    /// Normalized frequency aggregated over all tags.
    aggregate: IdVec<ExtConceptId, f64>,
    /// Intrinsic (structure-only) IC à la Seco et al.: `1 − ln(1+|desc|)/ln N`.
    intrinsic: IdVec<ExtConceptId, f64>,
    /// Precomputed Eq. 1 IC per tag (smoothing folded in), so the scoring
    /// hot loop is a dense array probe instead of a branch + `ln` per call.
    ic_per_tag: Vec<IdVec<ExtConceptId, f64>>,
    /// Precomputed IC of the aggregate frequencies.
    ic_aggregate: IdVec<ExtConceptId, f64>,
    /// Smallest per-tag corpus IC over all concepts. The score-bounded
    /// pruning engine (DESIGN.md §13) uses it as the worst-case candidate
    /// IC in the Eq. 3 denominator of its ring-level caps.
    min_ic_per_tag: [f64; N_TAGS],
    /// Smallest aggregate corpus IC over all concepts.
    min_ic_aggregate: f64,
    /// Smallest intrinsic IC over all concepts.
    min_intrinsic: f64,
}

/// Eq. 1 with half-count smoothing: `−ln f`, or `−ln(0.5/total)` when the
/// concept was never mentioned; degenerate (0) contexts yield IC 0.
fn ic_value(f: f64, total: f64) -> f64 {
    if total <= 0.0 {
        // No corpus signal at all for this context: IC degenerates.
        return 0.0;
    }
    if f > 0.0 {
        -f.ln()
    } else {
        -(0.5 / total).ln()
    }
}

impl Frequencies {
    /// Compute frequencies for `ekg` from corpus `counts`.
    ///
    /// `use_tfidf` selects tf-idf-adjusted weights over raw counts;
    /// `mode` selects the Eq. 2 recursion semantics.
    pub fn compute(
        ekg: &Ekg,
        counts: &MentionCounts,
        mode: FrequencyMode,
        use_tfidf: bool,
    ) -> Self {
        Self::compute_with(ekg, counts, mode, use_tfidf, None, 1)
    }

    /// [`Frequencies::compute`] with optional accelerators: a prebuilt
    /// reachability index (intrinsic IC from its exact descendant counts
    /// instead of one BFS per concept) and a thread budget for the
    /// per-tag rollups.
    ///
    /// Bit-identical to the plain form: each tag's rollup is an
    /// independent computation, partial results are merged in tag order
    /// (the only f64 summation whose order matters), and the
    /// reachability-backed descendant counts are exact integers equal to
    /// what the BFS walk produces.
    pub fn compute_with(
        ekg: &Ekg,
        counts: &MentionCounts,
        mode: FrequencyMode,
        use_tfidf: bool,
        reach: Option<&ReachabilityIndex>,
        threads: usize,
    ) -> Self {
        let raw = RawFrequencies::compute(ekg, counts, mode, use_tfidf, threads);
        Self::finish(ekg, &raw, reach)
    }

    /// Normalize, aggregate, and derive the IC tables from a raw rollup
    /// state. `compute_with` is exactly `RawFrequencies::compute` +
    /// `finish`; delta ingestion patches the raw state in place and re-runs
    /// only this (cheap, allocation-bounded) tail.
    pub fn finish(ekg: &Ekg, raw_state: &RawFrequencies, reach: Option<&ReachabilityIndex>) -> Self {
        let n = ekg.len();
        let mut per_tag: Vec<IdVec<ExtConceptId, f64>> = Vec::with_capacity(N_TAGS);
        let mut per_tag_total = [0.0; N_TAGS];
        let mut aggregate_raw: IdVec<ExtConceptId, f64> = IdVec::filled(0.0, n);
        for (tag, raw) in raw_state.raws.iter().enumerate() {
            let total = raw[ekg.root()];
            per_tag_total[tag] = total;
            for (c, &v) in raw.iter() {
                aggregate_raw[c] += v;
            }
            let normalized: IdVec<ExtConceptId, f64> = raw
                .iter()
                .map(|(_, &v)| if total > 0.0 { v / total } else { 0.0 })
                .collect();
            per_tag.push(normalized);
        }
        let aggregate_total: f64 = per_tag_total.iter().sum();
        let aggregate: IdVec<ExtConceptId, f64> = aggregate_raw
            .iter()
            .map(|(_, &v)| if aggregate_total > 0.0 { v / aggregate_total } else { 0.0 })
            .collect();

        // Intrinsic IC: exact descendant counts either from the closure
        // index (one bitset scan) or from a BFS per concept. A graph with
        // n ≤ 1 concepts has ln n ≤ 0, which would turn the Seco formula
        // into ±∞/NaN; a singleton concept carries no discriminating
        // structure, so its intrinsic IC is defined as 0.
        let intrinsic: IdVec<ExtConceptId, f64> = if n <= 1 {
            IdVec::filled(0.0, n)
        } else {
            let ln_n = (n as f64).ln();
            let desc_count: Vec<u64> = match reach {
                Some(r) => r.descendant_counts(),
                None => (0..n)
                    .map(|i| ekg.descendants(medkb_types::Id::from_usize(i)).len() as u64)
                    .collect(),
            };
            desc_count
                .iter()
                .map(|&d| (1.0 - (1.0 + d as f64).ln() / ln_n).max(0.0))
                .collect()
        };

        let ic_per_tag: Vec<IdVec<ExtConceptId, f64>> = per_tag
            .iter()
            .zip(&per_tag_total)
            .map(|(freqs, &total)| freqs.iter().map(|(_, &f)| ic_value(f, total)).collect())
            .collect();
        let ic_aggregate: IdVec<ExtConceptId, f64> =
            aggregate.iter().map(|(_, &f)| ic_value(f, aggregate_total)).collect();

        // Per-selection IC minima, precomputed once so the pruning engine's
        // ring caps probe a scalar instead of scanning the tables. Every IC
        // value is finite and ≥ 0 (ic_value smooths, intrinsic is clamped),
        // so an empty graph degenerates to 0 — the safe lower bound.
        let min_of = |vals: &IdVec<ExtConceptId, f64>| -> f64 {
            let m = vals.iter().map(|(_, &v)| v).fold(f64::INFINITY, f64::min);
            if m.is_finite() { m } else { 0.0 }
        };
        let mut min_ic_per_tag = [0.0; N_TAGS];
        for (tag, table) in ic_per_tag.iter().enumerate() {
            min_ic_per_tag[tag] = min_of(table);
        }
        let min_ic_aggregate = min_of(&ic_aggregate);
        let min_intrinsic = min_of(&intrinsic);

        Self {
            per_tag,
            per_tag_total,
            aggregate,
            intrinsic,
            ic_per_tag,
            ic_aggregate,
            min_ic_per_tag,
            min_ic_aggregate,
            min_intrinsic,
        }
    }

    /// Normalized frequency of `concept` in context `tag` (root = 1).
    pub fn freq(&self, concept: ExtConceptId, tag: ContextTag) -> f64 {
        self.per_tag[tag.index()][concept]
    }

    /// Normalized frequency aggregated over all contexts (the no-context
    /// fallback of §5.2).
    pub fn freq_aggregate(&self, concept: ExtConceptId) -> f64 {
        self.aggregate[concept]
    }

    /// Corpus IC (Eq. 1) of `concept` in context `tag`; `tag = None`
    /// aggregates over all contexts. Zero frequencies are smoothed to half
    /// a count.
    pub fn ic(&self, concept: ExtConceptId, tag: Option<ContextTag>) -> f64 {
        match tag {
            Some(t) => self.ic_per_tag[t.index()][concept],
            None => self.ic_aggregate[concept],
        }
    }

    /// Intrinsic (structure-only) IC of `concept`, in `[0, 1]`.
    pub fn intrinsic_ic(&self, concept: ExtConceptId) -> f64 {
        self.intrinsic[concept]
    }

    /// Smallest corpus IC any concept carries under `tag` (aggregate when
    /// `None`) — the worst-case Eq. 3 denominator contribution a candidate
    /// can bring, used by the pruning engine's ring caps (DESIGN.md §13).
    pub fn min_ic(&self, tag: Option<ContextTag>) -> f64 {
        match tag {
            Some(t) => self.min_ic_per_tag[t.index()],
            None => self.min_ic_aggregate,
        }
    }

    /// Smallest intrinsic IC any concept carries (the QR-no-corpus
    /// counterpart of [`Frequencies::min_ic`]).
    pub fn min_intrinsic_ic(&self) -> f64 {
        self.min_intrinsic
    }

    /// Root total raw weight per tag (diagnostics).
    pub fn total(&self, tag: ContextTag) -> f64 {
        self.per_tag_total[tag.index()]
    }

    /// Decompose into flat tables for persistence (medkb-store).
    ///
    /// Every table is captured verbatim — a store open reconstructs the
    /// exact f64 bit patterns this compute produced, never a recompute
    /// (which would need the corpus counts the store does not keep).
    pub fn to_parts(&self) -> FreqParts {
        FreqParts {
            per_tag: self.per_tag.iter().map(|t| t.as_slice().to_vec()).collect(),
            per_tag_total: self.per_tag_total.to_vec(),
            aggregate: self.aggregate.as_slice().to_vec(),
            intrinsic: self.intrinsic.as_slice().to_vec(),
            ic_per_tag: self.ic_per_tag.iter().map(|t| t.as_slice().to_vec()).collect(),
            ic_aggregate: self.ic_aggregate.as_slice().to_vec(),
            min_ic_per_tag: self.min_ic_per_tag.to_vec(),
            min_ic_aggregate: self.min_ic_aggregate,
            min_intrinsic: self.min_intrinsic,
        }
    }

    /// Rebuild from [`Frequencies::to_parts`] output. Inverse of
    /// `to_parts`: bit-identical tables, no recomputation.
    pub fn from_parts(parts: FreqParts) -> Self {
        let mut per_tag_total = [0.0; N_TAGS];
        for (slot, v) in per_tag_total.iter_mut().zip(&parts.per_tag_total) {
            *slot = *v;
        }
        let mut min_ic_per_tag = [0.0; N_TAGS];
        for (slot, v) in min_ic_per_tag.iter_mut().zip(&parts.min_ic_per_tag) {
            *slot = *v;
        }
        Self {
            per_tag: parts.per_tag.into_iter().map(|t| t.into_iter().collect()).collect(),
            per_tag_total,
            aggregate: parts.aggregate.into_iter().collect(),
            intrinsic: parts.intrinsic.into_iter().collect(),
            ic_per_tag: parts.ic_per_tag.into_iter().map(|t| t.into_iter().collect()).collect(),
            ic_aggregate: parts.ic_aggregate.into_iter().collect(),
            min_ic_per_tag,
            min_ic_aggregate: parts.min_ic_aggregate,
            min_intrinsic: parts.min_intrinsic,
        }
    }
}

/// The un-normalized core of [`Frequencies`]: the dense direct-weight
/// table and the per-tag raw rollups. This is the state delta ingestion
/// keeps alive between publishes — direct rows and the dirty ancestor cone
/// of the rollups are patched in place, then [`Frequencies::finish`]
/// re-derives the normalized/IC tables.
#[derive(Debug, Clone, PartialEq)]
pub struct RawFrequencies {
    /// Direct (tf or tf-idf) weight per concept per tag.
    dense: Vec<[f64; N_TAGS]>,
    /// Raw rolled-up weight per tag (tag-major, each of length `n`).
    raws: Vec<IdVec<ExtConceptId, f64>>,
}

impl RawFrequencies {
    /// Compute the raw state from scratch (the head of
    /// [`Frequencies::compute_with`]).
    pub fn compute(
        ekg: &Ekg,
        counts: &MentionCounts,
        mode: FrequencyMode,
        use_tfidf: bool,
        threads: usize,
    ) -> Self {
        let n = ekg.len();
        // Dense direct-weight table: one hash probe and one idf `ln` per
        // mentioned concept instead of one per (concept, tag) rollup read.
        // `tf * idf` multiplies the same operands as `MentionCounts::tfidf`,
        // so the values are bit-identical to probing per read.
        let mut dense: Vec<[f64; N_TAGS]> = vec![[0.0; N_TAGS]; n];
        for c in counts.mentioned_concepts() {
            dense[medkb_types::Id::as_usize(c)] = Self::direct_row(counts, use_tfidf, c);
        }
        let direct =
            |c: ExtConceptId, tag: usize| -> f64 { dense[medkb_types::Id::as_usize(c)][tag] };
        let rollup = |tag: usize| match mode {
            FrequencyMode::PaperRecursive => rollup_recursive(ekg, |c| direct(c, tag)),
            FrequencyMode::DescendantSet => rollup_descendant_set(ekg, |c| direct(c, tag)),
        };

        // Raw rollups per tag, computed independently (in parallel when
        // allowed) and then merged in fixed tag order.
        let raws: Vec<IdVec<ExtConceptId, f64>> = if threads <= 1 {
            (0..N_TAGS).map(rollup).collect()
        } else {
            crossbeam::thread::scope(|s| {
                let rollup = &rollup;
                let handles: Vec<_> =
                    (0..N_TAGS).map(|tag| s.spawn(move |_| rollup(tag))).collect();
                handles.into_iter().map(|h| h.join().expect("rollup worker")).collect()
            })
            .expect("rollup scope")
        };
        Self { dense, raws }
    }

    /// One concept's direct row — the exact expression `compute` evaluates,
    /// so a patched row is bit-identical to a fresh build's.
    fn direct_row(counts: &MentionCounts, use_tfidf: bool, c: ExtConceptId) -> [f64; N_TAGS] {
        let idf = counts.idf(c);
        let mut row = [0.0; N_TAGS];
        for (tag, slot) in row.iter_mut().enumerate() {
            let tf = counts.direct(c, tag) as f64;
            *slot = if !use_tfidf {
                tf
            } else if tf == 0.0 {
                0.0
            } else {
                tf * idf
            };
        }
        row
    }

    /// Extend the tables with zero rows up to `n` concepts (concept adds).
    /// The new rows must then be brought current via the patch methods.
    pub fn grow(&mut self, n: usize) {
        while self.dense.len() < n {
            self.dense.push([0.0; N_TAGS]);
        }
        for raw in &mut self.raws {
            while raw.len() < n {
                raw.push(0.0);
            }
        }
    }

    /// Recompute the direct rows of `dirty` concepts from `counts`.
    /// Recomputing a clean row reproduces its bits exactly, so conservative
    /// supersets are safe.
    pub fn patch_direct(
        &mut self,
        counts: &MentionCounts,
        use_tfidf: bool,
        dirty: impl IntoIterator<Item = ExtConceptId>,
    ) {
        for c in dirty {
            self.dense[medkb_types::Id::as_usize(c)] = Self::direct_row(counts, use_tfidf, c);
        }
    }

    /// Recompute the rolled-up rows of the dirty cone, reproducing exactly
    /// what a fresh rollup would put there (clean rows keep their bits, and
    /// each dirty row is rebuilt with the same operand order as the full
    /// pass).
    ///
    /// `dirty` must be closed under "row reads a changed input":
    /// * `PaperRecursive` — every concept whose direct row or native-child
    ///   multiset changed, plus all their ancestors (the recurrence reads
    ///   child rows, so the cone is upward-closed and is recomputed in
    ///   children-first topo order).
    /// * `DescendantSet` — every concept whose direct row changed and its
    ///   ancestors in both the old and new graph (rows are independent
    ///   gathers, recomputed against the **new** reachability index).
    pub fn patch_rollup(
        &mut self,
        ekg: &Ekg,
        mode: FrequencyMode,
        reach: &ReachabilityIndex,
        dirty: &std::collections::HashSet<ExtConceptId>,
    ) {
        match mode {
            FrequencyMode::PaperRecursive => {
                for (tag, raw) in self.raws.iter_mut().enumerate() {
                    for &c in ekg.topo_children_first() {
                        if !dirty.contains(&c) {
                            continue;
                        }
                        let mut f = self.dense[medkb_types::Id::as_usize(c)][tag];
                        for child in ekg.native_children(c) {
                            f += raw[child];
                        }
                        raw[c] = f;
                    }
                }
            }
            FrequencyMode::DescendantSet => {
                for (tag, raw) in self.raws.iter_mut().enumerate() {
                    for &a in dirty {
                        // Replay the scatter pass's per-slot addition order:
                        // contributors arrive in ascending concept id, the
                        // self-contribution unconditionally, descendants
                        // only when their direct weight is nonzero.
                        let mut f = 0.0;
                        for c in ekg.concepts() {
                            let d = self.dense[medkb_types::Id::as_usize(c)][tag];
                            if c == a || (d != 0.0 && reach.is_ancestor(a, c)) {
                                f += d;
                            }
                        }
                        raw[a] = f;
                    }
                }
            }
        }
    }
}

/// Flat-table decomposition of [`Frequencies`] for persistence. Tables are
/// tag-major (`N_TAGS` inner vectors of length `n`); scalar minima ride
/// along so the pruning engine's ring caps survive a round trip untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqParts {
    /// Normalized per-tag frequency tables.
    pub per_tag: Vec<Vec<f64>>,
    /// Root raw rolled-up weight per tag (length `N_TAGS`).
    pub per_tag_total: Vec<f64>,
    /// Aggregate normalized frequencies.
    pub aggregate: Vec<f64>,
    /// Intrinsic IC table.
    pub intrinsic: Vec<f64>,
    /// Per-tag corpus IC tables.
    pub ic_per_tag: Vec<Vec<f64>>,
    /// Aggregate corpus IC table.
    pub ic_aggregate: Vec<f64>,
    /// Per-tag IC minima (length `N_TAGS`).
    pub min_ic_per_tag: Vec<f64>,
    /// Aggregate IC minimum.
    pub min_ic_aggregate: f64,
    /// Intrinsic IC minimum.
    pub min_intrinsic: f64,
}

/// Paper-literal Eq. 2 rollup: one children-first pass, each child's
/// rolled-up frequency added to every native parent.
fn rollup_recursive<F: Fn(ExtConceptId) -> f64>(ekg: &Ekg, direct: F) -> IdVec<ExtConceptId, f64> {
    let mut freq: IdVec<ExtConceptId, f64> = IdVec::filled(0.0, ekg.len());
    for &c in ekg.topo_children_first() {
        let mut f = direct(c);
        for child in ekg.native_children(c) {
            f += freq[child];
        }
        freq[c] = f;
    }
    freq
}

/// Exact rollup: every concept's direct weight counted once per ancestor.
fn rollup_descendant_set<F: Fn(ExtConceptId) -> f64>(
    ekg: &Ekg,
    direct: F,
) -> IdVec<ExtConceptId, f64> {
    let mut freq: IdVec<ExtConceptId, f64> = IdVec::filled(0.0, ekg.len());
    for c in ekg.concepts() {
        let d = direct(c);
        freq[c] += d;
        if d != 0.0 {
            for anc in ekg.ancestors(c) {
                freq[anc] += d;
            }
        }
    }
    freq
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_snomed::figures::paper_fragment;
    use std::collections::HashMap;

    /// Build MentionCounts from the Figure 4 fragment's pinned direct
    /// counts (Treatment = Indication context, Risk = Risk context).
    fn fig4_counts() -> (medkb_ekg::Ekg, MentionCounts) {
        let f = paper_fragment();
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        let mut doc_freq: HashMap<ExtConceptId, u32> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let c = f.concept(name);
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = treat;
            row[ContextTag::Risk.index()] = risk;
            direct.insert(c, row);
            // Spread document frequencies so idf differs across concepts.
            doc_freq.insert(c, 1 + (treat / 500) as u32);
        }
        (f.ekg.clone(), MentionCounts::from_direct(direct, doc_freq, 100))
    }

    #[test]
    fn figure4_treatment_rollup_hits_published_totals() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let total = freqs.total(ContextTag::Treatment);
        let raw = |name: &str| freqs.freq(ekg.lookup_name(name)[0], ContextTag::Treatment) * total;
        assert_eq!(raw("headache").round() as u64, 18_000);
        assert_eq!(raw("craniofacial pain").round() as u64, 18_878);
        assert_eq!(raw("pain of head and neck region").round() as u64, 19_164);
    }

    #[test]
    fn figure4_risk_rollup_hits_published_totals() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let total = freqs.total(ContextTag::Risk);
        let raw = |name: &str| freqs.freq(ekg.lookup_name(name)[0], ContextTag::Risk) * total;
        assert_eq!(raw("craniofacial pain").round() as u64, 1_400);
        assert_eq!(raw("pain of head and neck region").round() as u64, 1_656);
    }

    #[test]
    fn root_has_normalized_frequency_one() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        assert!((freqs.freq(ekg.root(), ContextTag::Treatment) - 1.0).abs() < 1e-12);
        assert!((freqs.freq_aggregate(ekg.root()) - 1.0).abs() < 1e-12);
        assert_eq!(freqs.ic(ekg.root(), Some(ContextTag::Treatment)), 0.0);
    }

    #[test]
    fn ic_decreases_towards_the_root() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let leaf = ekg.lookup_name("frequent headache")[0];
        let mid = ekg.lookup_name("craniofacial pain")[0];
        let top = ekg.lookup_name("pain")[0];
        let t = Some(ContextTag::Treatment);
        assert!(freqs.ic(leaf, t) > freqs.ic(mid, t));
        assert!(freqs.ic(mid, t) > freqs.ic(top, t));
    }

    #[test]
    fn zero_frequency_gets_smoothed_not_infinite() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let unmentioned = ekg.lookup_name("hypothermia")[0];
        let ic = freqs.ic(unmentioned, Some(ContextTag::Treatment));
        assert!(ic.is_finite());
        // Smoothed IC exceeds any mentioned concept's IC.
        let leaf = ekg.lookup_name("pain in throat")[0];
        assert!(ic > freqs.ic(leaf, Some(ContextTag::Treatment)));
    }

    #[test]
    fn singleton_graph_has_finite_documented_ic() {
        // n = 1 makes ln n = 0; the old clamp (`ln_n.max(f64::MIN_POSITIVE)`)
        // happened to yield 1.0, masking the degenerate case. The documented
        // value is 0: a singleton concept discriminates nothing.
        let mut b = medkb_ekg::EkgBuilder::new();
        let root = b.concept("only");
        let ekg = b.build().unwrap();
        let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 0);
        for mode in [FrequencyMode::PaperRecursive, FrequencyMode::DescendantSet] {
            let freqs = Frequencies::compute(&ekg, &counts, mode, false);
            assert_eq!(freqs.intrinsic_ic(root), 0.0);
            for tag in [None, Some(ContextTag::Treatment), Some(ContextTag::Risk)] {
                let ic = freqs.ic(root, tag);
                assert!(ic.is_finite(), "{mode:?} {tag:?}: {ic}");
                assert_eq!(ic, 0.0);
            }
            assert_eq!(freqs.freq(root, ContextTag::Treatment), 0.0);
            assert_eq!(freqs.freq_aggregate(root), 0.0);
        }
    }

    #[test]
    fn empty_corpus_yields_finite_ic_everywhere() {
        // An empty corpus means every per-tag total is 0, which must
        // degrade to IC 0 (no signal), never to -inf from `ln 0`.
        let ekg = paper_fragment().ekg;
        let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 0);
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        for c in ekg.concepts() {
            for tag in [None, Some(ContextTag::Treatment), Some(ContextTag::Risk)] {
                let ic = freqs.ic(c, tag);
                assert!(ic.is_finite() && ic == 0.0, "{c:?} {tag:?}: {ic}");
            }
            let intrinsic = freqs.intrinsic_ic(c);
            assert!(intrinsic.is_finite() && (0.0..=1.0).contains(&intrinsic));
        }
    }

    #[test]
    fn two_concept_graph_intrinsic_ic_is_exact() {
        // Smallest non-degenerate case: root IC 0, leaf IC 1.
        let mut b = medkb_ekg::EkgBuilder::new();
        let (leaf, root) = b.is_a_named("leaf", "root");
        let ekg = b.build().unwrap();
        let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 0);
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        assert_eq!(freqs.intrinsic_ic(root), 0.0);
        assert_eq!(freqs.intrinsic_ic(leaf), 1.0);
    }

    #[test]
    fn modes_agree_on_trees() {
        // The fragment is a tree (no multi-parent), so both rollups match.
        let (ekg, counts) = fig4_counts();
        let a = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let b = Frequencies::compute(&ekg, &counts, FrequencyMode::DescendantSet, false);
        for c in ekg.concepts() {
            assert!(
                (a.freq(c, ContextTag::Treatment) - b.freq(c, ContextTag::Treatment)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn modes_diverge_on_diamonds() {
        // Diamond: child under two parents is double-counted by the
        // paper-literal recursion at the grandparent.
        let mut b = medkb_ekg::EkgBuilder::new();
        let root = b.concept("root");
        let p1 = b.concept("p1");
        let p2 = b.concept("p2");
        let child = b.concept("child");
        b.is_a(p1, root);
        b.is_a(p2, root);
        b.is_a(child, p1);
        b.is_a(child, p2);
        let ekg = b.build().unwrap();
        let mut direct = HashMap::new();
        direct.insert(child, {
            let mut row = [0u64; N_TAGS];
            row[0] = 10;
            row
        });
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 10);
        let rec = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let exact = Frequencies::compute(&ekg, &counts, FrequencyMode::DescendantSet, false);
        let tag = ContextTag::Treatment;
        // Recursive: root total = 20 (child counted via both parents);
        // exact: root total = 10.
        assert!((rec.total(tag) - 20.0).abs() < 1e-12);
        assert!((exact.total(tag) - 10.0).abs() < 1e-12);
        // Normalized child frequency is therefore 0.5 vs 1.0.
        assert!((rec.freq(child, tag) - 0.5).abs() < 1e-12);
        assert!((exact.freq(child, tag) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_ic_matches_scan_over_all_concepts() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        for tag in [None, Some(ContextTag::Treatment), Some(ContextTag::Risk)] {
            let scanned =
                ekg.concepts().map(|c| freqs.ic(c, tag)).fold(f64::INFINITY, f64::min);
            assert_eq!(freqs.min_ic(tag), scanned, "{tag:?}");
            assert!(freqs.min_ic(tag) >= 0.0);
        }
        let scanned =
            ekg.concepts().map(|c| freqs.intrinsic_ic(c)).fold(f64::INFINITY, f64::min);
        assert_eq!(freqs.min_intrinsic_ic(), scanned);
        // The root carries no information, so the minima bottom out at 0.
        assert_eq!(freqs.min_ic(Some(ContextTag::Treatment)), 0.0);
        assert_eq!(freqs.min_intrinsic_ic(), 0.0);
    }

    #[test]
    fn intrinsic_ic_monotone() {
        let (ekg, counts) = fig4_counts();
        let freqs = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let leaf = ekg.lookup_name("frequent headache")[0];
        let mid = ekg.lookup_name("pain")[0];
        assert!(freqs.intrinsic_ic(leaf) > freqs.intrinsic_ic(mid));
        assert!(freqs.intrinsic_ic(ekg.root()) < 0.2);
        assert!((freqs.intrinsic_ic(leaf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_with_accelerators_is_bit_identical() {
        let (ekg, counts) = fig4_counts();
        let reach = ReachabilityIndex::build(&ekg);
        for mode in [FrequencyMode::PaperRecursive, FrequencyMode::DescendantSet] {
            for tfidf in [false, true] {
                let plain = Frequencies::compute(&ekg, &counts, mode, tfidf);
                for threads in [1, 2, 4, 8] {
                    let fast = Frequencies::compute_with(
                        &ekg,
                        &counts,
                        mode,
                        tfidf,
                        Some(&reach),
                        threads,
                    );
                    assert_eq!(fast, plain, "mode={mode:?} tfidf={tfidf} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn patched_raw_matches_fresh_compute() {
        // Bump one concept's Treatment count (doc freqs and n_docs fixed,
        // so only that concept's direct row changes), patch its ancestor
        // cone, and demand bit-identity with a from-scratch compute.
        let f = paper_fragment();
        let ekg = f.ekg.clone();
        let reach = ReachabilityIndex::build(&ekg);
        let mk = |bump: u64| {
            let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
            let mut doc_freq: HashMap<ExtConceptId, u32> = HashMap::new();
            for &(name, treat, risk) in &f.fig4_direct_counts {
                let c = f.concept(name);
                let mut row = [0u64; N_TAGS];
                row[ContextTag::Treatment.index()] =
                    treat + if name == "headache" { bump } else { 0 };
                row[ContextTag::Risk.index()] = risk;
                direct.insert(c, row);
                doc_freq.insert(c, 1 + (treat / 500) as u32);
            }
            MentionCounts::from_direct(direct, doc_freq, 100)
        };
        let old = mk(0);
        let new = mk(7);
        let changed = ekg.lookup_name("headache")[0];
        for mode in [FrequencyMode::PaperRecursive, FrequencyMode::DescendantSet] {
            for tfidf in [false, true] {
                let mut raw = RawFrequencies::compute(&ekg, &old, mode, tfidf, 1);
                let mut dirty: std::collections::HashSet<ExtConceptId> =
                    ekg.ancestors(changed).into_iter().collect();
                dirty.insert(changed);
                raw.patch_direct(&new, tfidf, dirty.iter().copied());
                raw.patch_rollup(&ekg, mode, &reach, &dirty);
                let fresh = RawFrequencies::compute(&ekg, &new, mode, tfidf, 1);
                assert_eq!(raw, fresh, "raw state mode={mode:?} tfidf={tfidf}");
                assert_eq!(
                    Frequencies::finish(&ekg, &raw, Some(&reach)),
                    Frequencies::compute_with(&ekg, &new, mode, tfidf, Some(&reach), 1),
                    "finished state mode={mode:?} tfidf={tfidf}"
                );
            }
        }
    }

    #[test]
    fn tfidf_changes_weights_but_not_structure() {
        let (ekg, counts) = fig4_counts();
        let raw = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, false);
        let tfidf = Frequencies::compute(&ekg, &counts, FrequencyMode::PaperRecursive, true);
        let t = ContextTag::Treatment;
        // Root normalized stays 1 either way.
        assert!((tfidf.freq(ekg.root(), t) - 1.0).abs() < 1e-12);
        // Monotonicity along the chain is preserved.
        let leaf = ekg.lookup_name("headache")[0];
        let mid = ekg.lookup_name("craniofacial pain")[0];
        assert!(tfidf.freq(mid, t) >= tfidf.freq(leaf, t));
        // But the actual values differ from the raw ones.
        assert!((tfidf.freq(leaf, t) - raw.freq(leaf, t)).abs() > 1e-9);
    }
}
