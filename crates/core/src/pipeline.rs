//! A fluent builder over the two-phase pipeline.
//!
//! [`crate::ingest`] takes five positional arguments; downstream users
//! assembling a system from their own KB / terminology / corpus get a
//! builder that names them and produces the ready [`QueryRelaxer`]:
//!
//! ```
//! # use medkb_core::pipeline::RelaxationPipeline;
//! # use medkb_core::{MappingMethod, RelaxConfig};
//! # use medkb_corpus::MentionCounts;
//! # use std::collections::HashMap;
//! # let fragment = medkb_snomed::figures::paper_fragment();
//! # let mut ob = medkb_ontology::OntologyBuilder::new();
//! # let drug = ob.concept("Drug");
//! # let finding = ob.concept("Finding");
//! # ob.relationship("treats", drug, finding);
//! # let mut kbb = medkb_kb::KbBuilder::new(ob.build()?);
//! # let fc = kbb.ontology().lookup_concept("Finding").unwrap();
//! # kbb.instance("kidney disease", fc);
//! # let kb = kbb.build()?;
//! let relaxer = RelaxationPipeline::builder()
//!     .kb(kb)
//!     .terminology(fragment.ekg.clone())
//!     .counts(MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1))
//!     .config(RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() })
//!     .build()?;
//! assert!(relaxer.relax("pyelectasia", None, 3).is_ok());
//! # Ok::<(), medkb_types::MedKbError>(())
//! ```

use std::sync::Arc;

use medkb_corpus::MentionCounts;
use medkb_ekg::Ekg;
use medkb_embed::SifModel;
use medkb_kb::Kb;
use medkb_types::{MedKbError, Result};

use crate::config::RelaxConfig;
use crate::ingest::ingest;
use crate::relax::QueryRelaxer;

/// Namespace for the builder (the pipeline *is* the [`QueryRelaxer`]).
pub struct RelaxationPipeline;

impl RelaxationPipeline {
    /// Start assembling a pipeline.
    pub fn builder() -> RelaxationPipelineBuilder {
        RelaxationPipelineBuilder::default()
    }
}

/// Collects the pipeline inputs; see [`RelaxationPipeline::builder`].
#[derive(Default)]
pub struct RelaxationPipelineBuilder {
    kb: Option<Kb>,
    terminology: Option<Ekg>,
    counts: Option<MentionCounts>,
    sif: Option<Arc<SifModel>>,
    config: Option<RelaxConfig>,
}

impl RelaxationPipelineBuilder {
    /// The knowledge base (required).
    pub fn kb(mut self, kb: Kb) -> Self {
        self.kb = Some(kb);
        self
    }

    /// The external knowledge source (required; consumed and customized).
    pub fn terminology(mut self, ekg: Ekg) -> Self {
        self.terminology = Some(ekg);
        self
    }

    /// Corpus mention statistics (required; pass an empty
    /// [`MentionCounts`] to run purely structural).
    pub fn counts(mut self, counts: MentionCounts) -> Self {
        self.counts = Some(counts);
        self
    }

    /// A fitted SIF model (required only for embedding mapping).
    pub fn sif(mut self, sif: Arc<SifModel>) -> Self {
        self.sif = Some(sif);
        self
    }

    /// The relaxation configuration (defaults to [`RelaxConfig::default`]).
    pub fn config(mut self, config: RelaxConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Run Algorithm 1 and return the online engine.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] for missing required inputs, plus
    /// everything [`ingest`] can report.
    pub fn build(self) -> Result<QueryRelaxer> {
        let kb = self.kb.ok_or_else(|| MedKbError::invalid("pipeline requires a kb"))?;
        let terminology = self
            .terminology
            .ok_or_else(|| MedKbError::invalid("pipeline requires a terminology"))?;
        let counts =
            self.counts.ok_or_else(|| MedKbError::invalid("pipeline requires counts"))?;
        let config = self.config.unwrap_or_default();
        let ingested = ingest(&kb, terminology, &counts, self.sif, &config)?;
        Ok(QueryRelaxer::new(ingested, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingMethod;
    use std::collections::HashMap;

    fn inputs() -> (Kb, Ekg, MentionCounts) {
        let fragment = medkb_snomed::figures::paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let drug = ob.concept("Drug");
        let finding = ob.concept("Finding");
        ob.relationship("treats", drug, finding);
        let mut kbb = medkb_kb::KbBuilder::new(ob.build().unwrap());
        let fc = kbb.ontology().lookup_concept("Finding").unwrap();
        kbb.instance("kidney disease", fc);
        kbb.instance("fever", fc);
        (
            kbb.build().unwrap(),
            fragment.ekg,
            MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1),
        )
    }

    #[test]
    fn builds_a_working_relaxer() {
        let (kb, ekg, counts) = inputs();
        let relaxer = RelaxationPipeline::builder()
            .kb(kb)
            .terminology(ekg)
            .counts(counts)
            .config(RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() })
            .build()
            .unwrap();
        let res = relaxer.relax("pyelectasia", None, 3).unwrap();
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn missing_inputs_are_reported_by_name() {
        let (kb, ekg, counts) = inputs();
        let err = RelaxationPipeline::builder().terminology(ekg).counts(counts).build();
        assert!(matches!(err, Err(MedKbError::InvalidArgument { ref detail }) if detail.contains("kb")));
        let err = RelaxationPipeline::builder().kb(kb).build();
        assert!(
            matches!(err, Err(MedKbError::InvalidArgument { ref detail }) if detail.contains("terminology"))
        );
    }

    #[test]
    fn embedding_without_model_fails_at_build() {
        let (kb, ekg, counts) = inputs();
        let err = RelaxationPipeline::builder()
            .kb(kb)
            .terminology(ekg)
            .counts(counts)
            .config(RelaxConfig::default()) // embedding mapping, no SIF
            .build();
        assert!(err.is_err());
    }
}
