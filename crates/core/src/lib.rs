//! The paper's contribution: two-phase, context-aware query relaxation
//! over a medical knowledge base backed by an external knowledge source.
//!
//! * **Offline** — [`ingest`] implements Algorithm 1: context generation
//!   from the domain ontology, instance → external-concept mapping with a
//!   pluggable matcher ([`mapping`]), per-context concept frequencies over
//!   the curation corpus ([`frequency`], Eq. 1–2, tf-idf adjusted), and the
//!   sparsity customization that adds shortcut edges between flagged
//!   concepts and their ancestors (Figure 5).
//! * **Online** — [`relax`] implements Algorithm 2: resolve the query term
//!   to an external concept, gather flagged concepts within radius `r`
//!   (optionally growing the radius until `k` results exist), rank by the
//!   novel similarity metric ([`similarity`], Eq. 5 = direction-weighted
//!   path factor × context-aware IC similarity), and return KB instances.
//! * **Baselines and ablations** — [`baselines`] provides the Table 2
//!   competitors (plain IC, embedding rankers, Wu-Palmer) and the
//!   configuration flags in [`config`] switch off individual signals
//!   (QR-no-context, QR-no-corpus).
//! * **Weight learning** — [`weights`] fits the generalization /
//!   specialization edge weights by logistic regression, the procedure
//!   §5.2 sketches (the paper's empirical values 0.9 / 1.0 are the
//!   defaults).

#![warn(missing_docs)]

pub mod baselines;
pub mod delta;
pub mod feedback;
pub mod config;
pub mod frequency;
pub mod ingest;
pub mod mapping;
pub mod pipeline;
pub mod relax;
pub mod similarity;
pub mod weights;

pub use config::{FrequencyMode, MappingMethod, ObsConfig, ParallelConfig, RelaxConfig};
pub use delta::{outputs_identical, Delta, DeltaEngine, DeltaOp};
pub use feedback::{Feedback, FeedbackStore};
pub use frequency::{FreqParts, Frequencies, RawFrequencies};
pub use ingest::{
    ingest, ingest_reference, ingest_with_stats, IngestOutput, IngestStats, InstanceIndex,
    MappingIndex,
};
pub use mapping::{ConceptMapper, MapperParts};
pub use pipeline::RelaxationPipeline;
pub use relax::{rank_order, QueryRelaxer, RelaxationResult, RelaxedAnswer, ScoreExplain};
pub use similarity::{QrScorer, QueryScorer, ScoreBounds};
