//! Relevance feedback — the paper's own proposed extension.
//!
//! §7.2 closes its feedback analysis with: "One straightforward solution to
//! address these issues would be to incorporate the user's relevance
//! feedback [39] in the query relaxation method, and to progressively
//! improve the relaxed results." This module implements that proposal.
//!
//! Feedback is collected as accept/reject signals on `(query concept,
//! candidate concept, context tag)` triples and folded into a
//! multiplicative adjustment of the Eq. 5 score:
//!
//! ```text
//! sim'(A, B) = sim(A, B) · exp(λ · s(A, B, tag))
//! ```
//!
//! where `s` is a smoothed net-approval score in `[-1, 1]`. Feedback on a
//! candidate also generalizes softly to the candidate's native parents
//! (at half weight): rejecting "hypothermia" for a fever query teaches the
//! system something about the whole body-temperature-lowering family.

use std::collections::HashMap;

use medkb_ekg::Ekg;
use medkb_snomed::ContextTag;
use medkb_types::ExtConceptId;

/// One feedback signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// The user confirmed the candidate was helpful.
    Accept,
    /// The user rejected the candidate.
    Reject,
}

/// Accumulated relevance feedback with score adjustment.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    /// `(query, candidate, tag index) → (accepts, rejects)`.
    counts: HashMap<(ExtConceptId, ExtConceptId, usize), (u32, u32)>,
    /// Strength of the adjustment (λ).
    lambda: f64,
    /// Laplace smoothing mass.
    smoothing: f64,
}

impl FeedbackStore {
    /// An empty store with the default strength (λ = 0.5).
    pub fn new() -> Self {
        Self { counts: HashMap::new(), lambda: 0.5, smoothing: 1.0 }
    }

    /// An empty store with an explicit strength.
    pub fn with_lambda(lambda: f64) -> Self {
        Self { lambda, ..Self::new() }
    }

    /// Number of distinct `(query, candidate, tag)` triples with feedback.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no feedback has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Record one signal; the candidate's native parents receive the same
    /// signal at half weight (soft generalization).
    pub fn record(
        &mut self,
        ekg: &Ekg,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: ContextTag,
        feedback: Feedback,
    ) {
        self.bump(query, candidate, tag, feedback, 2);
        for parent in ekg.native_parents(candidate) {
            self.bump(query, parent, tag, feedback, 1);
        }
    }

    fn bump(
        &mut self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: ContextTag,
        feedback: Feedback,
        weight: u32,
    ) {
        let entry = self.counts.entry((query, candidate, tag.index())).or_insert((0, 0));
        match feedback {
            Feedback::Accept => entry.0 += weight,
            Feedback::Reject => entry.1 += weight,
        }
    }

    /// The smoothed net-approval score in `(-1, 1)`; 0 when no feedback
    /// exists.
    pub fn approval(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: ContextTag,
    ) -> f64 {
        match self.counts.get(&(query, candidate, tag.index())) {
            Some(&(acc, rej)) => {
                (f64::from(acc) - f64::from(rej))
                    / (f64::from(acc) + f64::from(rej) + 2.0 * self.smoothing)
            }
            None => 0.0,
        }
    }

    /// The multiplicative adjustment `exp(λ · approval)` applied to Eq. 5.
    pub fn adjustment(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: ContextTag,
    ) -> f64 {
        (self.lambda * self.approval(query, candidate, tag)).exp()
    }

    /// Re-rank a scored candidate list in place under the feedback
    /// adjustment (stable for untouched candidates: their adjustment is 1).
    pub fn rescore(
        &self,
        query: ExtConceptId,
        tag: ContextTag,
        scored: &mut [(ExtConceptId, f64)],
    ) {
        for (c, s) in scored.iter_mut() {
            *s *= self.adjustment(query, *c, tag);
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ekg::EkgBuilder;

    fn graph() -> (Ekg, ExtConceptId, ExtConceptId, ExtConceptId) {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let parent = b.concept("temperature disorder");
        let hypo = b.concept("hypothermia");
        let hyper = b.concept("hyperpyrexia");
        b.is_a(parent, root);
        b.is_a(hypo, parent);
        b.is_a(hyper, parent);
        (b.build().unwrap(), parent, hypo, hyper)
    }

    #[test]
    fn no_feedback_is_neutral() {
        let (_, _, hypo, hyper) = graph();
        let store = FeedbackStore::new();
        assert_eq!(store.approval(hyper, hypo, ContextTag::Treatment), 0.0);
        assert_eq!(store.adjustment(hyper, hypo, ContextTag::Treatment), 1.0);
        assert!(store.is_empty());
    }

    #[test]
    fn rejects_push_scores_down_accepts_up() {
        let (ekg, _, hypo, hyper) = graph();
        let mut store = FeedbackStore::new();
        store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
        store.record(&ekg, hyper, hyper, ContextTag::Treatment, Feedback::Accept);
        assert!(store.approval(hyper, hypo, ContextTag::Treatment) < 0.0);
        assert!(store.adjustment(hyper, hypo, ContextTag::Treatment) < 1.0);
        assert!(store.adjustment(hyper, hyper, ContextTag::Treatment) > 1.0);
    }

    #[test]
    fn feedback_is_context_scoped() {
        let (ekg, _, hypo, hyper) = graph();
        let mut store = FeedbackStore::new();
        store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
        // The risk context is untouched: hypothermia may well be a valid
        // adverse-effect answer even if it is a wrong treatment answer.
        assert_eq!(store.approval(hyper, hypo, ContextTag::Risk), 0.0);
    }

    #[test]
    fn feedback_generalizes_to_parents_at_half_weight() {
        let (ekg, parent, hypo, hyper) = graph();
        let mut store = FeedbackStore::new();
        store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
        let direct = store.approval(hyper, hypo, ContextTag::Treatment);
        let inherited = store.approval(hyper, parent, ContextTag::Treatment);
        assert!(inherited < 0.0, "parent should inherit the rejection");
        assert!(inherited > direct, "at reduced strength");
    }

    #[test]
    fn repeated_feedback_strengthens_monotonically() {
        let (ekg, _, hypo, hyper) = graph();
        let mut store = FeedbackStore::new();
        let mut last = 0.0;
        for _ in 0..5 {
            store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
            let a = store.approval(hyper, hypo, ContextTag::Treatment);
            assert!(a < last, "{a} should keep dropping");
            assert!(a > -1.0);
            last = a;
        }
    }

    #[test]
    fn rescore_reorders_by_adjusted_score() {
        let (ekg, _, hypo, hyper) = graph();
        let mut store = FeedbackStore::with_lambda(1.5);
        // Rejected candidate initially ranked first by a small margin.
        let mut scored = vec![(hypo, 0.60), (hyper, 0.55)];
        for _ in 0..4 {
            store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
            store.record(&ekg, hyper, hyper, ContextTag::Treatment, Feedback::Accept);
        }
        store.rescore(hyper, ContextTag::Treatment, &mut scored);
        assert_eq!(scored[0].0, hyper, "feedback must flip the ranking: {scored:?}");
    }

    #[test]
    fn mixed_feedback_converges_to_net_opinion() {
        let (ekg, _, hypo, hyper) = graph();
        let mut store = FeedbackStore::new();
        for _ in 0..3 {
            store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Accept);
        }
        store.record(&ekg, hyper, hypo, ContextTag::Treatment, Feedback::Reject);
        assert!(store.approval(hyper, hypo, ContextTag::Treatment) > 0.0);
    }
}
