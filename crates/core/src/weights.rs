//! Learning the direction weights of Eq. 4.
//!
//! §5.2: "To learn the weights of both generalization and specialization,
//! simple statistical regression analysis such as logistic regression can
//! be used. In our empirical study, the weights … are set to 0.9 and 1."
//!
//! This module implements that procedure: fit
//! `P(relevant | path) = σ(β₀ + β_g·ups + β_s·downs)` by gradient descent
//! on labeled `(ups, downs, relevant)` examples, then convert the
//! per-step log-odds coefficients into Eq. 4 multiplicative weights,
//! normalized so the less harmful direction has weight 1 (matching the
//! paper's `w_spec = 1`).

/// One labeled path example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathExample {
    /// Generalization steps from the query side.
    pub ups: u32,
    /// Specialization steps to the candidate.
    pub downs: u32,
    /// Whether the pair was judged relevant.
    pub relevant: bool,
}

/// A fitted direction-weight model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionWeights {
    /// Eq. 4 weight of one generalization step.
    pub w_gen: f64,
    /// Eq. 4 weight of one specialization step.
    pub w_spec: f64,
    /// Raw logistic coefficients `(β₀, β_g, β_s)` for diagnostics.
    pub coefficients: (f64, f64, f64),
}

/// Fit direction weights from labeled examples by logistic regression.
///
/// Returns the paper defaults `(0.9, 1.0)` when the examples carry no
/// signal (fewer than 2 examples or only one label).
pub fn fit_direction_weights(examples: &[PathExample]) -> DirectionWeights {
    let defaults = DirectionWeights { w_gen: 0.9, w_spec: 1.0, coefficients: (0.0, 0.0, 0.0) };
    if examples.len() < 2
        || examples.iter().all(|e| e.relevant)
        || examples.iter().all(|e| !e.relevant)
    {
        return defaults;
    }

    // Batch gradient descent on the negative log-likelihood with a small
    // L2 penalty for stability.
    let (mut b0, mut bg, mut bs) = (0.0f64, 0.0f64, 0.0f64);
    let lr = 0.1;
    let l2 = 1e-4;
    let n = examples.len() as f64;
    for _ in 0..2000 {
        let (mut g0, mut gg, mut gs) = (0.0f64, 0.0f64, 0.0f64);
        for e in examples {
            let (u, d) = (f64::from(e.ups), f64::from(e.downs));
            let z = b0 + bg * u + bs * d;
            let p = 1.0 / (1.0 + (-z).exp());
            let err = p - if e.relevant { 1.0 } else { 0.0 };
            g0 += err;
            gg += err * u;
            gs += err * d;
        }
        b0 -= lr * (g0 / n);
        bg -= lr * (gg / n + l2 * bg);
        bs -= lr * (gs / n + l2 * bs);
    }

    // Per-step multiplicative weights: exp(β) clamped to (0, 1] and
    // normalized so the milder direction gets 1 (the paper's convention).
    let top = bg.max(bs);
    let w_gen = (bg - top).exp().clamp(0.05, 1.0);
    let w_spec = (bs - top).exp().clamp(0.05, 1.0);
    DirectionWeights { w_gen, w_spec, coefficients: (b0, bg, bs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic world where relevance decays faster with generalization:
    /// relevant iff `2·ups + downs <= 4`.
    fn gen_heavy_examples() -> Vec<PathExample> {
        let mut out = Vec::new();
        for ups in 0..5u32 {
            for downs in 0..5u32 {
                out.push(PathExample { ups, downs, relevant: 2 * ups + downs <= 4 });
            }
        }
        out
    }

    #[test]
    fn learns_generalization_penalty() {
        let w = fit_direction_weights(&gen_heavy_examples());
        assert!(
            w.w_gen < w.w_spec,
            "generalization should be penalized: {w:?}"
        );
        assert!((w.w_spec - 1.0).abs() < 1e-9 || w.w_spec > w.w_gen);
        assert!(w.w_gen > 0.0);
    }

    #[test]
    fn symmetric_world_learns_equal_weights() {
        let mut examples = Vec::new();
        for ups in 0..5u32 {
            for downs in 0..5u32 {
                examples.push(PathExample { ups, downs, relevant: ups + downs <= 3 });
            }
        }
        let w = fit_direction_weights(&examples);
        assert!((w.w_gen - w.w_spec).abs() < 0.05, "{w:?}");
    }

    #[test]
    fn degenerate_inputs_fall_back_to_paper_defaults() {
        assert_eq!(fit_direction_weights(&[]).w_gen, 0.9);
        let all_pos = vec![PathExample { ups: 1, downs: 1, relevant: true }; 5];
        let w = fit_direction_weights(&all_pos);
        assert_eq!((w.w_gen, w.w_spec), (0.9, 1.0));
    }

    #[test]
    fn spec_heavy_world_penalizes_specialization() {
        let mut examples = Vec::new();
        for ups in 0..5u32 {
            for downs in 0..5u32 {
                examples.push(PathExample { ups, downs, relevant: ups + 2 * downs <= 4 });
            }
        }
        let w = fit_direction_weights(&examples);
        assert!(w.w_spec < w.w_gen, "{w:?}");
    }

    #[test]
    fn weights_bounded() {
        let w = fit_direction_weights(&gen_heavy_examples());
        assert!(w.w_gen <= 1.0 && w.w_spec <= 1.0);
        assert!(w.w_gen >= 0.05 && w.w_spec >= 0.05);
    }
}
