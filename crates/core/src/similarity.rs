//! The novel similarity metric (Eq. 3–5, §5.2).
//!
//! `sim(A, B) = p_{A,B} × sim_IC(A, B)` where
//!
//! * `sim_IC(A,B) = 2·IC(lcs(A,B)) / (IC(A) + IC(B))` (Eq. 3), with the IC
//!   chosen by the query context (per-context corpus frequencies), the
//!   aggregate over contexts when no context is available, or the
//!   intrinsic structural IC when the corpus signal is disabled
//!   (QR-no-corpus); multiple equidistant LCSs contribute their *average*
//!   IC (footnote 1), and
//! * `p_{A,B}` is the Eq. 4 direction-weighted path factor computed from
//!   the LCS-routed path: `dist_a` generalizations from the query concept
//!   up, then `dist_b` specializations down.

use medkb_ekg::lcs::{lcs, lcs_with_upward_scratch, LcsOutcome};
use medkb_ekg::{Ekg, PathSummary, ReachabilityIndex, UpwardDistances, UpwardScratch};
use medkb_snomed::ContextTag;
use medkb_types::ExtConceptId;

use crate::config::RelaxConfig;
use crate::frequency::Frequencies;

/// Scores candidate concepts against a query concept per Eq. 5.
#[derive(Debug, Clone, Copy)]
pub struct QrScorer<'a> {
    ekg: &'a Ekg,
    freqs: &'a Frequencies,
    config: &'a RelaxConfig,
}

/// A scored breakdown, useful for explanation surfaces and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBreakdown {
    /// Eq. 3 value.
    pub sim_ic: f64,
    /// Eq. 4 value.
    pub path_weight: f64,
    /// Eq. 5 value (`sim_ic × path_weight`).
    pub score: f64,
    /// The LCS outcome the score was derived from.
    pub lcs: LcsOutcome,
}

impl<'a> QrScorer<'a> {
    /// A scorer over the given graph, frequencies, and configuration.
    pub fn new(ekg: &'a Ekg, freqs: &'a Frequencies, config: &'a RelaxConfig) -> Self {
        Self { ekg, freqs, config }
    }

    /// The IC of a concept under the active configuration and context.
    pub fn ic(&self, c: ExtConceptId, tag: Option<ContextTag>) -> f64 {
        let ic = if self.config.use_corpus {
            let effective = if self.config.use_context { tag } else { None };
            self.freqs.ic(c, effective)
        } else {
            self.freqs.intrinsic_ic(c)
        };
        // Degenerate corpora/graphs are mapped to finite ICs upstream
        // (frequency.rs); a NaN/∞ here would silently poison Eq. 3–5.
        debug_assert!(ic.is_finite(), "non-finite IC {ic} for {c:?} (tag {tag:?})");
        ic
    }

    /// Eq. 5 for `(query, candidate)` in the given context.
    pub fn score(&self, query: ExtConceptId, candidate: ExtConceptId, tag: Option<ContextTag>) -> f64 {
        self.breakdown(query, candidate, tag).score
    }

    /// Eq. 5 with its constituents exposed.
    pub fn breakdown(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: Option<ContextTag>,
    ) -> ScoreBreakdown {
        let out = lcs(self.ekg, query, candidate);
        let sim_ic = self.sim_ic_from(&out, query, candidate, tag);
        let path_weight = if self.config.use_path_weight {
            PathSummary { ups: out.dist_a, downs: out.dist_b }
                .weight(self.config.w_gen, self.config.w_spec)
        } else {
            1.0
        };
        debug_assert!(
            (sim_ic * path_weight).is_finite(),
            "non-finite score: sim_ic {sim_ic}, path_weight {path_weight}"
        );
        ScoreBreakdown { sim_ic, path_weight, score: sim_ic * path_weight, lcs: out }
    }

    /// Eq. 3 from a precomputed LCS outcome.
    pub fn sim_ic_from(
        &self,
        out: &LcsOutcome,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: Option<ContextTag>,
    ) -> f64 {
        let lcs_ic: f64 = out.concepts.iter().map(|&c| self.ic(c, tag)).sum::<f64>()
            / out.concepts.len() as f64;
        let denom = self.ic(query, tag) + self.ic(candidate, tag);
        if denom <= 0.0 {
            // Both concepts carry no information (e.g. both are the root):
            // they are indistinguishable, hence maximally similar.
            return 1.0;
        }
        (2.0 * lcs_ic / denom).clamp(0.0, 1.0)
    }

    /// Fix the query concept and context, amortizing the query-side upward
    /// Dijkstra and IC lookup over every candidate scored against it.
    ///
    /// `reach` must be the closure of `ekg` (built at ingestion). Scores
    /// are identical to the corresponding [`QrScorer::score`] calls.
    pub fn query_scoped(
        &self,
        query: ExtConceptId,
        tag: Option<ContextTag>,
        reach: &'a ReachabilityIndex,
    ) -> QueryScorer<'a> {
        QueryScorer {
            base: *self,
            reach,
            up_q: self.ekg.upward_distances_from(query),
            ic_query: self.ic(query, tag),
            tag,
            scratch: UpwardScratch::new(),
        }
    }
}

/// [`QrScorer`] specialized to one `(query, context)` pair — the engine
/// behind candidate loops: the query-side upward distances and IC are
/// computed once at construction, each [`QueryScorer::score`] then costs
/// one candidate-side Dijkstra plus dense probes.
#[derive(Debug, Clone)]
pub struct QueryScorer<'a> {
    base: QrScorer<'a>,
    reach: &'a ReachabilityIndex,
    up_q: UpwardDistances,
    ic_query: f64,
    tag: Option<ContextTag>,
    /// Candidate-side Dijkstra storage, reused across `score` calls.
    scratch: UpwardScratch,
}

impl<'a> QueryScorer<'a> {
    /// The query concept this scorer is bound to.
    pub fn query(&self) -> ExtConceptId {
        self.up_q.source()
    }

    /// Eq. 5 for `(query, candidate)`; equals
    /// `QrScorer::score(query, candidate, tag)`.
    pub fn score(&mut self, candidate: ExtConceptId) -> f64 {
        self.breakdown(candidate).score
    }

    /// Eq. 5 with its constituents exposed.
    pub fn breakdown(&mut self, candidate: ExtConceptId) -> ScoreBreakdown {
        let out = lcs_with_upward_scratch(
            self.base.ekg,
            self.reach,
            &self.up_q,
            candidate,
            &mut self.scratch,
        );
        let sim_ic = self.sim_ic_from(&out, candidate);
        let path_weight = if self.base.config.use_path_weight {
            PathSummary { ups: out.dist_a, downs: out.dist_b }
                .weight(self.base.config.w_gen, self.base.config.w_spec)
        } else {
            1.0
        };
        debug_assert!(
            (sim_ic * path_weight).is_finite(),
            "non-finite score: sim_ic {sim_ic}, path_weight {path_weight}"
        );
        ScoreBreakdown { sim_ic, path_weight, score: sim_ic * path_weight, lcs: out }
    }

    fn sim_ic_from(&self, out: &LcsOutcome, candidate: ExtConceptId) -> f64 {
        let lcs_ic: f64 = out.concepts.iter().map(|&c| self.base.ic(c, self.tag)).sum::<f64>()
            / out.concepts.len() as f64;
        let denom = self.ic_query + self.base.ic(candidate, self.tag);
        if denom <= 0.0 {
            return 1.0;
        }
        (2.0 * lcs_ic / denom).clamp(0.0, 1.0)
    }

    /// Precompute the [`ScoreBounds`] tables for this query over candidates
    /// at BFS hop ≤ `max_h` and native depth ≤ `max_dc`.
    ///
    /// Only valid when every Eq. 4 step weight is ≤ 1 (or path weighting is
    /// off) — the relaxation engine gates pruning on exactly that condition.
    pub fn bounds(&self, max_h: u32, max_dc: u32) -> ScoreBounds {
        let config = self.base.config;
        let (bg, wmax) = if config.use_path_weight {
            (config.w_gen, config.w_gen.max(config.w_spec))
        } else {
            (1.0, 1.0)
        };
        debug_assert!(
            bg <= 1.0 && wmax <= 1.0,
            "score bounds require step weights <= 1, got w_gen {bg} / max {wmax}"
        );
        let min_ic = if config.use_corpus {
            let effective = if config.use_context { self.tag } else { None };
            self.base.freqs.min_ic(effective)
        } else {
            self.base.freqs.min_intrinsic_ic()
        };

        // Potential LCS members with their query-side distance and native
        // depth: the strict ancestors for every candidate, plus the query
        // itself (`da = 0`) when the candidate is a descendant.
        let depth_q = self.base.ekg.depth(self.up_q.source());
        let ancestors: Vec<(ExtConceptId, f64, u32, u32)> = self
            .up_q
            .iter()
            .map(|(a, da)| (a, self.base.ic(a, self.tag), da, self.base.ekg.depth(a)))
            .collect();

        let (hh, dd) = (max_h as usize + 1, max_dc as usize + 1);
        // Largest unit-step distance any member's lower bound can reach.
        let max_e = ancestors
            .iter()
            .map(|&(_, _, da, _)| da as usize + max_dc as usize)
            .max()
            .unwrap_or(0)
            .max(max_h as usize)
            .max(max_dc as usize);
        // bg^e and wmax^T(e) ladders (T(e) = e(e−1)/2, the Eq. 4 exponent
        // sum of a length-e path), so table fill is O(members × h × dc)
        // multiplies with no powi in the loop.
        let mut bg_pow = vec![1.0f64; max_e + 1];
        for e in 1..=max_e {
            bg_pow[e] = bg_pow[e - 1] * bg;
        }
        let mut wmax_tri = vec![1.0f64; max_e + 1];
        let mut run = 1.0f64;
        for e in 1..=max_e {
            wmax_tri[e] = wmax_tri[e - 1] * run;
            run *= wmax;
        }

        let mut g_nd = vec![0.0f64; hh * dd];
        let mut g_d = vec![0.0f64; hh * dd];
        for h in 0..hh {
            for dc in 0..dd {
                // Unit-step distance the LCS path must cover if `a` is a
                // member: at least the BFS hop count, and at least `a`'s
                // own up-leg plus the depth gap down to the candidate.
                let e_for = |da: u32, depth_a: u32| {
                    h.max(da as usize + (dc).saturating_sub(depth_a as usize))
                };
                let (mut nd, mut d) = (0.0f64, 0.0f64);
                for &(_, ic, da, depth_a) in &ancestors {
                    let e = e_for(da, depth_a);
                    nd = nd.max(ic * bg_pow[e - 1]);
                    d = d.max(ic * wmax_tri[e]);
                }
                // The query itself can only subsume descendant candidates.
                d = d.max(self.ic_query * wmax_tri[e_for(0, depth_q)]);
                g_nd[h * dd + dc] = nd;
                g_d[h * dd + dc] = d;
            }
        }

        let nd_path: Vec<f64> =
            (0..hh).map(|h| bg_pow[h.saturating_sub(1)]).collect();
        let d_path: Vec<f64> = (0..hh).map(|h| wmax_tri[h]).collect();
        ScoreBounds {
            max_h: max_h as usize,
            max_dc: max_dc as usize,
            nd_path,
            d_path,
            g_nd,
            g_d,
            members: ancestors,
            bg_pow,
            ic_query: self.ic_query,
            min_ic,
        }
    }
}

/// Inflation applied to every emitted bound: a relative cushion far above
/// any accumulated rounding in either the bound or the exact-score
/// expression tree, plus an absolute floor that keeps subnormal-range
/// products from rounding below their exact counterparts. Both only ever
/// *raise* a bound, so admissibility is preserved by construction.
fn inflate(v: f64) -> f64 {
    v * (1.0 + 1e-9) + 1e-300
}

/// Admissible per-candidate upper bounds on Eq. 5, computable from a
/// candidate's BFS ring, native depth, and dense IC entry alone — no
/// candidate-side Dijkstra, no LCS evaluation (DESIGN.md §13).
///
/// Derivation sketch (proof in DESIGN.md §13): every LCS member lies in
/// `{query} ∪ strict-ancestors(query)` (the query-scoped LCS probes the
/// query's upward table), all members share the same unit-step total `D`,
/// and `D ≥ h` (every customized-graph edge covers ≥ 1 unit step) as well
/// as `D ≥ da(m) + (depth(c) − depth(m))⁺` for each member `m`. With all
/// step weights ≤ 1, Eq. 4 is then capped by `w_gen^(D−1)` when the query
/// is not an ancestor of the candidate (the up-leg is ≥ 1, so the first —
/// largest — exponent is `D−1`) and by `wmax^(D(D−1)/2)` otherwise, and
/// Eq. 3 by `min(1, 2·max_m IC(m)/(IC(q)+IC(c)))`. Maximizing the coupled
/// product over the member pool yields the `G[h][depth]` tables below.
#[derive(Debug, Clone)]
pub struct ScoreBounds {
    max_h: usize,
    max_dc: usize,
    /// Eq. 4 cap per hop for non-descendant candidates: `w_gen^(h−1)`.
    nd_path: Vec<f64>,
    /// Eq. 4 cap per hop for descendant candidates: `wmax^T(h)`.
    d_path: Vec<f64>,
    /// `max_m IC(m)·w_gen^(E(m,h,dc)−1)` over strict ancestors, flattened
    /// `[h][dc]`; `E` is the member-conditioned lower bound on `D`.
    g_nd: Vec<f64>,
    /// Descendant counterpart (query included, triangular exponents).
    g_d: Vec<f64>,
    /// The member pool behind the tables — `(id, IC, da, depth)` per strict
    /// query ancestor — kept for the tier-2 [`ScoreBounds::refined_bound`].
    members: Vec<(ExtConceptId, f64, u32, u32)>,
    /// `w_gen^e` ladder shared by table fill and tier-2 refinement.
    bg_pow: Vec<f64>,
    ic_query: f64,
    /// Smallest IC any concept carries under the active selection — the
    /// worst-case denominator contribution for ring-level caps.
    min_ic: f64,
}

impl ScoreBounds {
    /// Upper bound on the Eq. 5 score of a candidate discovered at BFS hop
    /// `hops` with native depth `depth` and IC `ic_candidate`;
    /// `descendant` says whether the query subsumes it (one reachability
    /// bit probe). Guaranteed ≥ the exact [`QueryScorer::score`] value.
    pub fn upper_bound(
        &self,
        descendant: bool,
        hops: u32,
        depth: u32,
        ic_candidate: f64,
    ) -> f64 {
        let h = (hops as usize).min(self.max_h);
        let dc = (depth as usize).min(self.max_dc);
        let idx = h * (self.max_dc + 1) + dc;
        let (pw, g) = if descendant {
            (self.d_path[h], self.g_d[idx])
        } else {
            (self.nd_path[h], self.g_nd[idx])
        };
        let denom = self.ic_query + ic_candidate;
        inflate(if denom > 0.0 { pw.min(2.0 * g / denom) } else { pw })
    }

    /// Tier-2 bound for **non-descendant** candidates: the member pool is
    /// restricted to actual common subsumers of query and candidate — one
    /// reachability bit probe per strict query ancestor, still no
    /// candidate-side Dijkstra and no LCS evaluation.
    ///
    /// Admissible for the same reason the table bound is: every true LCS
    /// member of a non-descendant candidate is a strict query ancestor that
    /// subsumes (or equals) the candidate, so the restricted pool still
    /// contains all of them. Since it maximizes the *same* term values over
    /// a subset of the table's pool, the result is ≤ the corresponding
    /// [`ScoreBounds::upper_bound`] bitwise — the dominance chain
    /// `exact ≤ refined ≤ table ≤ ring_cap` holds under IEEE rounding.
    ///
    /// This is what makes the table bound's main slack — a deep, high-IC
    /// query ancestor that subsumes nothing near the candidate — disappear:
    /// for distant candidates the common subsumers are shallow and
    /// low-information, so the refined bound hugs the exact score.
    pub fn refined_bound(
        &self,
        reach: &ReachabilityIndex,
        candidate: ExtConceptId,
        hops: u32,
        depth: u32,
        ic_candidate: f64,
    ) -> f64 {
        let h = (hops as usize).min(self.max_h);
        let dc = (depth as usize).min(self.max_dc);
        let mut g = 0.0f64;
        for &(m, ic, da, depth_m) in &self.members {
            if m == candidate || reach.is_ancestor(m, candidate) {
                let e = h.max(da as usize + dc.saturating_sub(depth_m as usize));
                g = g.max(ic * self.bg_pow[e - 1]);
            }
        }
        let denom = self.ic_query + ic_candidate;
        inflate(if denom > 0.0 { self.nd_path[h].min(2.0 * g / denom) } else { self.nd_path[h] })
    }

    /// Upper bound on the score of *every* candidate at BFS hop ≥ `hops`,
    /// regardless of depth, IC, or descendant status. Nonincreasing in
    /// `hops`, and ≥ every [`ScoreBounds::upper_bound`] in those rings —
    /// bitwise, not just in exact arithmetic (each constituent is replaced
    /// by a monotone-dominating one under IEEE rounding).
    pub fn ring_cap(&self, hops: u32) -> f64 {
        let h = (hops as usize).min(self.max_h);
        let idx = h * (self.max_dc + 1);
        let denom = self.ic_query + self.min_ic;
        let cap = |pw: f64, g: f64| if denom > 0.0 { pw.min(2.0 * g / denom) } else { pw };
        inflate(cap(self.nd_path[h], self.g_nd[idx]).max(cap(self.d_path[h], self.g_d[idx])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrequencyMode;
    use medkb_corpus::MentionCounts;
    use medkb_snomed::figures::paper_fragment;
    use medkb_snomed::oracle::N_TAGS;
    use std::collections::HashMap;

    fn setup() -> (Ekg, Frequencies) {
        let f = paper_fragment();
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = treat;
            row[ContextTag::Risk.index()] = risk;
            direct.insert(f.concept(name), row);
        }
        // Give the respiratory subtree some treatment-context mentions so
        // its ICs are meaningful.
        for (name, count) in [
            ("pneumonia", 500u64),
            ("pneumonitis", 80),
            ("lung disease", 40),
            ("lower respiratory tract infection", 300),
            ("bronchitis", 700),
            ("respiratory disorder", 10),
        ] {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = count;
            direct.insert(f.concept(name), row);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 100);
        let freqs =
            Frequencies::compute(&f.ekg, &counts, FrequencyMode::PaperRecursive, false);
        (f.ekg, freqs)
    }

    #[test]
    fn identical_concepts_score_one() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let c = ekg.lookup_name("headache")[0];
        let b = s.breakdown(c, c, Some(ContextTag::Treatment));
        assert!((b.score - 1.0).abs() < 1e-12, "{b:?}");
    }

    #[test]
    fn figure6_asymmetry_query_side_generalization_penalized() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let pneumonia = ekg.lookup_name("pneumonia")[0];
        let lrti = ekg.lookup_name("lower respiratory tract infection")[0];
        let fwd = s.breakdown(pneumonia, lrti, Some(ContextTag::Treatment));
        let rev = s.breakdown(lrti, pneumonia, Some(ContextTag::Treatment));
        // Same sim_IC (Eq. 3 is symmetric)…
        assert!((fwd.sim_ic - rev.sim_ic).abs() < 1e-12);
        // …but the forward path (3 ups) is penalized more (0.9^6 vs 0.9^3).
        assert!((fwd.path_weight - 0.9f64.powi(6)).abs() < 1e-12);
        assert!((rev.path_weight - 0.9f64.powi(3)).abs() < 1e-12);
        assert!(fwd.score < rev.score);
    }

    #[test]
    fn sibling_with_more_specific_lcs_scores_higher() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let bronchitis = ekg.lookup_name("bronchitis")[0];
        let t = Some(ContextTag::Treatment);
        // headache and pain-in-throat share "pain of head and neck region";
        // headache and bronchitis only share the hierarchy head.
        assert!(s.score(headache, throat, t) > s.score(headache, bronchitis, t));
    }

    #[test]
    fn context_changes_scores() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let treat = s.score(headache, throat, Some(ContextTag::Treatment));
        let risk = s.score(headache, throat, Some(ContextTag::Risk));
        assert!((treat - risk).abs() > 1e-9, "contexts should differentiate: {treat} vs {risk}");
    }

    #[test]
    fn no_context_config_ignores_tag() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().no_context();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let a = s.score(headache, throat, Some(ContextTag::Treatment));
        let b = s.score(headache, throat, Some(ContextTag::Risk));
        let c = s.score(headache, throat, None);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_corpus_config_uses_intrinsic_ic() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().no_corpus();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        assert_eq!(s.ic(headache, Some(ContextTag::Treatment)), freqs.intrinsic_ic(headache));
    }

    #[test]
    fn plain_ic_baseline_has_unit_path_weight() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().ic_baseline();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let pneumonia = ekg.lookup_name("pneumonia")[0];
        let lrti = ekg.lookup_name("lower respiratory tract infection")[0];
        let b = s.breakdown(pneumonia, lrti, None);
        assert_eq!(b.path_weight, 1.0);
        assert_eq!(b.score, b.sim_ic);
    }

    #[test]
    fn query_scoped_scorer_matches_per_pair_scorer() {
        let (ekg, freqs) = setup();
        let reach = ReachabilityIndex::build(&ekg);
        let names =
            ["headache", "pain in throat", "bronchitis", "pneumonia", "fever", "kidney disease"];
        for config in
            [RelaxConfig::default(), RelaxConfig::default().no_context(), RelaxConfig::default().no_corpus()]
        {
            let s = QrScorer::new(&ekg, &freqs, &config);
            for tag in [Some(ContextTag::Treatment), Some(ContextTag::Risk), None] {
                for a in names {
                    let qa = ekg.lookup_name(a)[0];
                    let mut scoped = s.query_scoped(qa, tag, &reach);
                    for b in names {
                        let cb = ekg.lookup_name(b)[0];
                        let slow = s.breakdown(qa, cb, tag);
                        let fast = scoped.breakdown(cb);
                        assert_eq!(slow, fast, "{a}/{b} {tag:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn score_bounds_are_admissible_on_the_fragment() {
        let (ekg, freqs) = setup();
        let reach = ReachabilityIndex::build(&ekg);
        let configs = [
            RelaxConfig::default(),
            RelaxConfig::default().no_context(),
            RelaxConfig::default().no_corpus(),
            RelaxConfig::default().ic_baseline(),
        ];
        for config in &configs {
            let s = QrScorer::new(&ekg, &freqs, config);
            for tag in [Some(ContextTag::Treatment), Some(ContextTag::Risk), None] {
                for q in ekg.concepts() {
                    let neigh = ekg.neighborhood(q, 6);
                    let max_h = neigh.iter().map(|&(_, h)| h).max().unwrap_or(0);
                    let max_dc =
                        neigh.iter().map(|&(c, _)| ekg.depth(c)).max().unwrap_or(0);
                    let mut scoped = s.query_scoped(q, tag, &reach);
                    let bounds = scoped.bounds(max_h, max_dc);
                    for &(c, h) in &neigh {
                        let exact = scoped.score(c);
                        let descendant = reach.is_ancestor(q, c);
                        let b = bounds.upper_bound(descendant, h, ekg.depth(c), s.ic(c, tag));
                        assert!(
                            exact <= b,
                            "bound not admissible: {q:?}→{c:?} {tag:?} exact {exact} > bound {b}"
                        );
                        if !descendant {
                            let rb =
                                bounds.refined_bound(&reach, c, h, ekg.depth(c), s.ic(c, tag));
                            assert!(
                                exact <= rb,
                                "refined bound not admissible: {q:?}→{c:?} {tag:?} \
                                 exact {exact} > refined {rb}"
                            );
                            assert!(
                                rb <= b,
                                "refined bound must not exceed the table bound: \
                                 {q:?}→{c:?} refined {rb} > table {b}"
                            );
                        }
                        let cap = bounds.ring_cap(h);
                        assert!(b <= cap, "ring cap below bound: {q:?}→{c:?} {b} > {cap}");
                    }
                    for h in 1..max_h {
                        assert!(
                            bounds.ring_cap(h + 1) <= bounds.ring_cap(h),
                            "ring cap must be nonincreasing in the hop count"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let names =
            ["headache", "pain in throat", "bronchitis", "pneumonia", "fever", "kidney disease"];
        for a in names {
            for b in names {
                let (ca, cb) = (ekg.lookup_name(a)[0], ekg.lookup_name(b)[0]);
                let v = s.score(ca, cb, Some(ContextTag::Treatment));
                assert!((0.0..=1.0).contains(&v), "{a}/{b}: {v}");
            }
        }
    }
}
