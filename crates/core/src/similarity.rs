//! The novel similarity metric (Eq. 3–5, §5.2).
//!
//! `sim(A, B) = p_{A,B} × sim_IC(A, B)` where
//!
//! * `sim_IC(A,B) = 2·IC(lcs(A,B)) / (IC(A) + IC(B))` (Eq. 3), with the IC
//!   chosen by the query context (per-context corpus frequencies), the
//!   aggregate over contexts when no context is available, or the
//!   intrinsic structural IC when the corpus signal is disabled
//!   (QR-no-corpus); multiple equidistant LCSs contribute their *average*
//!   IC (footnote 1), and
//! * `p_{A,B}` is the Eq. 4 direction-weighted path factor computed from
//!   the LCS-routed path: `dist_a` generalizations from the query concept
//!   up, then `dist_b` specializations down.

use medkb_ekg::lcs::{lcs, lcs_with_upward_scratch, LcsOutcome};
use medkb_ekg::{Ekg, PathSummary, ReachabilityIndex, UpwardDistances, UpwardScratch};
use medkb_snomed::ContextTag;
use medkb_types::ExtConceptId;

use crate::config::RelaxConfig;
use crate::frequency::Frequencies;

/// Scores candidate concepts against a query concept per Eq. 5.
#[derive(Debug, Clone, Copy)]
pub struct QrScorer<'a> {
    ekg: &'a Ekg,
    freqs: &'a Frequencies,
    config: &'a RelaxConfig,
}

/// A scored breakdown, useful for explanation surfaces and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreBreakdown {
    /// Eq. 3 value.
    pub sim_ic: f64,
    /// Eq. 4 value.
    pub path_weight: f64,
    /// Eq. 5 value (`sim_ic × path_weight`).
    pub score: f64,
    /// The LCS outcome the score was derived from.
    pub lcs: LcsOutcome,
}

impl<'a> QrScorer<'a> {
    /// A scorer over the given graph, frequencies, and configuration.
    pub fn new(ekg: &'a Ekg, freqs: &'a Frequencies, config: &'a RelaxConfig) -> Self {
        Self { ekg, freqs, config }
    }

    /// The IC of a concept under the active configuration and context.
    pub fn ic(&self, c: ExtConceptId, tag: Option<ContextTag>) -> f64 {
        let ic = if self.config.use_corpus {
            let effective = if self.config.use_context { tag } else { None };
            self.freqs.ic(c, effective)
        } else {
            self.freqs.intrinsic_ic(c)
        };
        // Degenerate corpora/graphs are mapped to finite ICs upstream
        // (frequency.rs); a NaN/∞ here would silently poison Eq. 3–5.
        debug_assert!(ic.is_finite(), "non-finite IC {ic} for {c:?} (tag {tag:?})");
        ic
    }

    /// Eq. 5 for `(query, candidate)` in the given context.
    pub fn score(&self, query: ExtConceptId, candidate: ExtConceptId, tag: Option<ContextTag>) -> f64 {
        self.breakdown(query, candidate, tag).score
    }

    /// Eq. 5 with its constituents exposed.
    pub fn breakdown(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: Option<ContextTag>,
    ) -> ScoreBreakdown {
        let out = lcs(self.ekg, query, candidate);
        let sim_ic = self.sim_ic_from(&out, query, candidate, tag);
        let path_weight = if self.config.use_path_weight {
            PathSummary { ups: out.dist_a, downs: out.dist_b }
                .weight(self.config.w_gen, self.config.w_spec)
        } else {
            1.0
        };
        debug_assert!(
            (sim_ic * path_weight).is_finite(),
            "non-finite score: sim_ic {sim_ic}, path_weight {path_weight}"
        );
        ScoreBreakdown { sim_ic, path_weight, score: sim_ic * path_weight, lcs: out }
    }

    /// Eq. 3 from a precomputed LCS outcome.
    pub fn sim_ic_from(
        &self,
        out: &LcsOutcome,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: Option<ContextTag>,
    ) -> f64 {
        let lcs_ic: f64 = out.concepts.iter().map(|&c| self.ic(c, tag)).sum::<f64>()
            / out.concepts.len() as f64;
        let denom = self.ic(query, tag) + self.ic(candidate, tag);
        if denom <= 0.0 {
            // Both concepts carry no information (e.g. both are the root):
            // they are indistinguishable, hence maximally similar.
            return 1.0;
        }
        (2.0 * lcs_ic / denom).clamp(0.0, 1.0)
    }

    /// Fix the query concept and context, amortizing the query-side upward
    /// Dijkstra and IC lookup over every candidate scored against it.
    ///
    /// `reach` must be the closure of `ekg` (built at ingestion). Scores
    /// are identical to the corresponding [`QrScorer::score`] calls.
    pub fn query_scoped(
        &self,
        query: ExtConceptId,
        tag: Option<ContextTag>,
        reach: &'a ReachabilityIndex,
    ) -> QueryScorer<'a> {
        QueryScorer {
            base: *self,
            reach,
            up_q: self.ekg.upward_distances_from(query),
            ic_query: self.ic(query, tag),
            tag,
            scratch: UpwardScratch::new(),
        }
    }
}

/// [`QrScorer`] specialized to one `(query, context)` pair — the engine
/// behind candidate loops: the query-side upward distances and IC are
/// computed once at construction, each [`QueryScorer::score`] then costs
/// one candidate-side Dijkstra plus dense probes.
#[derive(Debug, Clone)]
pub struct QueryScorer<'a> {
    base: QrScorer<'a>,
    reach: &'a ReachabilityIndex,
    up_q: UpwardDistances,
    ic_query: f64,
    tag: Option<ContextTag>,
    /// Candidate-side Dijkstra storage, reused across `score` calls.
    scratch: UpwardScratch,
}

impl<'a> QueryScorer<'a> {
    /// The query concept this scorer is bound to.
    pub fn query(&self) -> ExtConceptId {
        self.up_q.source()
    }

    /// Eq. 5 for `(query, candidate)`; equals
    /// `QrScorer::score(query, candidate, tag)`.
    pub fn score(&mut self, candidate: ExtConceptId) -> f64 {
        self.breakdown(candidate).score
    }

    /// Eq. 5 with its constituents exposed.
    pub fn breakdown(&mut self, candidate: ExtConceptId) -> ScoreBreakdown {
        let out = lcs_with_upward_scratch(
            self.base.ekg,
            self.reach,
            &self.up_q,
            candidate,
            &mut self.scratch,
        );
        let sim_ic = self.sim_ic_from(&out, candidate);
        let path_weight = if self.base.config.use_path_weight {
            PathSummary { ups: out.dist_a, downs: out.dist_b }
                .weight(self.base.config.w_gen, self.base.config.w_spec)
        } else {
            1.0
        };
        debug_assert!(
            (sim_ic * path_weight).is_finite(),
            "non-finite score: sim_ic {sim_ic}, path_weight {path_weight}"
        );
        ScoreBreakdown { sim_ic, path_weight, score: sim_ic * path_weight, lcs: out }
    }

    fn sim_ic_from(&self, out: &LcsOutcome, candidate: ExtConceptId) -> f64 {
        let lcs_ic: f64 = out.concepts.iter().map(|&c| self.base.ic(c, self.tag)).sum::<f64>()
            / out.concepts.len() as f64;
        let denom = self.ic_query + self.base.ic(candidate, self.tag);
        if denom <= 0.0 {
            return 1.0;
        }
        (2.0 * lcs_ic / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrequencyMode;
    use medkb_corpus::MentionCounts;
    use medkb_snomed::figures::paper_fragment;
    use medkb_snomed::oracle::N_TAGS;
    use std::collections::HashMap;

    fn setup() -> (Ekg, Frequencies) {
        let f = paper_fragment();
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = treat;
            row[ContextTag::Risk.index()] = risk;
            direct.insert(f.concept(name), row);
        }
        // Give the respiratory subtree some treatment-context mentions so
        // its ICs are meaningful.
        for (name, count) in [
            ("pneumonia", 500u64),
            ("pneumonitis", 80),
            ("lung disease", 40),
            ("lower respiratory tract infection", 300),
            ("bronchitis", 700),
            ("respiratory disorder", 10),
        ] {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = count;
            direct.insert(f.concept(name), row);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 100);
        let freqs =
            Frequencies::compute(&f.ekg, &counts, FrequencyMode::PaperRecursive, false);
        (f.ekg, freqs)
    }

    #[test]
    fn identical_concepts_score_one() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let c = ekg.lookup_name("headache")[0];
        let b = s.breakdown(c, c, Some(ContextTag::Treatment));
        assert!((b.score - 1.0).abs() < 1e-12, "{b:?}");
    }

    #[test]
    fn figure6_asymmetry_query_side_generalization_penalized() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let pneumonia = ekg.lookup_name("pneumonia")[0];
        let lrti = ekg.lookup_name("lower respiratory tract infection")[0];
        let fwd = s.breakdown(pneumonia, lrti, Some(ContextTag::Treatment));
        let rev = s.breakdown(lrti, pneumonia, Some(ContextTag::Treatment));
        // Same sim_IC (Eq. 3 is symmetric)…
        assert!((fwd.sim_ic - rev.sim_ic).abs() < 1e-12);
        // …but the forward path (3 ups) is penalized more (0.9^6 vs 0.9^3).
        assert!((fwd.path_weight - 0.9f64.powi(6)).abs() < 1e-12);
        assert!((rev.path_weight - 0.9f64.powi(3)).abs() < 1e-12);
        assert!(fwd.score < rev.score);
    }

    #[test]
    fn sibling_with_more_specific_lcs_scores_higher() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let bronchitis = ekg.lookup_name("bronchitis")[0];
        let t = Some(ContextTag::Treatment);
        // headache and pain-in-throat share "pain of head and neck region";
        // headache and bronchitis only share the hierarchy head.
        assert!(s.score(headache, throat, t) > s.score(headache, bronchitis, t));
    }

    #[test]
    fn context_changes_scores() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let treat = s.score(headache, throat, Some(ContextTag::Treatment));
        let risk = s.score(headache, throat, Some(ContextTag::Risk));
        assert!((treat - risk).abs() > 1e-9, "contexts should differentiate: {treat} vs {risk}");
    }

    #[test]
    fn no_context_config_ignores_tag() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().no_context();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        let throat = ekg.lookup_name("pain in throat")[0];
        let a = s.score(headache, throat, Some(ContextTag::Treatment));
        let b = s.score(headache, throat, Some(ContextTag::Risk));
        let c = s.score(headache, throat, None);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn no_corpus_config_uses_intrinsic_ic() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().no_corpus();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let headache = ekg.lookup_name("headache")[0];
        assert_eq!(s.ic(headache, Some(ContextTag::Treatment)), freqs.intrinsic_ic(headache));
    }

    #[test]
    fn plain_ic_baseline_has_unit_path_weight() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default().ic_baseline();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let pneumonia = ekg.lookup_name("pneumonia")[0];
        let lrti = ekg.lookup_name("lower respiratory tract infection")[0];
        let b = s.breakdown(pneumonia, lrti, None);
        assert_eq!(b.path_weight, 1.0);
        assert_eq!(b.score, b.sim_ic);
    }

    #[test]
    fn query_scoped_scorer_matches_per_pair_scorer() {
        let (ekg, freqs) = setup();
        let reach = ReachabilityIndex::build(&ekg);
        let names =
            ["headache", "pain in throat", "bronchitis", "pneumonia", "fever", "kidney disease"];
        for config in
            [RelaxConfig::default(), RelaxConfig::default().no_context(), RelaxConfig::default().no_corpus()]
        {
            let s = QrScorer::new(&ekg, &freqs, &config);
            for tag in [Some(ContextTag::Treatment), Some(ContextTag::Risk), None] {
                for a in names {
                    let qa = ekg.lookup_name(a)[0];
                    let mut scoped = s.query_scoped(qa, tag, &reach);
                    for b in names {
                        let cb = ekg.lookup_name(b)[0];
                        let slow = s.breakdown(qa, cb, tag);
                        let fast = scoped.breakdown(cb);
                        assert_eq!(slow, fast, "{a}/{b} {tag:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let (ekg, freqs) = setup();
        let config = RelaxConfig::default();
        let s = QrScorer::new(&ekg, &freqs, &config);
        let names =
            ["headache", "pain in throat", "bronchitis", "pneumonia", "fever", "kidney disease"];
        for a in names {
            for b in names {
                let (ca, cb) = (ekg.lookup_name(a)[0], ekg.lookup_name(b)[0]);
                let v = s.score(ca, cb, Some(ContextTag::Treatment));
                assert!((0.0..=1.0).contains(&v), "{a}/{b}: {v}");
            }
        }
    }
}
