//! Online query relaxation (Algorithm 2, §5.2).

use std::collections::BinaryHeap;
use std::sync::Arc;

use medkb_ekg::NeighborhoodScan;
use medkb_obs::{Counter, Histogram, Registry};
use medkb_snomed::ContextTag;
use medkb_types::{ContextId, ExtConceptId, InstanceId, MedKbError, Result};

use crate::config::RelaxConfig;
use crate::ingest::IngestOutput;
use crate::similarity::QrScorer;

/// Metric names the relaxation engine registers (DESIGN.md §10). The
/// `bench_json` smoke assertions and the conformance tests reference these
/// rather than repeating string literals.
pub mod obs_names {
    /// Relaxation calls served (counter).
    pub const QUERIES: &str = "relax.queries";
    /// Concepts examined by the neighborhood scan (counter).
    pub const CANDIDATES_SCANNED: &str = "relax.candidates.scanned";
    /// Scanned concepts kept as flagged candidates (counter).
    pub const CANDIDATES_KEPT: &str = "relax.candidates.kept";
    /// Scanned concepts pruned for not being flagged (counter).
    pub const CANDIDATES_PRUNED: &str = "relax.candidates.pruned";
    /// Dynamic radius increments beyond the configured radius (counter).
    pub const RADIUS_GROWTHS: &str = "relax.radius.growths";
    /// Candidate-side LCS evaluations (counter).
    pub const LCS_EVALS: &str = "relax.lcs.evals";
    /// LCS evaluations that hit the amortized query-side upward-distance
    /// table instead of re-running the query-side Dijkstra. The table is
    /// built once per query *before* any candidate is scored, so every
    /// scoped evaluation — including the first — reuses it, and this
    /// counter always equals [`LCS_EVALS`] (pinned by
    /// `tests/obs_conformance.rs`); the reference twin, by contrast, pays
    /// the query-side Dijkstra once per pair (counter).
    pub const LCS_QUERY_REUSE: &str = "relax.lcs.query_side_reuse";
    /// Candidates whose admissible Eq. 5 upper bound could not beat the
    /// provisional k-th answer, skipped without an LCS evaluation
    /// (counter; zero when [`crate::config::RelaxConfig::pruning`] is off
    /// or the config falls outside the bound derivation). Invariant:
    /// [`LCS_EVALS`] + this == [`CANDIDATES_KEPT`], pinned by
    /// `tests/obs_conformance.rs`.
    pub const BOUND_SKIPS: &str = "relax.lcs.bound_skips";
    /// Whole BFS rings abandoned because the ring-level cap fell below the
    /// provisional k-th answer (counter).
    pub const RINGS_TERMINATED: &str = "relax.rings.terminated";
    /// How tight the bound was on candidates that *were* evaluated:
    /// `round(100 · exact / bound)` per evaluation (histogram). Values
    /// near 100 mean the bound is nearly exact where it matters.
    pub const BOUND_TIGHTNESS_PCT: &str = "relax.bound.tightness_pct";
    /// Query terms that resolved to no external concept (counter).
    pub const RESOLVE_NOT_FOUND: &str = "relax.resolve.not_found";
    /// Per-query end-to-end latency (µs histogram).
    pub const LATENCY_US: &str = "relax.latency_us";
    /// Batch entry-point invocations (counter).
    pub const BATCH_CALLS: &str = "relax.batch.calls";
    /// Queries submitted through the batch entry points (counter).
    pub const BATCH_QUERIES: &str = "relax.batch.queries";
    /// Shards the batch entry points spawned (counter).
    pub const BATCH_SHARDS: &str = "relax.batch.shards";
    /// Queries per spawned shard (histogram — shard utilization).
    pub const BATCH_SHARD_SIZE: &str = "relax.batch.shard_size";
}

/// Bucket bounds for the shard-size histogram: shard sizes are small
/// integers, so a fine linear-ish ladder reads better than the latency
/// decades.
const SHARD_SIZE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Bucket bounds for the bound-tightness histogram: percent of the bound
/// the exact score reached, with fine resolution near the top where a
/// useful bound lives.
const BOUND_TIGHTNESS_BOUNDS: &[u64] = &[10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100];

/// Pre-resolved metric handles — one mutex-guarded registry lookup per
/// name at engine construction, lock-free atomic recording afterwards.
#[derive(Debug, Clone)]
struct RelaxMetrics {
    queries: Arc<Counter>,
    candidates_scanned: Arc<Counter>,
    candidates_kept: Arc<Counter>,
    candidates_pruned: Arc<Counter>,
    radius_growths: Arc<Counter>,
    lcs_evals: Arc<Counter>,
    lcs_query_reuse: Arc<Counter>,
    bound_skips: Arc<Counter>,
    rings_terminated: Arc<Counter>,
    bound_tightness: Arc<Histogram>,
    resolve_not_found: Arc<Counter>,
    latency: Arc<Histogram>,
    batch_calls: Arc<Counter>,
    batch_queries: Arc<Counter>,
    batch_shards: Arc<Counter>,
    batch_shard_size: Arc<Histogram>,
}

impl RelaxMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            queries: registry.counter(obs_names::QUERIES),
            candidates_scanned: registry.counter(obs_names::CANDIDATES_SCANNED),
            candidates_kept: registry.counter(obs_names::CANDIDATES_KEPT),
            candidates_pruned: registry.counter(obs_names::CANDIDATES_PRUNED),
            radius_growths: registry.counter(obs_names::RADIUS_GROWTHS),
            lcs_evals: registry.counter(obs_names::LCS_EVALS),
            lcs_query_reuse: registry.counter(obs_names::LCS_QUERY_REUSE),
            bound_skips: registry.counter(obs_names::BOUND_SKIPS),
            rings_terminated: registry.counter(obs_names::RINGS_TERMINATED),
            bound_tightness: registry
                .histogram(obs_names::BOUND_TIGHTNESS_PCT, BOUND_TIGHTNESS_BOUNDS),
            resolve_not_found: registry.counter(obs_names::RESOLVE_NOT_FOUND),
            latency: registry.latency(obs_names::LATENCY_US),
            batch_calls: registry.counter(obs_names::BATCH_CALLS),
            batch_queries: registry.counter(obs_names::BATCH_QUERIES),
            batch_shards: registry.counter(obs_names::BATCH_SHARDS),
            batch_shard_size: registry.histogram(obs_names::BATCH_SHARD_SIZE, SHARD_SIZE_BOUNDS),
        }
    }
}

/// The full Eq. 1–5 derivation of one answer's score, attached to
/// [`RelaxedAnswer`] when [`crate::config::ObsConfig::explain`] is on.
/// This is what the golden-trace conformance suite snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreExplain {
    /// Eq. 1 IC of the query concept under the active context/config.
    pub ic_query: f64,
    /// Eq. 1 IC of the candidate concept.
    pub ic_candidate: f64,
    /// Average Eq. 1 IC over the LCS set (footnote 1).
    pub ic_lcs: f64,
    /// Eq. 2 normalized context frequency of the query concept (the
    /// aggregate over contexts when no context applies).
    pub freq_query: f64,
    /// Eq. 2 normalized context frequency of the candidate concept.
    pub freq_candidate: f64,
    /// The least common subsumers the score routed through.
    pub lcs: Vec<ExtConceptId>,
    /// Eq. 4 generalization steps (query concept up to the LCS level).
    pub generalizations: u32,
    /// Eq. 4 specialization steps (LCS level down to the candidate).
    pub specializations: u32,
    /// Eq. 3 context-aware IC similarity.
    pub sim_ic: f64,
    /// Eq. 4 direction-weighted path factor.
    pub path_weight: f64,
    /// Eq. 5 product — the answer's score before any relevance-feedback
    /// adjustment ([`RelaxedAnswer::score`] may additionally carry one).
    pub score: f64,
}

/// One relaxed answer: a flagged external concept with its score and the
/// KB instances it maps to.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxedAnswer {
    /// The semantically related external concept.
    pub concept: ExtConceptId,
    /// Eq. 5 similarity to the query concept.
    pub score: f64,
    /// Hop distance in the customized graph at which it was found.
    pub hops: u32,
    /// The KB instances mapped to the concept.
    pub instances: Vec<InstanceId>,
    /// The Eq. 1–5 derivation — populated only when
    /// [`crate::config::ObsConfig::explain`] is enabled.
    pub explain: Option<ScoreExplain>,
}

/// The outcome of one relaxation call.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxationResult {
    /// The external concept the query term resolved to.
    pub query_concept: ExtConceptId,
    /// The radius actually used (≥ the configured radius when dynamic
    /// growth kicked in).
    pub radius_used: u32,
    /// Ranked answers, best first, truncated at `k` *instances*.
    pub answers: Vec<RelaxedAnswer>,
}

impl RelaxationResult {
    /// The returned instances, flattened in rank order.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.answers.iter().flat_map(|a| a.instances.iter().copied()).collect()
    }

    /// The ranked concepts.
    pub fn concepts(&self) -> Vec<ExtConceptId> {
        self.answers.iter().map(|a| a.concept).collect()
    }
}

/// The one answer-ordering comparator every ranking surface shares — the
/// online path, the preserved reference twin, and the explicit-pool ranking
/// used by the evaluation harness (and, through them, the serving cache).
///
/// Order: score descending (`total_cmp` is a total order, and
/// [`RelaxConfig::validate`] rejects NaN weights before any scoring), then
/// hop distance ascending (nearer answers first among equals, Algorithm 2
/// line 3), then concept id ascending so exact ties break deterministically
/// across thread counts, caches, and twins.
pub fn rank_order(
    a: (f64, u32, ExtConceptId),
    b: (f64, u32, ExtConceptId),
) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

/// `f64` under `total_cmp` — lets [`rank_order`]'s score key live inside an
/// `Ord` sort key so it can be cached once per candidate instead of
/// re-derived on every comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Percent of the bound the exact score reached, for the tightness
/// histogram. Admissibility guarantees `exact ≤ bound`; a zero bound can
/// only pair with a zero score, which counts as perfectly tight.
fn tightness_pct(exact: f64, bound: f64) -> u64 {
    if bound > 0.0 {
        (100.0 * exact / bound).round().clamp(0.0, 100.0) as u64
    } else {
        100
    }
}

/// One provisional answer inside the bounded scan's heap. Ordered by
/// [`rank_order`] with the *worst*-ranked entry as the maximum, so
/// `BinaryHeap::peek`/`pop` expose the current cut-off candidate.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    score: f64,
    hops: u32,
    concept: ExtConceptId,
    instances: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        rank_order(
            (self.score, self.hops, self.concept),
            (other.score, other.hops, other.concept),
        )
    }
}

/// The online relaxation engine: owns the ingestion output and answers
/// `[query term, context]` inputs with top-k semantically related KB
/// instances.
#[derive(Debug, Clone)]
pub struct QueryRelaxer {
    ingested: IngestOutput,
    config: RelaxConfig,
    /// Pre-resolved handles when `config.obs.metrics` is set; `None` makes
    /// every record site one never-taken branch (no atomics, no timers).
    metrics: Option<RelaxMetrics>,
}

impl QueryRelaxer {
    /// Wrap an ingestion output with the runtime configuration.
    pub fn new(ingested: IngestOutput, config: RelaxConfig) -> Self {
        let metrics = config.obs.registry().map(RelaxMetrics::resolve);
        Self { ingested, config, metrics }
    }

    /// The ingestion artifacts (read access for integrations).
    pub fn ingested(&self) -> &IngestOutput {
        &self.ingested
    }

    /// The active configuration.
    pub fn config(&self) -> &RelaxConfig {
        &self.config
    }

    /// Resolve a query term to its external concept (Algorithm 2 line 1).
    ///
    /// With [`RelaxConfig::strip_modifiers`] enabled, a failed lookup
    /// retries with leading words dropped one at a time, all the way down
    /// to the final single word — users often prepend severity words the
    /// terminology does not carry (`"severe cough"` → `"cough"`,
    /// `"severe psychogenic fever"` → `"psychogenic fever"` → `"fever"`).
    /// The single-word suffix is a deliberate last resort: it only wins
    /// when every longer suffix missed, so a multi-word match always
    /// takes precedence over its own head noun.
    pub fn resolve_term(&self, term: &str) -> Result<ExtConceptId> {
        if let Some(c) = self.ingested.mapper.map(&self.ingested.ekg, term) {
            return Ok(c);
        }
        if self.config.strip_modifiers {
            let words = medkb_text::tokenize(term);
            for start in 1..words.len() {
                let stripped = words[start..].join(" ");
                if let Some(c) = self.ingested.mapper.map(&self.ingested.ekg, &stripped) {
                    return Ok(c);
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.resolve_not_found.inc();
        }
        Err(MedKbError::not_found("external concept", term))
    }

    /// Run Algorithm 2 for `[term, context]`, returning up to `k`
    /// instances' worth of ranked answers.
    ///
    /// # Errors
    /// [`MedKbError::NotFound`] if the term resolves to no external concept
    /// even under the configured approximate matcher, or
    /// [`MedKbError::InvalidArgument`] for `k = 0`.
    pub fn relax(&self, term: &str, context: Option<ContextId>, k: usize) -> Result<RelaxationResult> {
        let query = self.resolve_term(term)?;
        self.relax_concept(query, context, k)
    }

    /// Algorithm 2 starting from an already-resolved query concept.
    pub fn relax_concept(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
    ) -> Result<RelaxationResult> {
        self.relax_concept_with_feedback(query, context, k, None)
    }

    /// Algorithm 2 with relevance-feedback rescoring (§7.2's proposed
    /// extension; see [`crate::feedback`]). Pass `None` for plain Eq. 5.
    pub fn relax_concept_with_feedback(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
        feedback: Option<&crate::feedback::FeedbackStore>,
    ) -> Result<RelaxationResult> {
        // NaN weights would rank by NaN without failing (total_cmp is a
        // total order), so reject broken configs before any scoring.
        self.config.validate()?;
        if k == 0 {
            return Err(MedKbError::invalid("k must be positive"));
        }
        // The RAII span records the full call into `relax.latency_us` when
        // instrumentation is on; `None` otherwise — no timer read at all.
        let _span = self.metrics.as_ref().map(|m| m.latency.time());
        let tag: Option<ContextTag> = context.map(|c| self.ingested.tag(c));

        // Candidate gathering (line 2), with dynamic radius growth. The
        // scan keeps its BFS frontier alive across radius increments, so
        // growth pays only for each newly reached ring instead of
        // re-walking the whole neighborhood per radius.
        let initial_radius = self.config.radius.max(1);
        let mut radius = initial_radius;
        let mut scan = NeighborhoodScan::new(&self.ingested.ekg, query);
        let mut candidates: Vec<(ExtConceptId, u32)> = Vec::new();
        let mut reachable_instances = 0usize;
        let mut scanned = 0usize;
        loop {
            let processed = scan.discovered().len();
            scan.expand_to(radius);
            scanned += scan.discovered().len() - processed;
            for &(c, h) in &scan.discovered()[processed..] {
                if self.ingested.flagged.contains(&c) {
                    reachable_instances += self.ingested.instances(c).len();
                    candidates.push((c, h));
                }
            }
            if !self.config.dynamic_radius
                || reachable_instances >= k
                || radius >= self.config.max_radius
            {
                break;
            }
            radius += 1;
        }
        if let Some(m) = &self.metrics {
            m.queries.inc();
            m.candidates_scanned.add(scanned as u64);
            m.candidates_kept.add(candidates.len() as u64);
            m.candidates_pruned.add((scanned - candidates.len()) as u64);
            m.radius_growths.add(u64::from(radius - initial_radius));
        }
        if candidates.is_empty() {
            // Nothing to score — skip building the query-scoped tables.
            // Bit-identical to falling through (no candidates ⇒ no answers).
            return Ok(RelaxationResult { query_concept: query, radius_used: radius, answers: Vec::new() });
        }

        // Scoring and ranking (line 3): the query-scoped scorer amortizes
        // the query-side Dijkstra and IC over all candidates. With pruning
        // active, the bounded scan evaluates only candidates whose upper
        // bound can still reach the top-k; its output is the exhaustive
        // ranking's minimal answer prefix, bit for bit (DESIGN.md §13).
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scoped = scorer.query_scoped(query, tag, &self.ingested.reach);
        let scored: Vec<(ExtConceptId, u32, f64)> = if self.pruning_active(feedback) {
            self.scan_bounded(&scorer, &mut scoped, query, tag, &candidates, k)
        } else {
            // Exhaustive twin of the bounded scan. The query-side table is
            // built eagerly, before any candidate is scored, so every
            // evaluation — the first included — reuses it: reuse == evals
            // exactly, here trivially candidates.len() of each.
            if let Some(m) = &self.metrics {
                m.lcs_evals.add(candidates.len() as u64);
                m.lcs_query_reuse.add(candidates.len() as u64);
            }
            let mut scored: Vec<(ExtConceptId, u32, f64)> = candidates
                .into_iter()
                .map(|(concept, hops)| {
                    let mut score = scoped.score(concept);
                    if let (Some(store), Some(t)) = (feedback, tag) {
                        score *= store.adjustment(query, concept, t);
                    }
                    (concept, hops, score)
                })
                .collect();
            scored.sort_by(|a, b| rank_order((a.2, a.1, a.0), (b.2, b.1, b.0)));
            scored
        };

        // Result accumulation until k instances (lines 4–8); instance lists
        // are cloned only for the answers that survive the cut.
        let mut answers = Vec::new();
        let mut returned = 0usize;
        for (concept, hops, score) in scored {
            if returned >= k {
                break;
            }
            let instances = self.ingested.instances(concept);
            returned += instances.len();
            let explain = self
                .config
                .obs
                .explain
                .then(|| self.explain_answer(&scorer, &mut scoped, query, concept, tag));
            answers.push(RelaxedAnswer {
                concept,
                score,
                hops,
                instances: instances.to_vec(),
                explain,
            });
        }

        Ok(RelaxationResult { query_concept: query, radius_used: radius, answers })
    }

    /// Whether the score-bounded scan may run for this call. The bound
    /// derivation (DESIGN.md §13) requires every Eq. 4 step weight ≤ 1
    /// (validate() deliberately admits larger ones), and relevance
    /// feedback multiplies scores by `exp(λ·s)` which can exceed 1 — both
    /// fall back to the exhaustive scan so answers never drift.
    fn pruning_active(&self, feedback: Option<&crate::feedback::FeedbackStore>) -> bool {
        self.config.pruning
            && feedback.is_none()
            && (!self.config.use_path_weight
                || (self.config.w_gen <= 1.0 && self.config.w_spec <= 1.0))
    }

    /// The score-bounded top-k scan (DESIGN.md §13): walk candidates in
    /// BFS ring order keeping a heap of provisional answers whose worst
    /// element is the cut-off; once the heap covers `k` instances, skip
    /// the exact LCS evaluation of any candidate whose admissible upper
    /// bound is strictly below the cut, and abandon all remaining rings
    /// when the ring-level cap is.
    ///
    /// Returns the surviving candidates in [`rank_order`] — a list whose
    /// leading entries are exactly the exhaustive ranking's minimal
    /// `k`-instance prefix: a candidate is ever discarded (skip, ring
    /// termination, or heap trim) only while ≥ `k` instances' worth of
    /// *strictly better-ranked* candidates are present, which certifies it
    /// can never enter that prefix. Skips require `bound < cut` strictly,
    /// so exact score ties — which the concept-id key must break — are
    /// always evaluated, keeping answers bit-identical to the exhaustive
    /// twin.
    #[allow(clippy::too_many_arguments)]
    fn scan_bounded(
        &self,
        scorer: &QrScorer<'_>,
        scoped: &mut crate::similarity::QueryScorer<'_>,
        query: ExtConceptId,
        tag: Option<ContextTag>,
        candidates: &[(ExtConceptId, u32)],
        k: usize,
    ) -> Vec<(ExtConceptId, u32, f64)> {
        let ekg = &self.ingested.ekg;
        let reach = &self.ingested.reach;
        // Candidates arrive in BFS order, so hops are nondecreasing and
        // the table dimensions come from the last ring and deepest entry.
        let max_h = candidates.last().map(|&(_, h)| h).unwrap_or(0);
        let max_dc = candidates.iter().map(|&(c, _)| ekg.depth(c)).max().unwrap_or(0);
        let bounds = scoped.bounds(max_h, max_dc);

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut inst_sum = 0usize;
        let (mut evals, mut skips, mut rings) = (0u64, 0u64, 0u64);
        let mut idx = 0usize;
        while idx < candidates.len() {
            let (c, h) = candidates[idx];
            // The cut-off exists once the heap covers k instances; every
            // heap entry then outranks anything scoring strictly below it.
            let cut = if inst_sum >= k { heap.peek().map(|w| w.score) } else { None };
            let mut bound_at_eval = None;
            if let Some(cut) = cut {
                if idx > 0 && candidates[idx - 1].1 < h && bounds.ring_cap(h) < cut {
                    // Ring boundary, and even the cap over every candidate
                    // at hop ≥ h cannot reach the cut: the scan is settled.
                    skips += (candidates.len() - idx) as u64;
                    let mut last_ring = u32::MAX;
                    for &(_, rh) in &candidates[idx..] {
                        if rh != last_ring {
                            rings += 1;
                            last_ring = rh;
                        }
                    }
                    break;
                }
                let descendant = reach.is_ancestor(query, c);
                let (dc, ic) = (ekg.depth(c), scorer.ic(c, tag));
                let mut b = bounds.upper_bound(descendant, h, dc, ic);
                if b >= cut && !descendant {
                    // Tier 2: restrict the member pool to actual common
                    // subsumers (one bit probe per query ancestor) — far
                    // cheaper than the LCS eval it tries to avoid.
                    b = bounds.refined_bound(reach, c, h, dc, ic);
                }
                if b < cut {
                    skips += 1;
                    idx += 1;
                    continue;
                }
                bound_at_eval = Some(b);
            }
            let score = scoped.score(c);
            evals += 1;
            if let (Some(m), Some(b)) = (&self.metrics, bound_at_eval) {
                m.bound_tightness.record(tightness_pct(score, b));
            }
            let instances = self.ingested.instances(c).len();
            inst_sum += instances;
            heap.push(HeapEntry { score, hops: h, concept: c, instances });
            // Trim: drop the rank-worst entry while the rest still covers
            // k instances — everything remaining outranks it strictly, so
            // it can never reach the answer prefix.
            while let Some(w) = heap.peek() {
                if inst_sum - w.instances >= k {
                    inst_sum -= w.instances;
                    heap.pop();
                } else {
                    break;
                }
            }
            idx += 1;
        }
        debug_assert_eq!(evals + skips, candidates.len() as u64);
        if let Some(m) = &self.metrics {
            m.lcs_evals.add(evals);
            m.lcs_query_reuse.add(evals);
            m.bound_skips.add(skips);
            m.rings_terminated.add(rings);
        }
        let mut survivors: Vec<(ExtConceptId, u32, f64)> =
            heap.into_iter().map(|e| (e.concept, e.hops, e.score)).collect();
        survivors.sort_by(|a, b| rank_order((a.2, a.1, a.0), (b.2, b.1, b.0)));
        survivors
    }

    /// Build the [`ScoreExplain`] derivation for one surviving answer.
    /// Re-derives the breakdown for answers only (not every scanned
    /// candidate), so the explain path costs O(answers), and the scoring
    /// loop above stays identical whether or not explain is on.
    fn explain_answer(
        &self,
        scorer: &QrScorer<'_>,
        scoped: &mut crate::similarity::QueryScorer<'_>,
        query: ExtConceptId,
        candidate: ExtConceptId,
        tag: Option<ContextTag>,
    ) -> ScoreExplain {
        let b = scoped.breakdown(candidate);
        // Eq. 2 frequencies mirror the IC's context selection: the tag when
        // context use is on, the aggregate rollup otherwise.
        let effective = if self.config.use_context { tag } else { None };
        let freq_of = |c: ExtConceptId| match effective {
            Some(t) => self.ingested.freqs.freq(c, t),
            None => self.ingested.freqs.freq_aggregate(c),
        };
        let ic_lcs: f64 = b.lcs.concepts.iter().map(|&c| scorer.ic(c, tag)).sum::<f64>()
            / b.lcs.concepts.len() as f64;
        ScoreExplain {
            ic_query: scorer.ic(query, tag),
            ic_candidate: scorer.ic(candidate, tag),
            ic_lcs,
            freq_query: freq_of(query),
            freq_candidate: freq_of(candidate),
            lcs: b.lcs.concepts.clone(),
            generalizations: b.lcs.dist_a,
            specializations: b.lcs.dist_b,
            sim_ic: b.sim_ic,
            path_weight: b.path_weight,
            score: b.score,
        }
    }

    /// The pre-optimization Algorithm 2: re-runs the neighborhood BFS at
    /// every radius increment, scores each candidate with a fresh per-pair
    /// LCS (two `HashMap` Dijkstras + ancestor-walk pruning), and clones
    /// every candidate's instance list before ranking.
    ///
    /// Kept as the reference the optimized path is regression-tested and
    /// benchmarked against (`bench_json`, DESIGN.md §performance); not for
    /// production use.
    pub fn relax_concept_reference(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
    ) -> Result<RelaxationResult> {
        self.config.validate()?;
        if k == 0 {
            return Err(MedKbError::invalid("k must be positive"));
        }
        let tag: Option<ContextTag> = context.map(|c| self.ingested.tag(c));

        let mut radius = self.config.radius.max(1);
        let mut candidates: Vec<(ExtConceptId, u32)>;
        loop {
            candidates = self
                .ingested
                .ekg
                .neighborhood(query, radius)
                .into_iter()
                .filter(|(c, _)| self.ingested.flagged.contains(c))
                .collect();
            let reachable_instances: usize =
                candidates.iter().map(|(c, _)| self.ingested.instances(*c).len()).sum();
            if !self.config.dynamic_radius
                || reachable_instances >= k
                || radius >= self.config.max_radius
            {
                break;
            }
            radius += 1;
        }

        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scored: Vec<RelaxedAnswer> = candidates
            .into_iter()
            .map(|(concept, hops)| RelaxedAnswer {
                concept,
                score: scorer.score(query, concept, tag),
                hops,
                instances: self.ingested.instances(concept).to_vec(),
                explain: None,
            })
            .collect();
        scored.sort_by(|a, b| {
            rank_order((a.score, a.hops, a.concept), (b.score, b.hops, b.concept))
        });

        let mut answers = Vec::new();
        let mut returned = 0usize;
        for ans in scored {
            if returned >= k {
                break;
            }
            returned += ans.instances.len();
            answers.push(ans);
        }

        Ok(RelaxationResult { query_concept: query, radius_used: radius, answers })
    }

    /// Relax a batch of `[term, context]` inputs, sharding the queries
    /// across scoped threads. Results come back in input order and are
    /// identical to calling [`QueryRelaxer::relax`] per query.
    pub fn relax_batch(
        &self,
        queries: &[(&str, Option<ContextId>)],
        k: usize,
    ) -> Vec<Result<RelaxationResult>> {
        let threads = Self::default_threads(queries.len());
        self.shard_queries(queries, threads, |&(term, ctx)| self.relax(term, ctx, k))
    }

    /// [`QueryRelaxer::relax_batch`] over already-resolved query concepts.
    pub fn relax_concepts_batch(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
    ) -> Vec<Result<RelaxationResult>> {
        let threads = Self::default_threads(queries.len());
        self.relax_concepts_batch_with_threads(queries, k, threads)
    }

    /// [`QueryRelaxer::relax_concepts_batch`] with an explicit thread
    /// count (the scaling benchmarks sweep this).
    pub fn relax_concepts_batch_with_threads(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
        threads: usize,
    ) -> Vec<Result<RelaxationResult>> {
        self.shard_queries(queries, threads, |&(q, ctx)| self.relax_concept(q, ctx, k))
    }

    fn default_threads(n: usize) -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1))
    }

    /// Split `queries` into `threads` contiguous chunks, run `f` over each
    /// chunk on its own scoped thread, and reassemble results in input
    /// order. Determinism note: each query is processed independently, so
    /// chunking never changes any individual result.
    fn shard_queries<Q: Sync, T: Send>(
        &self,
        queries: &[Q],
        threads: usize,
        f: impl Fn(&Q) -> T + Sync,
    ) -> Vec<T> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(queries.len());
        let chunk = queries.len().div_ceil(threads);
        if let Some(m) = &self.metrics {
            m.batch_calls.inc();
            m.batch_queries.add(queries.len() as u64);
            m.batch_shards.add(queries.len().div_ceil(chunk) as u64);
            for shard in queries.chunks(chunk) {
                m.batch_shard_size.record(shard.len() as u64);
            }
        }
        if threads == 1 {
            return queries.iter().map(&f).collect();
        }
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move |_| shard.iter().map(f).collect::<Vec<T>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("relaxation shard"))
                .collect()
        })
        .expect("relaxation scope")
    }

    /// Render a human-readable explanation of why `candidate` scores as it
    /// does for `query` — the LCS, the context-sensitive information
    /// contents, and the Eq. 4 path factor. Integration surfaces (the CLI,
    /// the conversational engine's debugging view) show this to users.
    pub fn explain(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        context: Option<ContextId>,
    ) -> String {
        let tag = context.map(|c| self.ingested.tag(c));
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let b = scorer.breakdown(query, candidate, tag);
        let ekg = &self.ingested.ekg;
        let lcs_names: Vec<&str> = b.lcs.concepts.iter().map(|&c| ekg.name(c)).collect();
        let chain: Vec<&str> = medkb_ekg::path::concrete_path(ekg, query, candidate)
            .into_iter()
            .map(|c| ekg.name(c))
            .collect();
        format!(
            "sim({q}, {c}) = {score:.4}\n  path: {ups} generalization(s) + {downs} \
             specialization(s) via {{{lcs}}} → p = {p:.4} (w_gen = {wg}, w_spec = {ws})\n  \
             IC({q}) = {icq:.3}, IC({c}) = {icc:.3}{ctx} → sim_IC = {simic:.4}",
            q = ekg.name(query),
            c = ekg.name(candidate),
            score = b.score,
            ups = b.lcs.dist_a,
            downs = b.lcs.dist_b,
            lcs = lcs_names.join(", "),
            p = b.path_weight,
            wg = self.config.w_gen,
            ws = self.config.w_spec,
            icq = scorer.ic(query, tag),
            icc = scorer.ic(candidate, tag),
            ctx = match tag {
                Some(t) if self.config.use_context => format!(" in context {t:?}"),
                _ => " (aggregate over contexts)".to_string(),
            },
            simic = b.sim_ic,
        ) + &format!("\n  chain: {}", chain.join(" → "))
    }

    /// Rank an explicit candidate set against a query concept — used by the
    /// evaluation harness so every Table 2 method ranks the same pool.
    pub fn rank_candidates(
        &self,
        query: ExtConceptId,
        candidates: &[ExtConceptId],
        context: Option<ContextId>,
    ) -> Vec<(ExtConceptId, f64)> {
        let tag = context.map(|c| self.ingested.tag(c));
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scoped = scorer.query_scoped(query, tag, &self.ingested.reach);
        let mut scored: Vec<(ExtConceptId, f64)> =
            candidates.iter().map(|&c| (c, scoped.score(c))).collect();
        // An explicit pool carries no hop distances, so the shared
        // [`rank_order`] degenerates to score-descending-then-id — built
        // here as a cached key (one tuple per candidate) instead of
        // re-deriving both tuples on every comparison.
        scored.sort_by_cached_key(|&(c, s)| (std::cmp::Reverse(TotalF64(s)), c));
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingMethod;
    use crate::ingest::ingest;
    use medkb_corpus::MentionCounts;
    use medkb_snomed::figures::paper_fragment;
    use medkb_snomed::oracle::N_TAGS;
    use std::collections::HashMap;

    /// Fragment world: KB instances for the flagged fragment concepts, and
    /// fig-4-style counts extended over the respiratory subtree.
    fn relaxer() -> QueryRelaxer {
        let f = paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let indication = ob.concept("Indication");
        let risk = ob.concept("Risk");
        let drug = ob.concept("Drug");
        ob.relationship("treat", drug, indication);
        ob.relationship("cause", drug, risk);
        ob.relationship("hasFinding", indication, finding);
        ob.relationship("hasFinding", risk, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let fc = kb.ontology().lookup_concept("Finding").unwrap();
        for name in &f.flagged {
            kb.instance(name, fc);
        }
        let kb = kb.build().unwrap();

        let mut direct: HashMap<medkb_types::ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = treat;
            row[ContextTag::Risk.index()] = risk;
            direct.insert(f.concept(name), row);
        }
        for (name, t) in [
            ("pneumonia", 500u64),
            ("lower respiratory tract infection", 300),
            ("bronchitis", 700),
            ("kidney disease", 900),
            ("nephropathy", 400),
            ("renal impairment", 350),
            ("fever", 2000),
            ("hyperpyrexia", 150),
        ] {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = t;
            row[ContextTag::Risk.index()] = t / 3;
            direct.insert(f.concept(name), row);
        }
        // Hypothermia: mentioned, but (almost) never in treatment context
        // alongside fever drugs — risk-context mentions only.
        let mut row = [0u64; N_TAGS];
        row[ContextTag::Risk.index()] = 500;
        row[ContextTag::Treatment.index()] = 1;
        direct.insert(f.concept("hypothermia"), row);

        let counts = MentionCounts::from_direct(direct, HashMap::new(), 200);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
        QueryRelaxer::new(out, config)
    }

    fn treatment_ctx(r: &QueryRelaxer) -> ContextId {
        r.ingested()
            .contexts
            .iter()
            .find(|c| c.label == "Indication-hasFinding-Finding")
            .unwrap()
            .id
    }

    #[test]
    fn scenario1_pyelectasia_relaxes_to_kidney_disease() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("pyelectasia", Some(ctx), 5).unwrap();
        let names: Vec<&str> =
            res.answers.iter().map(|a| r.ingested().ekg.name(a.concept)).collect();
        assert!(
            names.contains(&"kidney disease") || names.contains(&"nephropathy"),
            "{names:?}"
        );
    }

    #[test]
    fn unknown_term_errors_under_exact_mapping() {
        let r = relaxer();
        assert!(matches!(
            r.relax("nonexistent condition", None, 3),
            Err(MedKbError::NotFound { .. })
        ));
        assert!(matches!(r.relax("fever", None, 0), Err(MedKbError::InvalidArgument { .. })));
    }

    #[test]
    fn results_sorted_by_score() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("headache", Some(ctx), 10).unwrap();
        for w in res.answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn k_bounds_returned_instances() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("fever", Some(ctx), 2).unwrap();
        // Each flagged fragment concept has exactly one instance, so at
        // most 2 answers are returned.
        assert!(res.instances().len() <= 2 + 1, "{:?}", res.instances());
        let res10 = r.relax("fever", Some(ctx), 10).unwrap();
        assert!(res10.instances().len() > res.instances().len());
    }

    #[test]
    fn dynamic_radius_grows_until_k() {
        let r = relaxer();
        // pertussis is far from every flagged concept: fixed radius 4 finds
        // few, dynamic growth must extend.
        let res = r.relax("pertussis", None, 5).unwrap();
        assert!(res.radius_used > r.config().radius, "used {}", res.radius_used);
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn fixed_radius_does_not_grow() {
        let mut r = relaxer();
        r.config.dynamic_radius = false;
        let res = r.relax("pertussis", None, 5).unwrap();
        assert_eq!(res.radius_used, r.config().radius);
    }

    #[test]
    fn context_trap_hypothermia_demoted_in_treatment_context() {
        let r = relaxer();
        let treat = treatment_ctx(&r);
        let res = r.relax("psychogenic fever", Some(treat), 10).unwrap();
        let ekg = &r.ingested().ekg;
        let names: Vec<&str> = res.answers.iter().map(|a| ekg.name(a.concept)).collect();
        let pos_hyper = names.iter().position(|&n| n == "hyperpyrexia");
        let pos_hypo = names.iter().position(|&n| n == "hypothermia");
        assert!(pos_hyper.is_some(), "{names:?}");
        if let (Some(hyper), Some(hypo)) = (pos_hyper, pos_hypo) {
            assert!(
                hyper < hypo,
                "in the treatment context hyperpyrexia must outrank hypothermia: {names:?}"
            );
        }
    }

    #[test]
    fn query_concept_itself_not_in_answers() {
        let r = relaxer();
        let res = r.relax("fever", None, 10).unwrap();
        assert!(res.answers.iter().all(|a| a.concept != res.query_concept));
    }

    #[test]
    fn strip_modifiers_recovers_decorated_terms() {
        let mut r = relaxer();
        assert!(r.resolve_term("very intense psychogenic fever").is_err());
        r.config.strip_modifiers = true;
        let c = r.resolve_term("very intense psychogenic fever").unwrap();
        assert_eq!(r.ingested().ekg.name(c), "psychogenic fever");
        // Still refuses when nothing suffixes to a known term.
        assert!(r.resolve_term("totally unknown thing").is_err());
    }

    /// Regression for the strip-modifiers loop bound: `1..len - 1` never
    /// fired for two-word terms and never retried the final single word.
    /// Covers 2-, 3-, and 4-word decorated terms.
    #[test]
    fn strip_modifiers_reaches_every_suffix_down_to_one_word() {
        let mut r = relaxer();
        r.config.strip_modifiers = true;
        // 2 words: the only possible strip is straight to the single word.
        let c = r.resolve_term("severe fever").unwrap();
        assert_eq!(r.ingested().ekg.name(c), "fever");
        // 3 words ending in a single known word: both intermediate
        // suffixes miss, the final single word resolves.
        let c = r.resolve_term("really bad pneumonia").unwrap();
        assert_eq!(r.ingested().ekg.name(c), "pneumonia");
        // 4 words: longest matching suffix wins before the single word is
        // ever consulted ("psychogenic fever" beats "fever").
        let c = r.resolve_term("very intense psychogenic fever").unwrap();
        assert_eq!(r.ingested().ekg.name(c), "psychogenic fever");
        // Single-word misses still refuse — stripping never invents terms.
        assert!(r.resolve_term("unknownword").is_err());
        assert!(r.resolve_term("utterly unknownword").is_err());
    }

    /// The fixed bound must hold through every relax entry point: term
    /// path, batch term path, and (for the resolved concept) the reference
    /// twin — all agree bit-for-bit on a two-word decorated term.
    #[test]
    fn stripped_terms_agree_across_all_entry_points() {
        let mut r = relaxer();
        r.config.strip_modifiers = true;
        let ctx = treatment_ctx(&r);
        for (term, k) in [("severe fever", 5), ("really bad pneumonia", 3)] {
            let via_term = r.relax(term, Some(ctx), k).unwrap();
            let q = r.resolve_term(term).unwrap();
            assert_eq!(via_term.query_concept, q);
            let via_concept = r.relax_concept(q, Some(ctx), k).unwrap();
            let via_reference = r.relax_concept_reference(q, Some(ctx), k).unwrap();
            assert_eq!(via_term, via_concept, "{term}");
            assert_eq!(via_term, via_reference, "{term}");
            // Term-level batch resolves through the same stripped path…
            for out in r.relax_batch(&[(term, Some(ctx)); 3], k) {
                assert_eq!(out.unwrap(), via_term, "{term}");
            }
            // …and the concept-level batch agrees at every thread count.
            for threads in [1, 2, 4] {
                for out in r.relax_concepts_batch_with_threads(&[(q, Some(ctx)); 3], k, threads)
                {
                    assert_eq!(out.unwrap(), via_term, "{term} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn explain_renders_the_breakdown() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let q = r.resolve_term("pneumonia").unwrap();
        let c = r.resolve_term("lower respiratory tract infection").unwrap();
        let text = r.explain(q, c, Some(ctx));
        assert!(text.contains("pneumonia"), "{text}");
        assert!(text.contains("generalization"), "{text}");
        assert!(text.contains("sim_IC"), "{text}");
        assert!(text.contains("Treatment"), "{text}");
        // The reverse direction explains a different path shape.
        let rev = r.explain(c, q, Some(ctx));
        assert_ne!(text, rev);
    }

    #[test]
    fn optimized_relax_matches_reference_implementation() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        for term in ["fever", "headache", "pneumonia", "pertussis", "psychogenic fever"] {
            let q = r.resolve_term(term).unwrap();
            for context in [None, Some(ctx)] {
                for k in [1, 3, 7, 50] {
                    let fast = r.relax_concept(q, context, k).unwrap();
                    let slow = r.relax_concept_reference(q, context, k).unwrap();
                    assert_eq!(fast, slow, "{term} ctx={context:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn relax_batch_matches_sequential_bit_identical() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let terms = ["fever", "headache", "pneumonia", "kidney disease", "bronchitis"];
        let queries: Vec<(ExtConceptId, Option<ContextId>)> = terms
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (r.resolve_term(t).unwrap(), if i % 2 == 0 { Some(ctx) } else { None })
            })
            .collect();
        let sequential: Vec<_> =
            queries.iter().map(|&(q, c)| r.relax_concept(q, c, 5).unwrap()).collect();
        for threads in [1, 2, 3, 8] {
            let batch = r.relax_concepts_batch_with_threads(&queries, 5, threads);
            let batch: Vec<_> = batch.into_iter().map(|res| res.unwrap()).collect();
            assert_eq!(batch, sequential, "threads={threads}");
        }
        // The term-level entry point agrees too, including error slots.
        let mut with_terms: Vec<(&str, Option<ContextId>)> =
            terms.iter().zip(&queries).map(|(&t, &(_, c))| (t, c)).collect();
        with_terms.push(("no such term", None));
        let batch = r.relax_batch(&with_terms, 5);
        assert_eq!(batch.len(), 6);
        for (res, expect) in batch.iter().zip(&sequential) {
            assert_eq!(res.as_ref().unwrap(), expect);
        }
        assert!(batch.last().unwrap().is_err());
    }

    #[test]
    fn metrics_observe_relaxation_and_batches() {
        let base = relaxer();
        let registry = medkb_obs::Registry::shared();
        let config = RelaxConfig {
            obs: crate::config::ObsConfig::with_registry(Arc::clone(&registry)),
            ..base.config().clone()
        };
        let r = QueryRelaxer::new(base.ingested().clone(), config);
        let ctx = treatment_ctx(&r);
        let res = r.relax("fever", Some(ctx), 5).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(obs_names::QUERIES), 1);
        assert!(snap.counter(obs_names::CANDIDATES_KEPT) as usize >= res.answers.len());
        assert_eq!(
            snap.counter(obs_names::CANDIDATES_SCANNED),
            snap.counter(obs_names::CANDIDATES_KEPT)
                + snap.counter(obs_names::CANDIDATES_PRUNED)
        );
        assert_eq!(snap.histogram_count(obs_names::LATENCY_US), 1);
        // The scoped scorer builds the query-side table before scoring, so
        // every evaluation reuses it: reuse == evals exactly.
        assert!(snap.counter(obs_names::LCS_EVALS) > 0);
        assert_eq!(
            snap.counter(obs_names::LCS_QUERY_REUSE),
            snap.counter(obs_names::LCS_EVALS)
        );

        // Batch entry points record shard utilization on top.
        let q = r.resolve_term("fever").unwrap();
        let queries = vec![(q, Some(ctx)); 4];
        for out in r.relax_concepts_batch_with_threads(&queries, 5, 2) {
            out.unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter(obs_names::BATCH_CALLS), 1);
        assert_eq!(snap.counter(obs_names::BATCH_QUERIES), 4);
        assert_eq!(snap.counter(obs_names::BATCH_SHARDS), 2);
        assert_eq!(snap.histogram_count(obs_names::BATCH_SHARD_SIZE), 2);
        assert_eq!(snap.counter(obs_names::QUERIES), 5);

        assert!(r.relax("no such term", None, 3).is_err());
        assert_eq!(registry.snapshot().counter(obs_names::RESOLVE_NOT_FOUND), 1);
        // The un-instrumented relaxer never touched the registry.
        let _ = base.relax("fever", Some(ctx), 5).unwrap();
        assert_eq!(registry.snapshot().counter(obs_names::QUERIES), 5);
    }

    #[test]
    fn explain_attaches_derivation_without_changing_results() {
        let base = relaxer();
        let mut config = base.config().clone();
        config.obs.explain = true;
        let r = QueryRelaxer::new(base.ingested().clone(), config);
        let ctx = treatment_ctx(&base);
        let plain = base.relax("headache", Some(ctx), 10).unwrap();
        let explained = r.relax("headache", Some(ctx), 10).unwrap();
        assert_eq!(plain.answers.len(), explained.answers.len());
        assert_eq!(plain.radius_used, explained.radius_used);
        for (p, e) in plain.answers.iter().zip(&explained.answers) {
            assert_eq!(p.concept, e.concept);
            assert_eq!(p.score, e.score);
            assert_eq!(p.instances, e.instances);
            assert!(p.explain.is_none());
            let ex = e.explain.as_ref().expect("explain attached");
            // The derivation reproduces the ranked score exactly and is
            // internally consistent (Eq. 5 = Eq. 3 × Eq. 4).
            assert_eq!(ex.score, e.score);
            assert_eq!(ex.sim_ic * ex.path_weight, ex.score);
            assert!(!ex.lcs.is_empty());
            assert!((0.0..=1.0).contains(&ex.freq_query));
            assert!((0.0..=1.0).contains(&ex.freq_candidate));
            assert!(ex.ic_query >= 0.0 && ex.ic_candidate >= 0.0);
        }
    }

    #[test]
    fn nan_config_rejected_at_every_entry_point() {
        let mut r = relaxer();
        let q = r.resolve_term("fever").unwrap();
        r.config.w_gen = f64::NAN;
        assert!(matches!(r.relax("fever", None, 3), Err(MedKbError::InvalidArgument { .. })));
        assert!(matches!(r.relax_concept(q, None, 3), Err(MedKbError::InvalidArgument { .. })));
        assert!(matches!(
            r.relax_concept_reference(q, None, 3),
            Err(MedKbError::InvalidArgument { .. })
        ));
        for out in r.relax_concepts_batch(&[(q, None), (q, None)], 3) {
            assert!(matches!(out, Err(MedKbError::InvalidArgument { .. })));
        }
    }

    #[test]
    fn exact_score_ties_break_by_concept_id_across_thread_counts() {
        // A perfectly symmetric star: every twin child of the root has the
        // same depth, descendant count, and mention counts, so all scores
        // tie exactly and only the concept-id key can order them. The
        // names are deliberately inserted out of alphabetical order so an
        // accidental name sort would fail the assertion.
        let twin_names = ["twin d", "twin b", "twin c", "twin a"];
        let mut eb = medkb_ekg::EkgBuilder::new();
        let root = eb.concept("root finding");
        let twins: Vec<ExtConceptId> = twin_names
            .iter()
            .map(|n| {
                let c = eb.concept(n);
                eb.is_a(c, root);
                c
            })
            .collect();
        let ekg = eb.build().unwrap();

        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        for name in twin_names {
            kb.instance(name, finding);
        }
        let kb = kb.build().unwrap();

        let mut direct: HashMap<medkb_types::ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &c in &twins {
            direct.insert(c, [7u64; N_TAGS]);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 10);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&kb, ekg, &counts, None, &config).unwrap();
        let r = QueryRelaxer::new(out, config);

        let q = r.resolve_term("root finding").unwrap();
        let res = r.relax_concept(q, None, 50).unwrap();
        assert_eq!(res.answers.len(), twins.len());
        let first = res.answers[0].score;
        assert!(
            res.answers.iter().all(|a| a.score == first && a.hops == 1),
            "world is not symmetric: {:?}",
            res.answers.iter().map(|a| (a.concept, a.score, a.hops)).collect::<Vec<_>>()
        );
        let ids: Vec<ExtConceptId> = res.answers.iter().map(|a| a.concept).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "exact ties must order by concept id");

        // Reference path and every batch thread count agree bit-identically.
        assert_eq!(r.relax_concept_reference(q, None, 50).unwrap(), res);
        let queries = vec![(q, None); 8];
        for threads in [1, 2, 4, 8] {
            for out in r.relax_concepts_batch_with_threads(&queries, 50, threads) {
                assert_eq!(out.unwrap(), res, "threads={threads}");
            }
        }
    }

    #[test]
    fn ring_termination_fires_and_stays_bit_identical() {
        // A flagged hop-1 parent nearly as specific as the query anchors
        // the cut close to 1.0, while every deeper flagged ancestor can
        // only reach the heap through Eq. 4 decay of 0.3 per
        // generalization step. The ring cap falls below the cut at the
        // first boundary past the parent, so the bounded scan must
        // abandon the remaining rings wholesale — and still match the
        // exhaustive twin bit for bit.
        let mut eb = medkb_ekg::EkgBuilder::new();
        let names: Vec<String> = (0..8).map(|i| format!("ancestor {i}")).collect();
        let query = eb.concept("query finding");
        let mut below = query;
        let ancestors: Vec<ExtConceptId> = names
            .iter()
            .map(|n| {
                let c = eb.concept(n);
                eb.is_a(below, c);
                below = c;
                c
            })
            .collect();
        let ekg = eb.build().unwrap();

        let mut ob = medkb_ontology::OntologyBuilder::new();
        ob.concept("Finding");
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let fc = kb.ontology().lookup_concept("Finding").unwrap();
        for n in &names {
            kb.instance(n, fc);
        }
        let kb = kb.build().unwrap();

        let mut direct: HashMap<medkb_types::ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        direct.insert(query, [10u64; N_TAGS]);
        // Ancestors get geometrically more common with height: the parent
        // keeps an IC close to the query's (cut ≈ 1), the tail goes
        // generic, and nothing past ring 1 can outrun the path decay.
        for (i, &a) in ancestors.iter().enumerate() {
            direct.insert(a, [12u64 << i; N_TAGS]);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 20_000);
        let config = RelaxConfig {
            mapping: MappingMethod::Exact,
            radius: 8,
            dynamic_radius: false,
            use_path_weight: true,
            w_gen: 0.3,
            w_spec: 0.3,
            ..RelaxConfig::default()
        };
        let out = ingest(&kb, ekg, &counts, None, &config).unwrap();

        let registry = medkb_obs::Registry::shared();
        let obs_cfg = RelaxConfig {
            obs: crate::config::ObsConfig::with_registry(Arc::clone(&registry)),
            ..config.clone()
        };
        let r = QueryRelaxer::new(out.clone(), obs_cfg);
        let q = r.resolve_term("query finding").unwrap();
        let res = r.relax_concept(q, None, 1).unwrap();
        assert_eq!(res.answers.len(), 1, "parent alone covers k=1");
        let snap = registry.snapshot();
        assert!(
            snap.counter(obs_names::RINGS_TERMINATED) > 0,
            "deep rings under 0.3 step weights must trip ring termination \
             (bound_skips={}, evals={})",
            snap.counter(obs_names::BOUND_SKIPS),
            snap.counter(obs_names::LCS_EVALS),
        );
        assert!(snap.counter(obs_names::BOUND_SKIPS) > 0);

        // The abandoned tail must never change an answer: the exhaustive
        // twin and the reference scan agree for every k, bit for bit.
        let off_cfg = RelaxConfig { pruning: false, ..config };
        let off = QueryRelaxer::new(out, off_cfg);
        for k in [1, 2, 5, 100] {
            let a = r.relax_concept(q, None, k).unwrap();
            let b = off.relax_concept(q, None, k).unwrap();
            assert_eq!(a, b, "k={k}: pruned diverged from exhaustive");
            assert_eq!(r.relax_concept_reference(q, None, k).unwrap(), a, "k={k}");
        }
    }

    #[test]
    fn rank_candidates_matches_relax_order() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("headache", Some(ctx), 50).unwrap();
        let pool: Vec<_> = res.answers.iter().map(|a| a.concept).collect();
        let ranked = r.rank_candidates(res.query_concept, &pool, Some(ctx));
        let reordered: Vec<_> = ranked.iter().map(|&(c, _)| c).collect();
        assert_eq!(pool, reordered);
    }
}
