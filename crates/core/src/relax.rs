//! Online query relaxation (Algorithm 2, §5.2).

use medkb_ekg::NeighborhoodScan;
use medkb_snomed::ContextTag;
use medkb_types::{ContextId, ExtConceptId, InstanceId, MedKbError, Result};

use crate::config::RelaxConfig;
use crate::ingest::IngestOutput;
use crate::similarity::QrScorer;

/// One relaxed answer: a flagged external concept with its score and the
/// KB instances it maps to.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxedAnswer {
    /// The semantically related external concept.
    pub concept: ExtConceptId,
    /// Eq. 5 similarity to the query concept.
    pub score: f64,
    /// Hop distance in the customized graph at which it was found.
    pub hops: u32,
    /// The KB instances mapped to the concept.
    pub instances: Vec<InstanceId>,
}

/// The outcome of one relaxation call.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxationResult {
    /// The external concept the query term resolved to.
    pub query_concept: ExtConceptId,
    /// The radius actually used (≥ the configured radius when dynamic
    /// growth kicked in).
    pub radius_used: u32,
    /// Ranked answers, best first, truncated at `k` *instances*.
    pub answers: Vec<RelaxedAnswer>,
}

impl RelaxationResult {
    /// The returned instances, flattened in rank order.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.answers.iter().flat_map(|a| a.instances.iter().copied()).collect()
    }

    /// The ranked concepts.
    pub fn concepts(&self) -> Vec<ExtConceptId> {
        self.answers.iter().map(|a| a.concept).collect()
    }
}

/// The online relaxation engine: owns the ingestion output and answers
/// `[query term, context]` inputs with top-k semantically related KB
/// instances.
#[derive(Debug, Clone)]
pub struct QueryRelaxer {
    ingested: IngestOutput,
    config: RelaxConfig,
}

impl QueryRelaxer {
    /// Wrap an ingestion output with the runtime configuration.
    pub fn new(ingested: IngestOutput, config: RelaxConfig) -> Self {
        Self { ingested, config }
    }

    /// The ingestion artifacts (read access for integrations).
    pub fn ingested(&self) -> &IngestOutput {
        &self.ingested
    }

    /// The active configuration.
    pub fn config(&self) -> &RelaxConfig {
        &self.config
    }

    /// Resolve a query term to its external concept (Algorithm 2 line 1).
    ///
    /// With [`RelaxConfig::strip_modifiers`] enabled, a failed lookup
    /// retries with leading words dropped one at a time (down to the last
    /// two words) — users often prepend severity words the terminology
    /// does not carry.
    pub fn resolve_term(&self, term: &str) -> Result<ExtConceptId> {
        if let Some(c) = self.ingested.mapper.map(&self.ingested.ekg, term) {
            return Ok(c);
        }
        if self.config.strip_modifiers {
            let words = medkb_text::tokenize(term);
            for start in 1..words.len().saturating_sub(1) {
                let stripped = words[start..].join(" ");
                if let Some(c) = self.ingested.mapper.map(&self.ingested.ekg, &stripped) {
                    return Ok(c);
                }
            }
        }
        Err(MedKbError::not_found("external concept", term))
    }

    /// Run Algorithm 2 for `[term, context]`, returning up to `k`
    /// instances' worth of ranked answers.
    ///
    /// # Errors
    /// [`MedKbError::NotFound`] if the term resolves to no external concept
    /// even under the configured approximate matcher, or
    /// [`MedKbError::InvalidArgument`] for `k = 0`.
    pub fn relax(&self, term: &str, context: Option<ContextId>, k: usize) -> Result<RelaxationResult> {
        let query = self.resolve_term(term)?;
        self.relax_concept(query, context, k)
    }

    /// Algorithm 2 starting from an already-resolved query concept.
    pub fn relax_concept(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
    ) -> Result<RelaxationResult> {
        self.relax_concept_with_feedback(query, context, k, None)
    }

    /// Algorithm 2 with relevance-feedback rescoring (§7.2's proposed
    /// extension; see [`crate::feedback`]). Pass `None` for plain Eq. 5.
    pub fn relax_concept_with_feedback(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
        feedback: Option<&crate::feedback::FeedbackStore>,
    ) -> Result<RelaxationResult> {
        if k == 0 {
            return Err(MedKbError::invalid("k must be positive"));
        }
        let tag: Option<ContextTag> = context.map(|c| self.ingested.tag(c));

        // Candidate gathering (line 2), with dynamic radius growth. The
        // scan keeps its BFS frontier alive across radius increments, so
        // growth pays only for each newly reached ring instead of
        // re-walking the whole neighborhood per radius.
        let mut radius = self.config.radius.max(1);
        let mut scan = NeighborhoodScan::new(&self.ingested.ekg, query);
        let mut candidates: Vec<(ExtConceptId, u32)> = Vec::new();
        let mut reachable_instances = 0usize;
        loop {
            let processed = scan.discovered().len();
            scan.expand_to(radius);
            for &(c, h) in &scan.discovered()[processed..] {
                if self.ingested.flagged.contains(&c) {
                    reachable_instances += self.ingested.instances(c).len();
                    candidates.push((c, h));
                }
            }
            if !self.config.dynamic_radius
                || reachable_instances >= k
                || radius >= self.config.max_radius
            {
                break;
            }
            radius += 1;
        }

        // Scoring and ranking (line 3): the query-scoped scorer amortizes
        // the query-side Dijkstra and IC over all candidates.
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scoped = scorer.query_scoped(query, tag, &self.ingested.reach);
        let mut scored: Vec<(ExtConceptId, u32, f64)> = candidates
            .into_iter()
            .map(|(concept, hops)| {
                let mut score = scoped.score(concept);
                if let (Some(store), Some(t)) = (feedback, tag) {
                    score *= store.adjustment(query, concept, t);
                }
                (concept, hops, score)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.2.total_cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.cmp(&b.0))
        });

        // Result accumulation until k instances (lines 4–8); instance lists
        // are cloned only for the answers that survive the cut.
        let mut answers = Vec::new();
        let mut returned = 0usize;
        for (concept, hops, score) in scored {
            if returned >= k {
                break;
            }
            let instances = self.ingested.instances(concept);
            returned += instances.len();
            answers.push(RelaxedAnswer { concept, score, hops, instances: instances.to_vec() });
        }

        Ok(RelaxationResult { query_concept: query, radius_used: radius, answers })
    }

    /// The pre-optimization Algorithm 2: re-runs the neighborhood BFS at
    /// every radius increment, scores each candidate with a fresh per-pair
    /// LCS (two `HashMap` Dijkstras + ancestor-walk pruning), and clones
    /// every candidate's instance list before ranking.
    ///
    /// Kept as the reference the optimized path is regression-tested and
    /// benchmarked against (`bench_json`, DESIGN.md §performance); not for
    /// production use.
    pub fn relax_concept_reference(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
    ) -> Result<RelaxationResult> {
        if k == 0 {
            return Err(MedKbError::invalid("k must be positive"));
        }
        let tag: Option<ContextTag> = context.map(|c| self.ingested.tag(c));

        let mut radius = self.config.radius.max(1);
        let mut candidates: Vec<(ExtConceptId, u32)>;
        loop {
            candidates = self
                .ingested
                .ekg
                .neighborhood(query, radius)
                .into_iter()
                .filter(|(c, _)| self.ingested.flagged.contains(c))
                .collect();
            let reachable_instances: usize =
                candidates.iter().map(|(c, _)| self.ingested.instances(*c).len()).sum();
            if !self.config.dynamic_radius
                || reachable_instances >= k
                || radius >= self.config.max_radius
            {
                break;
            }
            radius += 1;
        }

        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scored: Vec<RelaxedAnswer> = candidates
            .into_iter()
            .map(|(concept, hops)| RelaxedAnswer {
                concept,
                score: scorer.score(query, concept, tag),
                hops,
                instances: self.ingested.instances(concept).to_vec(),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.hops.cmp(&b.hops))
                .then(a.concept.cmp(&b.concept))
        });

        let mut answers = Vec::new();
        let mut returned = 0usize;
        for ans in scored {
            if returned >= k {
                break;
            }
            returned += ans.instances.len();
            answers.push(ans);
        }

        Ok(RelaxationResult { query_concept: query, radius_used: radius, answers })
    }

    /// Relax a batch of `[term, context]` inputs, sharding the queries
    /// across scoped threads. Results come back in input order and are
    /// identical to calling [`QueryRelaxer::relax`] per query.
    pub fn relax_batch(
        &self,
        queries: &[(&str, Option<ContextId>)],
        k: usize,
    ) -> Vec<Result<RelaxationResult>> {
        let threads = Self::default_threads(queries.len());
        self.shard_queries(queries, threads, |&(term, ctx)| self.relax(term, ctx, k))
    }

    /// [`QueryRelaxer::relax_batch`] over already-resolved query concepts.
    pub fn relax_concepts_batch(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
    ) -> Vec<Result<RelaxationResult>> {
        let threads = Self::default_threads(queries.len());
        self.relax_concepts_batch_with_threads(queries, k, threads)
    }

    /// [`QueryRelaxer::relax_concepts_batch`] with an explicit thread
    /// count (the scaling benchmarks sweep this).
    pub fn relax_concepts_batch_with_threads(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
        threads: usize,
    ) -> Vec<Result<RelaxationResult>> {
        self.shard_queries(queries, threads, |&(q, ctx)| self.relax_concept(q, ctx, k))
    }

    fn default_threads(n: usize) -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1))
    }

    /// Split `queries` into `threads` contiguous chunks, run `f` over each
    /// chunk on its own scoped thread, and reassemble results in input
    /// order. Determinism note: each query is processed independently, so
    /// chunking never changes any individual result.
    fn shard_queries<Q: Sync, T: Send>(
        &self,
        queries: &[Q],
        threads: usize,
        f: impl Fn(&Q) -> T + Sync,
    ) -> Vec<T> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(queries.len());
        if threads == 1 {
            return queries.iter().map(&f).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|shard| {
                    let f = &f;
                    scope.spawn(move |_| shard.iter().map(f).collect::<Vec<T>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("relaxation shard"))
                .collect()
        })
        .expect("relaxation scope")
    }

    /// Render a human-readable explanation of why `candidate` scores as it
    /// does for `query` — the LCS, the context-sensitive information
    /// contents, and the Eq. 4 path factor. Integration surfaces (the CLI,
    /// the conversational engine's debugging view) show this to users.
    pub fn explain(
        &self,
        query: ExtConceptId,
        candidate: ExtConceptId,
        context: Option<ContextId>,
    ) -> String {
        let tag = context.map(|c| self.ingested.tag(c));
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let b = scorer.breakdown(query, candidate, tag);
        let ekg = &self.ingested.ekg;
        let lcs_names: Vec<&str> = b.lcs.concepts.iter().map(|&c| ekg.name(c)).collect();
        let chain: Vec<&str> = medkb_ekg::path::concrete_path(ekg, query, candidate)
            .into_iter()
            .map(|c| ekg.name(c))
            .collect();
        format!(
            "sim({q}, {c}) = {score:.4}\n  path: {ups} generalization(s) + {downs} \
             specialization(s) via {{{lcs}}} → p = {p:.4} (w_gen = {wg}, w_spec = {ws})\n  \
             IC({q}) = {icq:.3}, IC({c}) = {icc:.3}{ctx} → sim_IC = {simic:.4}",
            q = ekg.name(query),
            c = ekg.name(candidate),
            score = b.score,
            ups = b.lcs.dist_a,
            downs = b.lcs.dist_b,
            lcs = lcs_names.join(", "),
            p = b.path_weight,
            wg = self.config.w_gen,
            ws = self.config.w_spec,
            icq = scorer.ic(query, tag),
            icc = scorer.ic(candidate, tag),
            ctx = match tag {
                Some(t) if self.config.use_context => format!(" in context {t:?}"),
                _ => " (aggregate over contexts)".to_string(),
            },
            simic = b.sim_ic,
        ) + &format!("\n  chain: {}", chain.join(" → "))
    }

    /// Rank an explicit candidate set against a query concept — used by the
    /// evaluation harness so every Table 2 method ranks the same pool.
    pub fn rank_candidates(
        &self,
        query: ExtConceptId,
        candidates: &[ExtConceptId],
        context: Option<ContextId>,
    ) -> Vec<(ExtConceptId, f64)> {
        let tag = context.map(|c| self.ingested.tag(c));
        let scorer = QrScorer::new(&self.ingested.ekg, &self.ingested.freqs, &self.config);
        let mut scoped = scorer.query_scoped(query, tag, &self.ingested.reach);
        let mut scored: Vec<(ExtConceptId, f64)> =
            candidates.iter().map(|&c| (c, scoped.score(c))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingMethod;
    use crate::ingest::ingest;
    use medkb_corpus::MentionCounts;
    use medkb_snomed::figures::paper_fragment;
    use medkb_snomed::oracle::N_TAGS;
    use std::collections::HashMap;

    /// Fragment world: KB instances for the flagged fragment concepts, and
    /// fig-4-style counts extended over the respiratory subtree.
    fn relaxer() -> QueryRelaxer {
        let f = paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let indication = ob.concept("Indication");
        let risk = ob.concept("Risk");
        let drug = ob.concept("Drug");
        ob.relationship("treat", drug, indication);
        ob.relationship("cause", drug, risk);
        ob.relationship("hasFinding", indication, finding);
        ob.relationship("hasFinding", risk, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let fc = kb.ontology().lookup_concept("Finding").unwrap();
        for name in &f.flagged {
            kb.instance(name, fc);
        }
        let kb = kb.build().unwrap();

        let mut direct: HashMap<medkb_types::ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = treat;
            row[ContextTag::Risk.index()] = risk;
            direct.insert(f.concept(name), row);
        }
        for (name, t) in [
            ("pneumonia", 500u64),
            ("lower respiratory tract infection", 300),
            ("bronchitis", 700),
            ("kidney disease", 900),
            ("nephropathy", 400),
            ("renal impairment", 350),
            ("fever", 2000),
            ("hyperpyrexia", 150),
        ] {
            let mut row = [0u64; N_TAGS];
            row[ContextTag::Treatment.index()] = t;
            row[ContextTag::Risk.index()] = t / 3;
            direct.insert(f.concept(name), row);
        }
        // Hypothermia: mentioned, but (almost) never in treatment context
        // alongside fever drugs — risk-context mentions only.
        let mut row = [0u64; N_TAGS];
        row[ContextTag::Risk.index()] = 500;
        row[ContextTag::Treatment.index()] = 1;
        direct.insert(f.concept("hypothermia"), row);

        let counts = MentionCounts::from_direct(direct, HashMap::new(), 200);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
        QueryRelaxer::new(out, config)
    }

    fn treatment_ctx(r: &QueryRelaxer) -> ContextId {
        r.ingested()
            .contexts
            .iter()
            .find(|c| c.label == "Indication-hasFinding-Finding")
            .unwrap()
            .id
    }

    #[test]
    fn scenario1_pyelectasia_relaxes_to_kidney_disease() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("pyelectasia", Some(ctx), 5).unwrap();
        let names: Vec<&str> =
            res.answers.iter().map(|a| r.ingested().ekg.name(a.concept)).collect();
        assert!(
            names.contains(&"kidney disease") || names.contains(&"nephropathy"),
            "{names:?}"
        );
    }

    #[test]
    fn unknown_term_errors_under_exact_mapping() {
        let r = relaxer();
        assert!(matches!(
            r.relax("nonexistent condition", None, 3),
            Err(MedKbError::NotFound { .. })
        ));
        assert!(matches!(r.relax("fever", None, 0), Err(MedKbError::InvalidArgument { .. })));
    }

    #[test]
    fn results_sorted_by_score() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("headache", Some(ctx), 10).unwrap();
        for w in res.answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn k_bounds_returned_instances() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("fever", Some(ctx), 2).unwrap();
        // Each flagged fragment concept has exactly one instance, so at
        // most 2 answers are returned.
        assert!(res.instances().len() <= 2 + 1, "{:?}", res.instances());
        let res10 = r.relax("fever", Some(ctx), 10).unwrap();
        assert!(res10.instances().len() > res.instances().len());
    }

    #[test]
    fn dynamic_radius_grows_until_k() {
        let r = relaxer();
        // pertussis is far from every flagged concept: fixed radius 4 finds
        // few, dynamic growth must extend.
        let res = r.relax("pertussis", None, 5).unwrap();
        assert!(res.radius_used > r.config().radius, "used {}", res.radius_used);
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn fixed_radius_does_not_grow() {
        let mut r = relaxer();
        r.config.dynamic_radius = false;
        let res = r.relax("pertussis", None, 5).unwrap();
        assert_eq!(res.radius_used, r.config().radius);
    }

    #[test]
    fn context_trap_hypothermia_demoted_in_treatment_context() {
        let r = relaxer();
        let treat = treatment_ctx(&r);
        let res = r.relax("psychogenic fever", Some(treat), 10).unwrap();
        let ekg = &r.ingested().ekg;
        let names: Vec<&str> = res.answers.iter().map(|a| ekg.name(a.concept)).collect();
        let pos_hyper = names.iter().position(|&n| n == "hyperpyrexia");
        let pos_hypo = names.iter().position(|&n| n == "hypothermia");
        assert!(pos_hyper.is_some(), "{names:?}");
        if let (Some(hyper), Some(hypo)) = (pos_hyper, pos_hypo) {
            assert!(
                hyper < hypo,
                "in the treatment context hyperpyrexia must outrank hypothermia: {names:?}"
            );
        }
    }

    #[test]
    fn query_concept_itself_not_in_answers() {
        let r = relaxer();
        let res = r.relax("fever", None, 10).unwrap();
        assert!(res.answers.iter().all(|a| a.concept != res.query_concept));
    }

    #[test]
    fn strip_modifiers_recovers_decorated_terms() {
        let mut r = relaxer();
        assert!(r.resolve_term("very intense psychogenic fever").is_err());
        r.config.strip_modifiers = true;
        let c = r.resolve_term("very intense psychogenic fever").unwrap();
        assert_eq!(r.ingested().ekg.name(c), "psychogenic fever");
        // Still refuses when nothing suffixes to a known term.
        assert!(r.resolve_term("totally unknown thing").is_err());
    }

    #[test]
    fn explain_renders_the_breakdown() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let q = r.resolve_term("pneumonia").unwrap();
        let c = r.resolve_term("lower respiratory tract infection").unwrap();
        let text = r.explain(q, c, Some(ctx));
        assert!(text.contains("pneumonia"), "{text}");
        assert!(text.contains("generalization"), "{text}");
        assert!(text.contains("sim_IC"), "{text}");
        assert!(text.contains("Treatment"), "{text}");
        // The reverse direction explains a different path shape.
        let rev = r.explain(c, q, Some(ctx));
        assert_ne!(text, rev);
    }

    #[test]
    fn optimized_relax_matches_reference_implementation() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        for term in ["fever", "headache", "pneumonia", "pertussis", "psychogenic fever"] {
            let q = r.resolve_term(term).unwrap();
            for context in [None, Some(ctx)] {
                for k in [1, 3, 7, 50] {
                    let fast = r.relax_concept(q, context, k).unwrap();
                    let slow = r.relax_concept_reference(q, context, k).unwrap();
                    assert_eq!(fast, slow, "{term} ctx={context:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn relax_batch_matches_sequential_bit_identical() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let terms = ["fever", "headache", "pneumonia", "kidney disease", "bronchitis"];
        let queries: Vec<(ExtConceptId, Option<ContextId>)> = terms
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (r.resolve_term(t).unwrap(), if i % 2 == 0 { Some(ctx) } else { None })
            })
            .collect();
        let sequential: Vec<_> =
            queries.iter().map(|&(q, c)| r.relax_concept(q, c, 5).unwrap()).collect();
        for threads in [1, 2, 3, 8] {
            let batch = r.relax_concepts_batch_with_threads(&queries, 5, threads);
            let batch: Vec<_> = batch.into_iter().map(|res| res.unwrap()).collect();
            assert_eq!(batch, sequential, "threads={threads}");
        }
        // The term-level entry point agrees too, including error slots.
        let mut with_terms: Vec<(&str, Option<ContextId>)> =
            terms.iter().zip(&queries).map(|(&t, &(_, c))| (t, c)).collect();
        with_terms.push(("no such term", None));
        let batch = r.relax_batch(&with_terms, 5);
        assert_eq!(batch.len(), 6);
        for (res, expect) in batch.iter().zip(&sequential) {
            assert_eq!(res.as_ref().unwrap(), expect);
        }
        assert!(batch.last().unwrap().is_err());
    }

    #[test]
    fn rank_candidates_matches_relax_order() {
        let r = relaxer();
        let ctx = treatment_ctx(&r);
        let res = r.relax("headache", Some(ctx), 50).unwrap();
        let pool: Vec<_> = res.answers.iter().map(|a| a.concept).collect();
        let ranked = r.rank_candidates(res.query_concept, &pool, Some(ctx));
        let reordered: Vec<_> = ranked.iter().map(|&(c, _)| c).collect();
        assert_eq!(pool, reordered);
    }
}
