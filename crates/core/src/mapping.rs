//! Instance / query-term → external-concept mapping (Table 1's three
//! methods, used in Algorithm 1 line 8 and Algorithm 2 line 1).

use std::sync::Arc;

use medkb_ekg::Ekg;
use medkb_embed::{EmbeddingIndex, SifModel};
use medkb_text::{levenshtein_within, normalize, NgramIndex};
use medkb_types::{ExtConceptId, MedKbError, Result};

use crate::config::MappingMethod;

/// A name resolver against the external knowledge source, in one of the
/// three pluggable flavours (§3, §7.2).
///
/// All flavours try normalized exact lookup first (it is both the cheapest
/// and — by Table 1 — perfectly precise); the approximate machinery only
/// engages for names exact lookup misses.
#[derive(Debug, Clone)]
pub struct ConceptMapper {
    method: MappingMethod,
    edit: Option<EditTables>,
    embed: Option<EmbedTables>,
    phonetic: Option<std::collections::HashMap<String, ExtConceptId>>,
}

/// The persisted decomposition of a [`ConceptMapper`] (see
/// [`ConceptMapper::to_parts`]). `index_payloads`/`index_data` are the raw
/// arrays of the concept [`EmbeddingIndex`] (empty for non-embedding
/// methods).
#[derive(Debug, Clone, PartialEq)]
pub struct MapperParts {
    /// The mapping flavour.
    pub method: MappingMethod,
    /// The fitted SIF model (embedding method only).
    pub sif: Option<medkb_embed::SifParts>,
    /// Concept payloads of the embedding index, insertion order.
    pub index_payloads: Vec<u32>,
    /// Normalized row-major vectors of the embedding index.
    pub index_data: Vec<f32>,
}

impl MapperParts {
    /// Bit-level equality. The derived `PartialEq` compares floats with
    /// `==`, which reports two bit-identical mappers as *different* the
    /// moment the trained vectors contain a NaN (large SGNS runs can
    /// diverge into NaN rows without losing determinism). The
    /// differential oracles compare with this instead: element-wise
    /// `f32::to_bits` over the SIF model and the index data.
    pub fn bits_eq(&self, other: &Self) -> bool {
        let sif_eq = match (&self.sif, &other.sif) {
            (None, None) => true,
            (Some(a), Some(b)) => a.bits_eq(b),
            _ => false,
        };
        self.method == other.method
            && sif_eq
            && self.index_payloads == other.index_payloads
            && medkb_embed::f32_bits_eq(&self.index_data, &other.index_data)
    }
}

#[derive(Debug, Clone)]
struct EditTables {
    index: NgramIndex,
    /// Position-aligned with the index: `(normalized name, char length,
    /// concept)`. The length lets lookups discard candidates that cannot
    /// be within `tau` edits before running the DP.
    entries: Vec<(String, u32, ExtConceptId)>,
}

#[derive(Debug, Clone)]
struct EmbedTables {
    model: Arc<SifModel>,
    index: EmbeddingIndex,
    threshold: f64,
    /// n-gram index over the embedding vocabulary, used to repair
    /// out-of-vocabulary words (typos) before embedding — the rough
    /// equivalent of the subword robustness of fastText [8], which the
    /// paper's EMBEDDING variant builds on.
    vocab_index: NgramIndex,
    vocab_words: Vec<String>,
}

impl ConceptMapper {
    /// Build a mapper of the given flavour over `ekg`'s names and synonyms.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] when `method` is
    /// [`MappingMethod::Embedding`] but no SIF model is supplied.
    pub fn build(ekg: &Ekg, method: MappingMethod, sif: Option<Arc<SifModel>>) -> Result<Self> {
        let mut mapper = Self { method, edit: None, embed: None, phonetic: None };
        match method {
            MappingMethod::Exact => {}
            MappingMethod::Phonetic => {
                // Unique phrase keys only: an ambiguous phonetic key would
                // guess between unrelated concepts.
                let mut keys: std::collections::HashMap<String, Option<ExtConceptId>> =
                    std::collections::HashMap::new();
                for c in ekg.concepts() {
                    for name in std::iter::once(ekg.name(c)).chain(ekg.synonyms(c)) {
                        let key = medkb_text::phrase_key(name);
                        if key.is_empty() {
                            continue;
                        }
                        keys.entry(key)
                            .and_modify(|slot| {
                                if *slot != Some(c) {
                                    *slot = None;
                                }
                            })
                            .or_insert(Some(c));
                    }
                }
                mapper.phonetic = Some(
                    keys.into_iter().filter_map(|(k, v)| v.map(|c| (k, c))).collect(),
                );
            }
            MappingMethod::Edit(_) => {
                let mut index = NgramIndex::new(3);
                let mut entries = Vec::new();
                for c in ekg.concepts() {
                    for name in std::iter::once(ekg.name(c)).chain(ekg.synonyms(c)) {
                        let norm = normalize(name);
                        let chars = norm.chars().count() as u32;
                        index.insert(&norm);
                        entries.push((norm, chars, c));
                    }
                }
                mapper.edit = Some(EditTables { index, entries });
            }
            MappingMethod::Embedding { threshold } => {
                let model = sif.ok_or_else(|| {
                    MedKbError::invalid("embedding mapping requires a fitted SIF model")
                })?;
                let mut index = EmbeddingIndex::new(model.vectors().dim());
                for c in ekg.concepts() {
                    for name in std::iter::once(ekg.name(c)).chain(ekg.synonyms(c)) {
                        if let Some(v) = model.embed(name) {
                            index.insert(c.raw(), &v);
                        }
                    }
                }
                let mut vocab_index = NgramIndex::new(3);
                let mut vocab_words = Vec::with_capacity(model.vectors().vocab_size());
                for w in model.vectors().words() {
                    vocab_index.insert(w);
                    vocab_words.push(w.to_string());
                }
                mapper.embed =
                    Some(EmbedTables { model, index, threshold, vocab_index, vocab_words });
            }
        }
        Ok(mapper)
    }

    /// The flavour this mapper was built with.
    pub fn method(&self) -> MappingMethod {
        self.method
    }

    /// The SIF model behind the embedding tables, when the method is
    /// [`MappingMethod::Embedding`]. medkb-store persists it so a store
    /// open can rebuild the mapper without retraining embeddings.
    pub fn sif_model(&self) -> Option<&Arc<SifModel>> {
        self.embed.as_ref().map(|e| &e.model)
    }

    /// Decompose into the parts medkb-store persists: the method, the SIF
    /// model, and the concept embedding index (the one table whose rebuild
    /// embeds every concept name — everything else is cheap to re-derive
    /// from the graph in [`ConceptMapper::from_parts`]).
    pub fn to_parts(&self) -> MapperParts {
        let (sif, index_payloads, index_data) = match &self.embed {
            Some(e) => {
                let (_, payloads, data) = e.index.to_raw();
                (Some(e.model.to_parts()), payloads.to_vec(), data.to_vec())
            }
            None => (None, Vec::new(), Vec::new()),
        };
        MapperParts { method: self.method, sif, index_payloads, index_data }
    }

    /// Rebuild a mapper from [`ConceptMapper::to_parts`] output.
    ///
    /// Behaviourally identical to [`ConceptMapper::build`] with the same
    /// method and model: the exact/edit/phonetic tables are re-derived from
    /// `ekg`'s names (deterministic and cheap), while the embedding branch
    /// adopts the persisted concept index verbatim instead of re-embedding
    /// every name, and re-derives only the vocabulary-repair n-gram tables
    /// (vocabulary order is pinned by token-id order in the model parts).
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] when the method is
    /// [`MappingMethod::Embedding`] but the parts carry no SIF model.
    pub fn from_parts(ekg: &Ekg, parts: MapperParts) -> Result<Self> {
        match parts.method {
            MappingMethod::Embedding { threshold } => {
                let sif = parts.sif.ok_or_else(|| {
                    MedKbError::invalid("mapper parts: embedding method without a SIF model")
                })?;
                let model = Arc::new(SifModel::from_parts(sif));
                let index = EmbeddingIndex::from_raw(
                    model.vectors().dim(),
                    parts.index_payloads,
                    parts.index_data,
                );
                let mut vocab_index = NgramIndex::new(3);
                let mut vocab_words = Vec::with_capacity(model.vectors().vocab_size());
                for w in model.vectors().words() {
                    vocab_index.insert(w);
                    vocab_words.push(w.to_string());
                }
                Ok(Self {
                    method: parts.method,
                    edit: None,
                    embed: Some(EmbedTables {
                        model,
                        index,
                        threshold,
                        vocab_index,
                        vocab_words,
                    }),
                    phonetic: None,
                })
            }
            method => Self::build(ekg, method, None),
        }
    }

    /// Resolve `name` to an external concept, or `None` if the method finds
    /// no acceptable match.
    pub fn map(&self, ekg: &Ekg, name: &str) -> Option<ExtConceptId> {
        self.map_scored(ekg, name).map(|(c, _)| c)
    }

    /// [`ConceptMapper::map`] with the match confidence exposed: 1.0 for an
    /// exact hit, `1 / (1 + distance)` for an edit match, the cosine for an
    /// embedding match. The evaluation harness sweeps acceptance thresholds
    /// over these scores without rebuilding the mapper.
    pub fn map_scored(&self, ekg: &Ekg, name: &str) -> Option<(ExtConceptId, f64)> {
        // Exact (normalized) lookup is common to all flavours.
        if let Some(&c) = ekg.lookup_name(name).first() {
            return Some((c, 1.0));
        }
        match self.method {
            MappingMethod::Exact => None,
            MappingMethod::Edit(tau) => self
                .map_edit(name, tau)
                .map(|(c, d)| (c, 1.0 / (1.0 + d as f64))),
            MappingMethod::Embedding { .. } => self.map_embedding(name),
            MappingMethod::Phonetic => {
                let key = medkb_text::phrase_key(name);
                self.phonetic
                    .as_ref()
                    .and_then(|m| m.get(&key).copied())
                    .map(|c| (c, 0.9))
            }
        }
    }

    fn map_edit(&self, name: &str, tau: u32) -> Option<(ExtConceptId, usize)> {
        let tables = self.edit.as_ref()?;
        let norm = normalize(name);
        let norm_chars = norm.chars().count() as u32;
        let mut best: Option<(usize, ExtConceptId)> = None;
        for pos in tables.index.candidates(&norm, tau as usize) {
            let (entry, chars, concept) = &tables.entries[pos];
            // A length gap beyond tau already needs more than tau edits;
            // skip the DP entirely.
            if norm_chars.abs_diff(*chars) > tau {
                continue;
            }
            if let Some(d) = levenshtein_within(&norm, entry, tau as usize) {
                let better = match best {
                    None => true,
                    Some((bd, bc)) => d < bd || (d == bd && *concept < bc),
                };
                if better {
                    best = Some((d, *concept));
                }
            }
        }
        best.map(|(d, c)| (c, d))
    }

    fn map_embedding(&self, name: &str) -> Option<(ExtConceptId, f64)> {
        let tables = self.embed.as_ref()?;
        // Repair out-of-vocabulary words (typos) to their nearest
        // vocabulary word within 2 edits before embedding. The phrase and
        // per-token buffers are thread-local scratch reused across calls,
        // so mapping allocates no per-call token vector or join.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(String, String)> =
                const { std::cell::RefCell::new((String::new(), String::new())) };
        }
        SCRATCH.with(|cell| {
            let (phrase, tok) = &mut *cell.borrow_mut();
            phrase.clear();
            for (lo, hi) in medkb_text::token_spans(name) {
                tok.clear();
                let frag = &name[lo..hi];
                if frag.is_ascii() {
                    tok.push_str(frag);
                    tok.make_ascii_lowercase();
                } else {
                    for ch in frag.chars() {
                        tok.extend(ch.to_lowercase());
                    }
                }
                if !phrase.is_empty() {
                    phrase.push(' ');
                }
                // Only repair alphabetic words of meaningful length:
                // "repairing" a number or a short code to whatever is two
                // edits away fabricates similarity.
                if tables.model.vectors().get(tok).is_some()
                    || tok.len() < 4
                    || !tok.chars().all(|c| c.is_alphabetic())
                {
                    phrase.push_str(tok);
                    continue;
                }
                let mut best: Option<(usize, &str)> = None;
                for pos in tables.vocab_index.candidates(tok, 2) {
                    let cand = &tables.vocab_words[pos];
                    if let Some(d) = levenshtein_within(tok, cand, 2) {
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, cand));
                        }
                    }
                }
                phrase.push_str(best.map(|(_, c)| c).unwrap_or(tok));
            }
            // A phrase whose tokens are mostly outside the corpus
            // vocabulary even after repair has no reliable embedding:
            // refuse to map (the paper's out-of-vocabulary diagnosis,
            // applied as a precision guard).
            if tables.model.coverage(phrase) < 0.5 {
                return None;
            }
            let v = tables.model.embed(phrase)?;
            tables
                .index
                .nearest_above(&v, tables.threshold)
                .map(|hit| (ExtConceptId::new(hit.payload), hit.score))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_corpus::{CorpusConfig, CorpusGenerator};
    use medkb_embed::{SgnsConfig, WordVectors};
    use medkb_snomed::{GeneratedTerminology, Oracle, SnomedConfig};

    fn fragment() -> Ekg {
        medkb_snomed::figures::paper_fragment().ekg
    }

    #[test]
    fn exact_maps_names_and_synonyms_only() {
        let ekg = fragment();
        let m = ConceptMapper::build(&ekg, MappingMethod::Exact, None).unwrap();
        assert!(m.map(&ekg, "Kidney Disease").is_some());
        assert!(m.map(&ekg, "pyrexia").is_some()); // registered synonym
        assert!(m.map(&ekg, "kidny disease").is_none()); // typo
    }

    #[test]
    fn edit_recovers_small_typos() {
        let ekg = fragment();
        let m = ConceptMapper::build(&ekg, MappingMethod::edit_tau2(), None).unwrap();
        let gold = ekg.lookup_name("kidney disease")[0];
        assert_eq!(m.map(&ekg, "kidny disease"), Some(gold));
        assert_eq!(m.map(&ekg, "kidney diseasee"), Some(gold));
        assert_eq!(m.map(&ekg, "completely different"), None);
    }

    #[test]
    fn edit_prefers_smaller_distance() {
        let ekg = fragment();
        let m = ConceptMapper::build(&ekg, MappingMethod::edit_tau2(), None).unwrap();
        // "headach" is 1 edit from "headache" and 2+ from everything else.
        assert_eq!(m.map(&ekg, "headach"), Some(ekg.lookup_name("headache")[0]));
    }

    #[test]
    fn edit_prefilter_handles_multibyte_names() {
        // The length prefilter must count chars, not bytes: "naïve fever"
        // is 12 bytes for 11 chars, so a byte-based gap would wrongly
        // prune the 1-edit query "naive fever" at τ = 2.
        let mut b = medkb_ekg::EkgBuilder::new();
        let root = b.concept("root");
        let naive = b.concept("naïve fever");
        let micro = b.concept("µg overdose");
        b.is_a(naive, root);
        b.is_a(micro, root);
        let ekg = b.build().unwrap();
        let m = ConceptMapper::build(&ekg, MappingMethod::edit_tau2(), None).unwrap();
        assert_eq!(m.map(&ekg, "naive fever"), Some(naive));
        assert_eq!(m.map(&ekg, "µg overdse"), Some(micro));
    }

    #[test]
    fn embedding_requires_model() {
        let ekg = fragment();
        assert!(matches!(
            ConceptMapper::build(&ekg, MappingMethod::embedding_default(), None),
            Err(MedKbError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn embedding_bridges_colloquial_rewrites() {
        // Train a SIF model on a generated corpus, then map a colloquial
        // rewrite of a real concept name.
        let term = GeneratedTerminology::generate(&SnomedConfig::tiny(61));
        let oracle = Oracle::derive(&term, 62);
        let corpus = CorpusGenerator::new(&term, &oracle).generate(&CorpusConfig {
            docs: 600,
            colloquial_mention_rate: 0.25,
            ..CorpusConfig::tiny(63)
        });
        let wv = WordVectors::train(
            &corpus,
            &SgnsConfig { dim: 32, epochs: 5, window: 5, ..SgnsConfig::tiny(64) },
        );
        let sif = Arc::new(SifModel::fit(wv, &corpus, 1e-3));
        let m = ConceptMapper::build(
            &term.ekg,
            MappingMethod::Embedding { threshold: 0.6 },
            Some(sif.clone()),
        )
        .unwrap();
        // Find a finding whose name contains a colloquializable word and is
        // itself corpus-known (embeddable).
        let mut bridged = 0;
        let mut tried = 0;
        for c in term.ekg.concepts() {
            let name = term.ekg.name(c);
            let words: Vec<&str> = name.split_whitespace().collect();
            let Some(i) =
                words.iter().position(|w| medkb_snomed::vocab::colloquial_of(w).is_some())
            else {
                continue;
            };
            if sif.embed(name).is_none() {
                continue;
            }
            let mut rw = words.clone();
            rw[i] = medkb_snomed::vocab::colloquial_of(words[i]).unwrap();
            let reworded = rw.join(" ");
            if !term.ekg.lookup_name(&reworded).is_empty() {
                continue; // collides with a real name; not a bridging case
            }
            tried += 1;
            if m.map(&term.ekg, &reworded) == Some(c) {
                bridged += 1;
            }
            if tried >= 30 {
                break;
            }
        }
        assert!(tried > 0, "no colloquializable names generated");
        // The tiny SGNS setup is noisy; the real recovery-rate calibration
        // happens in the evaluation harness. Here we only require the
        // bridge to work at all at a meaningful rate.
        assert!(
            bridged * 3 >= tried,
            "embedding mapper bridged only {bridged}/{tried} colloquial rewrites"
        );
    }

    #[test]
    fn phonetic_recovers_sound_alike_misspellings() {
        let mut b = medkb_ekg::EkgBuilder::new();
        let root = b.concept("root");
        let d = b.concept("diarrhea");
        let h = b.concept("hemorrhage");
        b.is_a(d, root);
        b.is_a(h, root);
        let ekg = b.build().unwrap();
        let m = ConceptMapper::build(&ekg, MappingMethod::Phonetic, None).unwrap();
        assert_eq!(m.map(&ekg, "diarrea"), Some(d));
        assert_eq!(m.map(&ekg, "hemorage"), Some(h));
        assert_eq!(m.map(&ekg, "zzzz"), None);
        // Exact names still resolve (shared exact-first path).
        assert_eq!(m.map(&ekg, "diarrhea"), Some(d));
    }

    #[test]
    fn phonetic_drops_ambiguous_keys() {
        // "smith" and "smyth" are distinct concepts with colliding keys:
        // the matcher must refuse rather than guess.
        let mut b = medkb_ekg::EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("smith syndrome");
        let c = b.concept("smyth syndrome");
        b.is_a(a, root);
        b.is_a(c, root);
        let ekg = b.build().unwrap();
        let m = ConceptMapper::build(&ekg, MappingMethod::Phonetic, None).unwrap();
        assert_eq!(m.map(&ekg, "smithe syndrome"), None);
    }

    #[test]
    fn parts_bits_eq_is_nan_sound_and_signed_zero_strict() {
        let parts = |data: Vec<f32>| MapperParts {
            method: MappingMethod::embedding_default(),
            sif: None,
            index_payloads: vec![7],
            index_data: data,
        };
        // Identical NaN bits: derived `==` says unequal, bits_eq says equal
        // (this exact false-negative broke the delta-vs-full oracle on
        // SNOMED-scale worlds whose SGNS run diverged into NaN rows).
        let (a, b) = (parts(vec![1.0, f32::NAN]), parts(vec![1.0, f32::NAN]));
        assert_ne!(a, b);
        assert!(a.bits_eq(&b));
        // Signed zeros: `==` conflates them, bits_eq distinguishes.
        let (a, b) = (parts(vec![0.0]), parts(vec![-0.0]));
        assert_eq!(a, b);
        assert!(!a.bits_eq(&b));
        // Genuinely different data still differs.
        assert!(!parts(vec![1.0]).bits_eq(&parts(vec![2.0])));
        assert!(!parts(vec![1.0]).bits_eq(&parts(vec![1.0, 1.0])));
    }

    #[test]
    fn all_methods_agree_on_exact_names() {
        let ekg = fragment();
        let exact = ConceptMapper::build(&ekg, MappingMethod::Exact, None).unwrap();
        let edit = ConceptMapper::build(&ekg, MappingMethod::edit_tau2(), None).unwrap();
        for name in ["pneumonia", "bronchitis", "fever"] {
            assert_eq!(exact.map(&ekg, name), edit.map(&ekg, name), "{name}");
        }
    }
}
