//! Configuration of the relaxation method and its ablations.

/// How Eq. 2 frequencies are rolled up the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyMode {
    /// The paper-literal recursion `freq(A) = |A| + Σ freq(A_i)` over
    /// direct children. On a multi-parent DAG a concept contributes to
    /// *each* parent, over-counting shared subtrees — exactly what the
    /// published equation does.
    PaperRecursive,
    /// Exact semantics: `freq(A) = Σ_{d ∈ {A} ∪ desc(A)} |d|`, each
    /// descendant counted once. An ablation target (DESIGN.md §5).
    DescendantSet,
}

/// Which matcher resolves names to external concepts (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingMethod {
    /// Normalized string equality against names and synonyms.
    Exact,
    /// Bounded edit distance (the paper evaluates τ = 2).
    Edit(u32),
    /// SIF phrase-embedding nearest neighbour above a cosine threshold.
    Embedding {
        /// Minimum cosine similarity to accept a mapping.
        threshold: f64,
    },
    /// Soundex phrase-key equality — catches phonetic misspellings edit
    /// distance misses ("diarrea"). Keys shared by several concepts are
    /// discarded at build time, keeping the matcher precision-first. An
    /// extra method beyond the paper's three, ablated alongside them.
    Phonetic,
}

impl MappingMethod {
    /// The paper's EDIT configuration (τ = 2).
    pub fn edit_tau2() -> Self {
        MappingMethod::Edit(2)
    }

    /// The default embedding configuration.
    pub fn embedding_default() -> Self {
        MappingMethod::Embedding { threshold: 0.82 }
    }
}

/// Full configuration of the relaxation method. The flags double as the
/// Table 2 ablation switches.
#[derive(Debug, Clone)]
pub struct RelaxConfig {
    /// Eq. 4 weight of a generalization step (paper: 0.9).
    pub w_gen: f64,
    /// Eq. 4 weight of a specialization step (paper: 1.0).
    pub w_spec: f64,
    /// Candidate search radius `r` over the customized graph.
    pub radius: u32,
    /// Grow the radius when fewer than `k` results are found (§5.2:
    /// "dynamically decided if a fixed r cannot provide k results").
    pub dynamic_radius: bool,
    /// Upper bound for dynamic growth.
    pub max_radius: u32,
    /// Use the query context to select per-context frequencies
    /// (off = QR-no-context: frequencies aggregate over all contexts).
    pub use_context: bool,
    /// Use corpus frequencies for IC (off = QR-no-corpus: intrinsic,
    /// structure-only IC).
    pub use_corpus: bool,
    /// Apply the Eq. 4 direction-weighted path factor (off = plain IC).
    pub use_path_weight: bool,
    /// tf-idf-adjust raw mention counts (§5.1).
    pub use_tfidf: bool,
    /// Frequency rollup semantics.
    pub frequency_mode: FrequencyMode,
    /// Run the §5.1 sparsity customization (shortcut edges).
    pub add_shortcuts: bool,
    /// Matcher used for instances (offline) and query terms (online).
    pub mapping: MappingMethod,
    /// Online fallback: when a multi-word query term resolves to nothing,
    /// progressively drop leading modifiers ("severe psychogenic fever" →
    /// "psychogenic fever" → "fever") — the lightweight lookup-service
    /// behaviour §3 alludes to. Off by default so Table 1's matcher
    /// comparison stays pure.
    pub strip_modifiers: bool,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        Self {
            w_gen: 0.9,
            w_spec: 1.0,
            radius: 4,
            dynamic_radius: true,
            max_radius: 10,
            use_context: true,
            use_corpus: true,
            use_path_weight: true,
            use_tfidf: true,
            frequency_mode: FrequencyMode::PaperRecursive,
            add_shortcuts: true,
            mapping: MappingMethod::embedding_default(),
            strip_modifiers: false,
        }
    }
}

impl RelaxConfig {
    /// The QR-no-context ablation of Table 2.
    pub fn no_context(mut self) -> Self {
        self.use_context = false;
        self
    }

    /// The QR-no-corpus ablation of Table 2.
    pub fn no_corpus(mut self) -> Self {
        self.use_corpus = false;
        self
    }

    /// The plain IC baseline of Table 2: corpus IC, no context, no path
    /// weighting.
    pub fn ic_baseline(mut self) -> Self {
        self.use_context = false;
        self.use_path_weight = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RelaxConfig::default();
        assert_eq!(c.w_gen, 0.9);
        assert_eq!(c.w_spec, 1.0);
        assert!(c.use_context && c.use_corpus && c.use_path_weight);
        assert_eq!(c.frequency_mode, FrequencyMode::PaperRecursive);
    }

    #[test]
    fn ablation_builders() {
        assert!(!RelaxConfig::default().no_context().use_context);
        assert!(!RelaxConfig::default().no_corpus().use_corpus);
        let ic = RelaxConfig::default().ic_baseline();
        assert!(!ic.use_context && !ic.use_path_weight && ic.use_corpus);
    }

    #[test]
    fn mapping_presets() {
        assert_eq!(MappingMethod::edit_tau2(), MappingMethod::Edit(2));
        match MappingMethod::embedding_default() {
            MappingMethod::Embedding { threshold } => assert!(threshold > 0.0),
            other => panic!("{other:?}"),
        }
    }
}
