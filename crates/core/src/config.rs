//! Configuration of the relaxation method and its ablations.

use std::sync::Arc;

use medkb_obs::Registry;

/// How Eq. 2 frequencies are rolled up the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyMode {
    /// The paper-literal recursion `freq(A) = |A| + Σ freq(A_i)` over
    /// direct children. On a multi-parent DAG a concept contributes to
    /// *each* parent, over-counting shared subtrees — exactly what the
    /// published equation does.
    PaperRecursive,
    /// Exact semantics: `freq(A) = Σ_{d ∈ {A} ∪ desc(A)} |d|`, each
    /// descendant counted once. An ablation target (DESIGN.md §5).
    DescendantSet,
}

/// Which matcher resolves names to external concepts (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MappingMethod {
    /// Normalized string equality against names and synonyms.
    Exact,
    /// Bounded edit distance (the paper evaluates τ = 2).
    Edit(u32),
    /// SIF phrase-embedding nearest neighbour above a cosine threshold.
    Embedding {
        /// Minimum cosine similarity to accept a mapping.
        threshold: f64,
    },
    /// Soundex phrase-key equality — catches phonetic misspellings edit
    /// distance misses ("diarrea"). Keys shared by several concepts are
    /// discarded at build time, keeping the matcher precision-first. An
    /// extra method beyond the paper's three, ablated alongside them.
    Phonetic,
}

impl MappingMethod {
    /// The paper's EDIT configuration (τ = 2).
    pub fn edit_tau2() -> Self {
        MappingMethod::Edit(2)
    }

    /// The default embedding configuration.
    pub fn embedding_default() -> Self {
        MappingMethod::Embedding { threshold: 0.82 }
    }
}

/// Thread budget for the offline ingestion pipeline (Algorithm 1).
///
/// Every parallel stage keeps a bit-identical sequential twin, so this is
/// purely a wall-clock knob: outputs are independent of the thread count
/// (DESIGN.md §9). `threads: 1` (the default) runs fully sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for sharded ingestion stages (values below 1 are
    /// treated as 1).
    pub threads: usize,
    /// Cap workers at the machine's available parallelism. Oversubscribing
    /// a core only adds scheduling overhead, and the sharded merges are
    /// deterministic in shard order, so the clamp never changes outputs —
    /// tests that must exercise real multi-way sharding regardless of the
    /// host set this to `false`.
    pub clamp_to_cores: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self { threads: 1, clamp_to_cores: true }
    }
}

impl ParallelConfig {
    /// A configuration with the given thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), ..Self::default() }
    }

    /// The effective worker count: at least 1, and capped at the host's
    /// available parallelism unless `clamp_to_cores` is off.
    pub fn effective_threads(&self) -> usize {
        let t = self.threads.max(1);
        if self.clamp_to_cores {
            let cores =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            t.min(cores)
        } else {
            t
        }
    }
}

/// Observability switches (DESIGN.md §10).
///
/// `metrics: None` (the default) disables instrumentation entirely: the
/// hot paths skip every record call behind one pointer-null check — no
/// atomics, no allocation, no timer reads. With a registry attached, the
/// relaxation engine and ingestion pipeline record counters and latency
/// histograms into it; instrumentation never changes any ranking, score,
/// or ingestion artifact (the reference-twin tests run both ways).
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Metrics sink. Engines resolve their handles once at construction,
    /// so recording is lock-free; share one registry across components to
    /// get a single unified snapshot.
    pub metrics: Option<Arc<Registry>>,
    /// Attach the per-candidate Eq. 1–5 score breakdown to every returned
    /// answer ([`crate::relax::RelaxedAnswer::explain`]). Off by default:
    /// the breakdown re-derives each surviving answer's LCS and ICs, which
    /// is measurable work and only wanted on debugging/conformance paths.
    pub explain: bool,
}

impl ObsConfig {
    /// Instrumentation on (a fresh shared registry), explain off.
    pub fn enabled() -> Self {
        Self { metrics: Some(Registry::shared()), explain: false }
    }

    /// Instrumentation recording into an existing registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self { metrics: Some(registry), explain: false }
    }

    /// The registry, if instrumentation is enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.metrics.as_deref()
    }
}

/// Full configuration of the relaxation method. The flags double as the
/// Table 2 ablation switches.
#[derive(Debug, Clone)]
pub struct RelaxConfig {
    /// Eq. 4 weight of a generalization step (paper: 0.9).
    pub w_gen: f64,
    /// Eq. 4 weight of a specialization step (paper: 1.0).
    pub w_spec: f64,
    /// Candidate search radius `r` over the customized graph.
    pub radius: u32,
    /// Grow the radius when fewer than `k` results are found (§5.2:
    /// "dynamically decided if a fixed r cannot provide k results").
    pub dynamic_radius: bool,
    /// Upper bound for dynamic growth.
    pub max_radius: u32,
    /// Use the query context to select per-context frequencies
    /// (off = QR-no-context: frequencies aggregate over all contexts).
    pub use_context: bool,
    /// Use corpus frequencies for IC (off = QR-no-corpus: intrinsic,
    /// structure-only IC).
    pub use_corpus: bool,
    /// Apply the Eq. 4 direction-weighted path factor (off = plain IC).
    pub use_path_weight: bool,
    /// tf-idf-adjust raw mention counts (§5.1).
    pub use_tfidf: bool,
    /// Frequency rollup semantics.
    pub frequency_mode: FrequencyMode,
    /// Run the §5.1 sparsity customization (shortcut edges).
    pub add_shortcuts: bool,
    /// Matcher used for instances (offline) and query terms (online).
    pub mapping: MappingMethod,
    /// Online fallback: when a multi-word query term resolves to nothing,
    /// progressively drop leading modifiers ("severe psychogenic fever" →
    /// "psychogenic fever" → "fever") — the lightweight lookup-service
    /// behaviour §3 alludes to. Off by default so Table 1's matcher
    /// comparison stays pure.
    pub strip_modifiers: bool,
    /// Score-bounded top-k pruning (DESIGN.md §13): skip the exact LCS
    /// evaluation for candidates whose admissible Eq. 5 upper bound cannot
    /// beat the current k-th answer, and terminate whole remaining rings
    /// once the ring-level cap falls below it. Answers are bit-identical
    /// with the flag on or off (the bound is admissible and exact ties are
    /// never skipped), so this is purely a latency knob; it silently
    /// deactivates for configurations the bound derivation does not cover
    /// (step weights above 1, relevance-feedback rescoring).
    pub pruning: bool,
    /// Thread budget for offline ingestion (outputs are thread-count
    /// independent).
    pub parallel: ParallelConfig,
    /// Observability: metrics sink and the opt-in per-answer score
    /// breakdown. Disabled by default and free when disabled.
    pub obs: ObsConfig,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        Self {
            w_gen: 0.9,
            w_spec: 1.0,
            radius: 4,
            dynamic_radius: true,
            max_radius: 10,
            use_context: true,
            use_corpus: true,
            use_path_weight: true,
            use_tfidf: true,
            frequency_mode: FrequencyMode::PaperRecursive,
            add_shortcuts: true,
            mapping: MappingMethod::embedding_default(),
            strip_modifiers: false,
            pruning: true,
            parallel: ParallelConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl RelaxConfig {
    /// The QR-no-context ablation of Table 2.
    pub fn no_context(mut self) -> Self {
        self.use_context = false;
        self
    }

    /// The QR-no-corpus ablation of Table 2.
    pub fn no_corpus(mut self) -> Self {
        self.use_corpus = false;
        self
    }

    /// The plain IC baseline of Table 2: corpus IC, no context, no path
    /// weighting.
    pub fn ic_baseline(mut self) -> Self {
        self.use_context = false;
        self.use_path_weight = false;
        self
    }

    /// Reject configurations that would poison scoring with NaN/∞ or can
    /// never produce results. Relaxation entry points call this up front so
    /// a bad config fails loudly instead of silently ranking by NaN
    /// (`NaN.total_cmp` orders, so broken scores would *look* plausible).
    ///
    /// # Errors
    /// [`medkb_types::MedKbError::InvalidArgument`] describing the first
    /// offending field.
    pub fn validate(&self) -> medkb_types::Result<()> {
        use medkb_types::MedKbError;
        if !self.w_gen.is_finite() || self.w_gen < 0.0 {
            return Err(MedKbError::invalid(format!(
                "w_gen must be finite and >= 0, got {}",
                self.w_gen
            )));
        }
        if !self.w_spec.is_finite() || self.w_spec < 0.0 {
            return Err(MedKbError::invalid(format!(
                "w_spec must be finite and >= 0, got {}",
                self.w_spec
            )));
        }
        if self.dynamic_radius && self.max_radius < self.radius {
            return Err(MedKbError::invalid(format!(
                "max_radius {} must be >= radius {} when dynamic_radius is on",
                self.max_radius, self.radius
            )));
        }
        if let MappingMethod::Embedding { threshold } = self.mapping {
            if !threshold.is_finite() {
                return Err(MedKbError::invalid(format!(
                    "embedding threshold must be finite, got {threshold}"
                )));
            }
        }
        Ok(())
    }

    /// A 64-bit fingerprint over every field that can change a relaxation
    /// *result* — the serving cache keys on it so two configurations share
    /// cache entries iff they are answer-equivalent.
    ///
    /// Included: scoring weights (exact bit patterns), radius/dynamic
    /// growth, the ablation switches, frequency semantics, shortcut
    /// customization, mapping method (with its parameters), and the
    /// strip-modifiers fallback. Excluded by design: [`ParallelConfig`]
    /// (outputs are thread-count independent, DESIGN.md §9), [`ObsConfig`]
    /// (instrumentation is inert on results, §10), and the
    /// [`RelaxConfig::pruning`] switch (the bounded scan returns
    /// bit-identical answers, §13 — so pruned and exhaustive servers may
    /// share cache entries).
    pub fn result_fingerprint(&self) -> u64 {
        // FNV-1a, same construction the token trie uses: stable across
        // runs and platforms, unlike `DefaultHasher` whose algorithm is
        // explicitly unspecified.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&self.w_gen.to_bits().to_le_bytes());
        eat(&self.w_spec.to_bits().to_le_bytes());
        eat(&self.radius.to_le_bytes());
        eat(&[
            u8::from(self.dynamic_radius),
            u8::from(self.use_context),
            u8::from(self.use_corpus),
            u8::from(self.use_path_weight),
            u8::from(self.use_tfidf),
            u8::from(self.add_shortcuts),
            u8::from(self.strip_modifiers),
            match self.frequency_mode {
                FrequencyMode::PaperRecursive => 0,
                FrequencyMode::DescendantSet => 1,
            },
        ]);
        eat(&self.max_radius.to_le_bytes());
        match self.mapping {
            MappingMethod::Exact => eat(&[0]),
            MappingMethod::Edit(tau) => {
                eat(&[1]);
                eat(&tau.to_le_bytes());
            }
            MappingMethod::Embedding { threshold } => {
                eat(&[2]);
                eat(&threshold.to_bits().to_le_bytes());
            }
            MappingMethod::Phonetic => eat(&[3]),
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RelaxConfig::default();
        assert_eq!(c.w_gen, 0.9);
        assert_eq!(c.w_spec, 1.0);
        assert!(c.use_context && c.use_corpus && c.use_path_weight);
        assert_eq!(c.frequency_mode, FrequencyMode::PaperRecursive);
    }

    #[test]
    fn ablation_builders() {
        assert!(!RelaxConfig::default().no_context().use_context);
        assert!(!RelaxConfig::default().no_corpus().use_corpus);
        let ic = RelaxConfig::default().ic_baseline();
        assert!(!ic.use_context && !ic.use_path_weight && ic.use_corpus);
    }

    #[test]
    fn parallel_config_clamps_to_one() {
        assert_eq!(ParallelConfig::default().effective_threads(), 1);
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
        assert_eq!(
            ParallelConfig { threads: 0, clamp_to_cores: false }.effective_threads(),
            1
        );
        // Unclamped, the requested count passes through unchanged; clamped,
        // it is capped at the host's available parallelism.
        assert_eq!(
            ParallelConfig { threads: 4, clamp_to_cores: false }.effective_threads(),
            4
        );
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(ParallelConfig::with_threads(4).effective_threads(), 4.min(cores));
    }

    #[test]
    fn validate_accepts_defaults_and_ablations() {
        assert!(RelaxConfig::default().validate().is_ok());
        assert!(RelaxConfig::default().no_context().validate().is_ok());
        assert!(RelaxConfig::default().no_corpus().validate().is_ok());
        assert!(RelaxConfig::default().ic_baseline().validate().is_ok());
    }

    #[test]
    fn validate_rejects_nan_producing_configs() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            assert!(RelaxConfig { w_gen: bad, ..Default::default() }.validate().is_err());
            assert!(RelaxConfig { w_spec: bad, ..Default::default() }.validate().is_err());
        }
        assert!(RelaxConfig {
            mapping: MappingMethod::Embedding { threshold: f64::NAN },
            ..Default::default()
        }
        .validate()
        .is_err());
        let shrunk = RelaxConfig { radius: 8, max_radius: 4, ..Default::default() };
        assert!(shrunk.validate().is_err());
        // With dynamic growth off, max_radius is inert and may be anything.
        assert!(RelaxConfig { dynamic_radius: false, ..shrunk }.validate().is_ok());
    }

    #[test]
    fn fingerprint_tracks_result_affecting_fields_only() {
        let base = RelaxConfig::default();
        // Deterministic across calls.
        assert_eq!(base.result_fingerprint(), base.result_fingerprint());
        // Result-inert knobs never move it: threads, observability, and
        // the score-bounded pruning switch (bit-identical answers, §13).
        let threaded = RelaxConfig {
            parallel: ParallelConfig { threads: 8, clamp_to_cores: false },
            obs: ObsConfig::enabled(),
            pruning: false,
            ..base.clone()
        };
        assert_eq!(base.result_fingerprint(), threaded.result_fingerprint());
        // Every result-affecting field moves it.
        let variants = [
            RelaxConfig { w_gen: 0.8, ..base.clone() },
            RelaxConfig { w_spec: 0.95, ..base.clone() },
            RelaxConfig { radius: 3, ..base.clone() },
            RelaxConfig { dynamic_radius: false, ..base.clone() },
            RelaxConfig { max_radius: 9, ..base.clone() },
            base.clone().no_context(),
            base.clone().no_corpus(),
            RelaxConfig { use_path_weight: false, ..base.clone() },
            RelaxConfig { use_tfidf: false, ..base.clone() },
            RelaxConfig { frequency_mode: FrequencyMode::DescendantSet, ..base.clone() },
            RelaxConfig { add_shortcuts: false, ..base.clone() },
            RelaxConfig { mapping: MappingMethod::Exact, ..base.clone() },
            RelaxConfig { mapping: MappingMethod::edit_tau2(), ..base.clone() },
            RelaxConfig { mapping: MappingMethod::Edit(3), ..base.clone() },
            RelaxConfig {
                mapping: MappingMethod::Embedding { threshold: 0.9 },
                ..base.clone()
            },
            RelaxConfig { mapping: MappingMethod::Phonetic, ..base.clone() },
            RelaxConfig { strip_modifiers: true, ..base.clone() },
        ];
        let mut seen = vec![base.result_fingerprint()];
        for (i, v) in variants.iter().enumerate() {
            let fp = v.result_fingerprint();
            assert!(!seen.contains(&fp), "variant {i} collided: {v:?}");
            seen.push(fp);
        }
    }

    #[test]
    fn mapping_presets() {
        assert_eq!(MappingMethod::edit_tau2(), MappingMethod::Edit(2));
        match MappingMethod::embedding_default() {
            MappingMethod::Embedding { threshold } => assert!(threshold > 0.0),
            other => panic!("{other:?}"),
        }
    }
}
