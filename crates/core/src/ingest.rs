//! Offline external knowledge source ingestion (Algorithm 1, §5.1).
//!
//! [`ingest`] runs a staged pipeline whose expensive stages — instance
//! mapping, the reachability closure, per-tag frequency rollups, and
//! shortcut discovery — shard over `config.parallel.threads` scoped
//! workers with bit-identical outputs for every thread count.
//! [`ingest_reference`] preserves the original single-pass sequential
//! implementation as the exactness oracle (DESIGN.md §9).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use medkb_corpus::MentionCounts;
use medkb_ekg::{Ekg, ReachabilityIndex, UpwardScratch};
use medkb_embed::SifModel;
use medkb_kb::Kb;
use medkb_ontology::context::generate_contexts;
use medkb_ontology::ContextSpec;
use medkb_snomed::ContextTag;
use medkb_types::{ContextId, ExtConceptId, Id, InstanceId, Result};

use crate::config::RelaxConfig;
use crate::frequency::Frequencies;
use crate::mapping::ConceptMapper;

/// Instance → external concept mappings (`M`), stored as one vector
/// sorted by instance id.
///
/// Replaces the previous `HashMap<InstanceId, ExtConceptId>`: iteration
/// is deterministic (so serialization is byte-stable without sorting at
/// write time), lookups are a binary search over a cache-friendly flat
/// array, and the store can adopt the backing vector wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MappingIndex {
    entries: Vec<(InstanceId, ExtConceptId)>,
}

impl MappingIndex {
    /// Build from mapping pairs in any order (instance ids are unique —
    /// each KB instance maps at most once).
    pub fn from_pairs(mut pairs: Vec<(InstanceId, ExtConceptId)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "duplicate instance mapping");
        Self { entries: pairs }
    }

    /// The concept `inst` mapped to, if any.
    pub fn get(&self, inst: InstanceId) -> Option<ExtConceptId> {
        self.entries
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|at| self.entries[at].1)
    }

    /// Whether `inst` mapped to any concept.
    pub fn contains_key(&self, inst: InstanceId) -> bool {
        self.get(inst).is_some()
    }

    /// Number of mapped instances.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no instance mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All `(instance, concept)` pairs in ascending instance order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, ExtConceptId)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted backing slice (what the store serializes).
    pub fn as_slice(&self) -> &[(InstanceId, ExtConceptId)] {
        &self.entries
    }
}

/// Reverse mapping index: external concept → its mapped instances, stored
/// CSR-style (sorted distinct concepts + offsets + one flat instance
/// array) instead of `HashMap<ExtConceptId, Vec<InstanceId>>`.
///
/// Per-concept instance order is the KB insertion order of the original
/// mapping pass — the order the reference pipeline produced — so answers
/// that expose instance lists are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceIndex {
    concepts: Vec<ExtConceptId>,
    offsets: Vec<u32>,
    instances: Vec<InstanceId>,
}

impl InstanceIndex {
    /// Build from mapping pairs in insertion order (per-concept instance
    /// order is preserved; concepts are sorted for binary search).
    pub fn from_run(pairs: &[(InstanceId, ExtConceptId)]) -> Self {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        // Stable by concept: within a concept, insertion order survives.
        order.sort_by_key(|&at| pairs[at].1);
        let mut concepts = Vec::new();
        let mut offsets = vec![0u32];
        let mut instances = Vec::with_capacity(pairs.len());
        for &at in &order {
            let (inst, concept) = pairs[at];
            if concepts.last() != Some(&concept) {
                concepts.push(concept);
                offsets.push(instances.len() as u32);
            }
            instances.push(inst);
            *offsets.last_mut().expect("offsets non-empty") = instances.len() as u32;
        }
        Self { concepts, offsets, instances }
    }

    /// Reassemble from the store's flat sections. `offsets` must have
    /// `concepts.len() + 1` monotone entries ending at `instances.len()`.
    pub fn from_parts(
        concepts: Vec<ExtConceptId>,
        offsets: Vec<u32>,
        instances: Vec<InstanceId>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), concepts.len() + 1);
        Self { concepts, offsets, instances }
    }

    /// Instances mapped to `concept` (empty when unflagged).
    pub fn get(&self, concept: ExtConceptId) -> &[InstanceId] {
        match self.concepts.binary_search(&concept) {
            Ok(at) => &self.instances[self.offsets[at] as usize..self.offsets[at + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Sorted distinct flagged concepts.
    pub fn concepts(&self) -> &[ExtConceptId] {
        &self.concepts
    }

    /// CSR offsets (`concepts().len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat instance array the offsets slice into.
    pub fn instances(&self) -> &[InstanceId] {
        &self.instances
    }
}

/// The artifacts Algorithm 1 produces: contexts `C`, frequencies `F`,
/// mappings `M`, flagged external concepts `FEC` — plus the customized
/// graph and the indexes the online phase needs.
#[derive(Debug, Clone)]
pub struct IngestOutput {
    /// The external knowledge source, with shortcut edges added.
    pub ekg: Ekg,
    /// The set of possible contexts `C` (Algorithm 1 lines 1–4).
    pub contexts: Vec<ContextSpec>,
    /// Context → semantic tag, dense over the contiguous context ids
    /// (which corpus sentence family measures each context).
    pub tag_of: Vec<ContextTag>,
    /// Per-context concept frequencies and IC (`F`).
    pub freqs: Frequencies,
    /// Instance → external concept mappings (`M`), sorted by instance id.
    pub mappings: MappingIndex,
    /// Reverse index: external concept → its mapped instances (CSR).
    pub instances_of: InstanceIndex,
    /// Flagged external concepts (`FEC`): those with a KB instance.
    pub flagged: HashSet<ExtConceptId>,
    /// The mapper, reused online for query terms (Algorithm 2 line 1 uses
    /// "the same mapping function as in Algorithm 1").
    pub mapper: ConceptMapper,
    /// Bitset transitive closure of the graph, built once here and reused
    /// by every online LCS minimality check and shortcut validation
    /// (shortcut edges never change the closure, so it stays valid for the
    /// customized graph).
    pub reach: ReachabilityIndex,
    /// Number of shortcut edges the customization added.
    pub shortcuts_added: usize,
}

/// Metric names the ingestion pipeline records (DESIGN.md §10). Stage
/// timers are µs histograms (one observation per ingest run), volumes are
/// counters, and the thread budget is a gauge.
pub mod obs_names {
    /// Context generation (Algorithm 1 lines 1–4).
    pub const STAGE_CONTEXTS_US: &str = "ingest.stage.contexts_us";
    /// Mapper construction plus instance mapping (lines 5–11).
    pub const STAGE_MAPPING_US: &str = "ingest.stage.mapping_us";
    /// Reachability closure build.
    pub const STAGE_REACH_US: &str = "ingest.stage.reach_us";
    /// Frequency and IC table computation (lines 12–18).
    pub const STAGE_FREQS_US: &str = "ingest.stage.freqs_us";
    /// Shortcut discovery and application (lines 19–23).
    pub const STAGE_SHORTCUTS_US: &str = "ingest.stage.shortcuts_us";
    /// End-to-end ingest wall time.
    pub const STAGE_TOTAL_US: &str = "ingest.stage.total_us";
    /// KB instances examined by the mapping stage (counter).
    pub const INSTANCES_SCANNED: &str = "ingest.instances.scanned";
    /// Instances that mapped to an external concept (counter).
    pub const INSTANCES_MAPPED: &str = "ingest.instances.mapped";
    /// Distinct flagged external concepts (counter).
    pub const CONCEPTS_FLAGGED: &str = "ingest.concepts.flagged";
    /// Contexts generated from the ontology (counter).
    pub const CONTEXTS_GENERATED: &str = "ingest.contexts.generated";
    /// Shortcut edges the customization added (counter).
    pub const SHORTCUTS_ADDED: &str = "ingest.shortcuts.added";
    /// Worker threads the run was configured with (gauge).
    pub const THREADS: &str = "ingest.threads";

    /// Every stage-timer histogram ingestion registers. The `bench_json`
    /// smoke assertion checks each one is present in the snapshot.
    pub const STAGE_TIMERS: &[&str] = &[
        STAGE_CONTEXTS_US,
        STAGE_MAPPING_US,
        STAGE_REACH_US,
        STAGE_FREQS_US,
        STAGE_SHORTCUTS_US,
        STAGE_TOTAL_US,
    ];
}

/// Minimum depth an ancestor must have to receive a shortcut edge.
///
/// Algorithm 1 read literally connects every flagged concept to *all* of
/// its non-parent ancestors, including the root and the hierarchy heads —
/// which would turn the top of the taxonomy into a hub that puts every
/// flagged concept within 2 hops of every other and makes the radius
/// meaningless. Real deployments prune those top levels; we skip ancestors
/// above this depth (documented and ablated in DESIGN.md §5 — set the
/// constant's effect aside by raising `radius`).
pub const SHORTCUT_MIN_ANCESTOR_DEPTH: u32 = 2;

/// Wall-clock breakdown of one [`ingest_with_stats`] run (seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Context generation (Algorithm 1 lines 1–4).
    pub contexts_s: f64,
    /// Mapper construction plus instance mapping (lines 5–11).
    pub mapping_s: f64,
    /// Reachability closure build.
    pub reach_s: f64,
    /// Frequency and IC table computation (lines 12–18).
    pub freqs_s: f64,
    /// Shortcut discovery and application (lines 19–23).
    pub shortcuts_s: f64,
    /// End-to-end wall time of the ingest call.
    pub total_s: f64,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

/// Run Algorithm 1: ingest the external knowledge source `ekg` (consumed
/// and customized) against the knowledge base `kb` with corpus statistics
/// `counts`.
///
/// `sif` is required when `config.mapping` is the embedding flavour.
/// Sharded stages honour `config.parallel.threads`; outputs are identical
/// for every thread count.
pub fn ingest(
    kb: &Kb,
    ekg: Ekg,
    counts: &MentionCounts,
    sif: Option<Arc<SifModel>>,
    config: &RelaxConfig,
) -> Result<IngestOutput> {
    ingest_with_stats(kb, ekg, counts, sif, config).map(|(out, _)| out)
}

/// [`ingest`] plus a per-stage wall-clock breakdown (for `bench_json
/// --ingest` and the criterion groups).
pub fn ingest_with_stats(
    kb: &Kb,
    mut ekg: Ekg,
    counts: &MentionCounts,
    sif: Option<Arc<SifModel>>,
    config: &RelaxConfig,
) -> Result<(IngestOutput, IngestStats)> {
    let threads = config.parallel.effective_threads();
    let mut stats = IngestStats { threads, ..IngestStats::default() };
    let t_total = Instant::now();

    // —— Context generation (lines 1–4) ——
    let t = Instant::now();
    let ontology = kb.ontology();
    let contexts = generate_contexts(ontology);
    // Context ids are dense in relationship order, so position == id.
    let tag_of: Vec<ContextTag> = contexts
        .iter()
        .map(|c| {
            let rel = ontology.relationship(c.relationship);
            ContextTag::from_relationship(ontology.concept_name(rel.domain), &rel.name)
        })
        .collect();
    stats.contexts_s = t.elapsed().as_secs_f64();

    // —— Mappings (lines 5–11) ——
    // The mapper probes are read-only and independent per instance, so the
    // instance list fans out over contiguous shards; merging the per-shard
    // hits back in shard order replays the sequential insertion order
    // exactly (`instances_of` vectors keep the KB iteration order).
    let t = Instant::now();
    let mapper = ConceptMapper::build(&ekg, config.mapping, sif)?;
    let instances: Vec<(InstanceId, &str)> =
        kb.instances().map(|(id, inst)| (id, &*inst.name)).collect();
    let shard = instances.len().div_ceil(threads).max(1);
    let mapped: Vec<Vec<(InstanceId, ExtConceptId)>> = if threads <= 1 {
        vec![map_shard(&mapper, &ekg, &instances)]
    } else {
        crossbeam::thread::scope(|s| {
            let (mapper, ekg) = (&mapper, &ekg);
            let handles: Vec<_> = instances
                .chunks(shard)
                .map(|chunk| s.spawn(move |_| map_shard(mapper, ekg, chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("mapping worker")).collect()
        })
        .expect("mapping scope")
    };
    let pairs: Vec<(InstanceId, ExtConceptId)> = mapped.into_iter().flatten().collect();
    let flagged: HashSet<ExtConceptId> = pairs.iter().map(|&(_, c)| c).collect();
    let instances_of = InstanceIndex::from_run(&pairs);
    let mappings = MappingIndex::from_pairs(pairs);
    stats.mapping_s = t.elapsed().as_secs_f64();

    // —— Reachability closure ——
    // Built before the frequency tables so the intrinsic-IC descendant
    // counts can come from the closure instead of a BFS per concept;
    // shortcuts never change the closure, so building on the native graph
    // up front is equivalent to the reference order.
    let t = Instant::now();
    let reach = ReachabilityIndex::build_with_threads(&ekg, threads);
    stats.reach_s = t.elapsed().as_secs_f64();

    // —— Concept frequencies (lines 12–18) ——
    // Computed on the native graph; shortcut edges never contribute to the
    // Eq. 2 rollup (they duplicate paths that are already counted).
    let t = Instant::now();
    let freqs = Frequencies::compute_with(
        &ekg,
        counts,
        config.frequency_mode,
        config.use_tfidf,
        Some(&reach),
        threads,
    );
    stats.freqs_s = t.elapsed().as_secs_f64();

    // —— Sparsity customization (lines 19–23, Figure 5) ——
    // Two phases: read-only candidate discovery over the native graph
    // (sharded, with one reusable Dijkstra scratch per worker), then
    // sequential application in topo order. Shortcut edges carry their
    // original weight, so they never change upward distances, reached
    // sets, or Dijkstra settle order — which is what makes the split
    // equivalent to the reference's interleaved discover-and-apply loop.
    let t = Instant::now();
    let mut shortcuts_added = 0usize;
    if config.add_shortcuts {
        let order: Vec<ExtConceptId> = ekg.topo_children_first().to_vec();
        // Dense flag table: discovery probes the flag of every reached
        // ancestor, and a direct index beats a hash probe in that loop.
        let mut flag_table = vec![false; ekg.len()];
        for &c in &flagged {
            flag_table[Id::as_usize(c)] = true;
        }
        let shard = order.len().div_ceil(threads).max(1);
        let discovered: Vec<Vec<(ExtConceptId, ExtConceptId, u32)>> = if threads <= 1 {
            vec![discover_shortcuts(&ekg, &flag_table, &order)]
        } else {
            crossbeam::thread::scope(|s| {
                let (ekg, flagged) = (&ekg, &flag_table);
                let handles: Vec<_> = order
                    .chunks(shard)
                    .map(|chunk| s.spawn(move |_| discover_shortcuts(ekg, flagged, chunk)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shortcut worker")).collect()
            })
            .expect("shortcut scope")
        };
        for (a, b, dist) in discovered.into_iter().flatten() {
            ekg.add_shortcut_with(a, b, dist, &reach)?;
            shortcuts_added += 1;
        }
    }
    stats.shortcuts_s = t.elapsed().as_secs_f64();
    stats.total_s = t_total.elapsed().as_secs_f64();

    // Ingest runs once per build, so recording goes straight through the
    // registry (no pre-resolved handles needed). Stage timers land one
    // observation each; `to_json_stable` keeps only their counts, so the
    // stable snapshot stays deterministic despite wall-clock values.
    if let Some(reg) = config.obs.registry() {
        let us = |s: f64| (s * 1e6) as u64;
        for (name, secs) in [
            (obs_names::STAGE_CONTEXTS_US, stats.contexts_s),
            (obs_names::STAGE_MAPPING_US, stats.mapping_s),
            (obs_names::STAGE_REACH_US, stats.reach_s),
            (obs_names::STAGE_FREQS_US, stats.freqs_s),
            (obs_names::STAGE_SHORTCUTS_US, stats.shortcuts_s),
            (obs_names::STAGE_TOTAL_US, stats.total_s),
        ] {
            reg.latency(name).record(us(secs));
        }
        reg.counter(obs_names::INSTANCES_SCANNED).add(instances.len() as u64);
        reg.counter(obs_names::INSTANCES_MAPPED).add(mappings.len() as u64);
        reg.counter(obs_names::CONCEPTS_FLAGGED).add(flagged.len() as u64);
        reg.counter(obs_names::CONTEXTS_GENERATED).add(contexts.len() as u64);
        reg.counter(obs_names::SHORTCUTS_ADDED).add(shortcuts_added as u64);
        reg.gauge(obs_names::THREADS).set(threads as u64);
    }

    Ok((
        IngestOutput {
            ekg,
            contexts,
            tag_of,
            freqs,
            mappings,
            instances_of,
            flagged,
            mapper,
            reach,
            shortcuts_added,
        },
        stats,
    ))
}

/// Map one contiguous shard of KB instances (read-only).
fn map_shard(
    mapper: &ConceptMapper,
    ekg: &Ekg,
    instances: &[(InstanceId, &str)],
) -> Vec<(InstanceId, ExtConceptId)> {
    instances
        .iter()
        .filter_map(|&(id, name)| mapper.map(ekg, name).map(|c| (id, c)))
        .collect()
}

/// Discover the shortcut candidates of one contiguous run of source
/// concepts, in the exact order the reference loop would add them.
///
/// One epoch-stamped [`UpwardScratch`] is reused across the whole run
/// (the satellite fix for the per-concept dense-table allocation the old
/// loop paid). `reached()` yields ancestors in Dijkstra settle order —
/// ascending distance, descending id on ties — which is fully determined
/// by the final distances and therefore matches the dense reference
/// traversal.
pub(crate) fn discover_shortcuts(
    ekg: &Ekg,
    flagged: &[bool],
    sources: &[ExtConceptId],
) -> Vec<(ExtConceptId, ExtConceptId, u32)> {
    let mut scratch = UpwardScratch::new();
    let mut parents: Vec<ExtConceptId> = Vec::new();
    let mut out = Vec::new();
    for &a in sources {
        let a_flagged = flagged[Id::as_usize(a)];
        parents.clear();
        parents.extend(ekg.parents(a).iter().map(|e| e.to));
        // Upward distances double as |shortestPath(A, B)|. Discovery runs
        // before any shortcut is applied, so the graph is all-native
        // (unit weights) and the level-BFS specialization applies.
        ekg.upward_unit_distances_into(a, &mut scratch);
        for &b in scratch.reached() {
            let dist = scratch.distance(b).unwrap_or(u32::MAX);
            // Direct parents are rare (usually 1–2), so a linear scan of
            // the small vec beats a hash probe here.
            if parents.contains(&b)
                || dist < 2
                || ekg.depth(b) < SHORTCUT_MIN_ANCESTOR_DEPTH
                || !(a_flagged || flagged[Id::as_usize(b)])
            {
                continue;
            }
            out.push((a, b, dist));
        }
    }
    out
}

/// The original sequential Algorithm 1 implementation, preserved verbatim
/// as the pre-optimization oracle: the staged [`ingest`] pipeline is
/// pinned bit-identical to this by the `crates/core/tests` property tests
/// (the `relax_concept_reference` discipline).
pub fn ingest_reference(
    kb: &Kb,
    mut ekg: Ekg,
    counts: &MentionCounts,
    sif: Option<Arc<SifModel>>,
    config: &RelaxConfig,
) -> Result<IngestOutput> {
    // —— Context generation (lines 1–4) ——
    let ontology = kb.ontology();
    let contexts = generate_contexts(ontology);
    // Context ids are dense in relationship order, so position == id.
    let tag_of: Vec<ContextTag> = contexts
        .iter()
        .map(|c| {
            let rel = ontology.relationship(c.relationship);
            ContextTag::from_relationship(ontology.concept_name(rel.domain), &rel.name)
        })
        .collect();

    // —— Mappings (lines 5–11) ——
    let mapper = ConceptMapper::build(&ekg, config.mapping, sif)?;
    let mut pairs: Vec<(InstanceId, ExtConceptId)> = Vec::new();
    for (id, instance) in kb.instances() {
        if let Some(concept) = mapper.map(&ekg, &instance.name) {
            pairs.push((id, concept));
        }
    }
    let flagged: HashSet<ExtConceptId> = pairs.iter().map(|&(_, c)| c).collect();
    let instances_of = InstanceIndex::from_run(&pairs);
    let mappings = MappingIndex::from_pairs(pairs);

    // —— Concept frequencies (lines 12–18) ——
    // Computed on the native graph; shortcut edges never contribute to the
    // Eq. 2 rollup (they duplicate paths that are already counted).
    let freqs = Frequencies::compute(&ekg, counts, config.frequency_mode, config.use_tfidf);

    // —— Sparsity customization (lines 19–23, Figure 5) ——
    // The closure is computed once, before any shortcut exists; shortcuts
    // never change reachability, so the same index validates every
    // insertion and then serves the online phase.
    let reach = ReachabilityIndex::build(&ekg);
    let mut shortcuts_added = 0usize;
    if config.add_shortcuts {
        let order: Vec<ExtConceptId> = ekg.topo_children_first().to_vec();
        for a in order {
            let a_flagged = flagged.contains(&a);
            let parents: HashSet<ExtConceptId> = ekg.parents(a).iter().map(|e| e.to).collect();
            // Upward distances double as |shortestPath(A, B)|.
            for (b, dist) in ekg.upward_distances_from(a).iter() {
                if parents.contains(&b)
                    || dist < 2
                    || ekg.depth(b) < SHORTCUT_MIN_ANCESTOR_DEPTH
                    || !(a_flagged || flagged.contains(&b))
                {
                    continue;
                }
                ekg.add_shortcut_with(a, b, dist, &reach)?;
                shortcuts_added += 1;
            }
        }
    }

    Ok(IngestOutput {
        ekg,
        contexts,
        tag_of,
        freqs,
        mappings,
        instances_of,
        flagged,
        mapper,
        reach,
        shortcuts_added,
    })
}

impl IngestOutput {
    /// The semantic tag of a context.
    pub fn tag(&self, context: ContextId) -> ContextTag {
        self.tag_of.get(context.as_usize()).copied().unwrap_or(ContextTag::General)
    }

    /// Instances mapped to `concept` (empty for unflagged concepts).
    pub fn instances(&self, concept: ExtConceptId) -> &[InstanceId] {
        self.instances_of.get(concept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingMethod;
    use std::collections::HashMap;
    use medkb_corpus::{Corpus, CorpusConfig, CorpusGenerator};
    use medkb_snomed::{MedWorld, WorldConfig};

    fn setup() -> (MedWorld, Corpus, MentionCounts) {
        let world = MedWorld::generate(&WorldConfig::tiny(71));
        let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
            .generate(&CorpusConfig::tiny(72));
        let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
        (world, corpus, counts)
    }

    fn exact_config() -> RelaxConfig {
        RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() }
    }

    #[test]
    fn produces_contexts_for_every_relationship() {
        let (world, _, counts) = setup();
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        assert_eq!(out.contexts.len(), world.kb.ontology().relationship_count());
        assert_eq!(out.tag(world.treatment_context()), ContextTag::Treatment);
    }

    #[test]
    fn exact_mappings_are_all_correct() {
        let (world, _, counts) = setup();
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        assert!(!out.mappings.is_empty());
        for (inst, concept) in out.mappings.iter() {
            assert_eq!(
                world.origins[inst].concept,
                Some(concept),
                "exact mapping must match gold for {:?}",
                world.kb.name(inst)
            );
        }
    }

    #[test]
    fn flagged_equals_mapped_concepts() {
        let (world, _, counts) = setup();
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        let from_mappings: HashSet<ExtConceptId> =
            out.mappings.iter().map(|(_, c)| c).collect();
        assert_eq!(out.flagged, from_mappings);
        for &c in &out.flagged {
            assert!(!out.instances(c).is_empty());
        }
    }

    #[test]
    fn shortcuts_added_and_counted() {
        let (world, _, counts) = setup();
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        assert!(out.shortcuts_added > 0);
        assert_eq!(out.ekg.shortcut_count(), out.shortcuts_added);
        // Original graph untouched in the world copy.
        assert_eq!(world.terminology.ekg.shortcut_count(), 0);
    }

    #[test]
    fn shortcuts_can_be_disabled() {
        let (world, _, counts) = setup();
        let config = RelaxConfig { add_shortcuts: false, ..exact_config() };
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config).unwrap();
        assert_eq!(out.shortcuts_added, 0);
        assert_eq!(out.ekg.shortcut_count(), 0);
    }

    #[test]
    fn figure5_shortcut_created() {
        // In the paper fragment, flag "kidney disease" via a KB whose only
        // instance is kidney disease; the 3-hop descendant must get a
        // shortcut of original distance 3.
        let f = medkb_snomed::figures::paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let drug = ob.concept("Drug");
        ob.relationship("treats", drug, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let fc = kb.ontology().lookup_concept("Finding").unwrap();
        kb.instance("kidney disease", fc);
        let kb = kb.build().unwrap();
        let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
        let out = ingest(&kb, f.ekg.clone(), &counts, None, &exact_config()).unwrap();
        let deep = out.ekg.lookup_name("chronic kidney disease stage 1 due to hypertension")[0];
        let kd = out.ekg.lookup_name("kidney disease")[0];
        let edge = out
            .ekg
            .parents(deep)
            .iter()
            .find(|e| e.to == kd)
            .expect("figure 5 shortcut must exist");
        assert!(edge.shortcut);
        assert_eq!(edge.weight, 3, "original distance preserved on the edge");
        // One-hop now.
        assert!(out.ekg.neighborhood(deep, 1).iter().any(|&(c, _)| c == kd));
    }

    #[test]
    fn metrics_record_stage_timers_and_volumes() {
        let (world, _, counts) = setup();
        let registry = medkb_obs::Registry::shared();
        let config = RelaxConfig {
            obs: crate::config::ObsConfig::with_registry(Arc::clone(&registry)),
            ..exact_config()
        };
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config).unwrap();
        let snap = registry.snapshot();
        for &timer in obs_names::STAGE_TIMERS {
            assert_eq!(snap.histogram_count(timer), 1, "{timer}");
        }
        assert_eq!(snap.counter(obs_names::INSTANCES_MAPPED), out.mappings.len() as u64);
        assert_eq!(snap.counter(obs_names::CONCEPTS_FLAGGED), out.flagged.len() as u64);
        assert_eq!(snap.counter(obs_names::CONTEXTS_GENERATED), out.contexts.len() as u64);
        assert_eq!(snap.counter(obs_names::SHORTCUTS_ADDED), out.shortcuts_added as u64);
        assert!(
            snap.counter(obs_names::INSTANCES_SCANNED)
                >= snap.counter(obs_names::INSTANCES_MAPPED)
        );
        // Instrumentation changes no artifact: rerun without obs.
        let plain =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        assert_eq!(out.mappings, plain.mappings);
        assert_eq!(out.freqs, plain.freqs);
        assert_eq!(out.shortcuts_added, plain.shortcuts_added);
    }

    #[test]
    fn unmappable_instances_stay_unmapped_under_exact() {
        let (world, _, counts) = setup();
        let out =
            ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &exact_config())
                .unwrap();
        for inst in world.instances_with_shape(medkb_snomed::NameShape::Unmappable) {
            assert!(!out.mappings.contains_key(inst));
        }
    }
}
