//! The Table 2 competitor rankers.
//!
//! Every method consumes the same `(query concept, candidate pool,
//! context)` input and emits a ranking, so the evaluation isolates the
//! *scoring* differences:
//!
//! * `QR` and its ablations — [`crate::similarity::QrScorer`] under the
//!   [`crate::config::RelaxConfig`] flags.
//! * `IC` — the plain corpus information-content similarity [2], i.e.
//!   Eq. 3 with aggregate frequencies and no path factor
//!   ([`RelaxConfig::ic_baseline`]).
//! * `Embedding-trained` / `Embedding-pre-trained` — cosine similarity of
//!   SIF phrase embeddings of the concept names ([`EmbeddingRanker`]); the
//!   two variants differ only in the corpus the model was fitted on.
//! * `Wu-Palmer` — the classic depth-based path similarity [42]
//!   ([`WuPalmerRanker`]), an extra reference point.

use std::sync::Arc;

use medkb_ekg::lcs::lcs;
use medkb_ekg::Ekg;
use medkb_embed::SifModel;
use medkb_types::ExtConceptId;

use crate::config::RelaxConfig;

pub use crate::similarity::QrScorer;

/// A uniform scoring interface over `(query, candidate)` concept pairs.
pub trait ConceptRanker {
    /// Similarity score (higher = more related).
    fn score(&self, query: ExtConceptId, candidate: ExtConceptId) -> f64;

    /// Rank `candidates` for `query`, best first, ties by id.
    fn rank(&self, query: ExtConceptId, candidates: &[ExtConceptId]) -> Vec<(ExtConceptId, f64)> {
        let mut scored: Vec<(ExtConceptId, f64)> =
            candidates.iter().map(|&c| (c, self.score(query, c))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }
}

/// Cosine similarity of SIF phrase embeddings of concept names.
pub struct EmbeddingRanker<'a> {
    ekg: &'a Ekg,
    model: Arc<SifModel>,
}

impl<'a> EmbeddingRanker<'a> {
    /// A ranker over `ekg` using the given (trained or "pre-trained")
    /// model.
    pub fn new(ekg: &'a Ekg, model: Arc<SifModel>) -> Self {
        Self { ekg, model }
    }
}

impl ConceptRanker for EmbeddingRanker<'_> {
    fn score(&self, query: ExtConceptId, candidate: ExtConceptId) -> f64 {
        self.model
            .similarity(self.ekg.name(query), self.ekg.name(candidate))
            .unwrap_or(0.0)
    }
}

/// Wu-Palmer path similarity: `2·depth(lcs) / (depth(a) + depth(b))`.
pub struct WuPalmerRanker<'a> {
    ekg: &'a Ekg,
}

impl<'a> WuPalmerRanker<'a> {
    /// A ranker over `ekg`.
    pub fn new(ekg: &'a Ekg) -> Self {
        Self { ekg }
    }
}

impl ConceptRanker for WuPalmerRanker<'_> {
    fn score(&self, query: ExtConceptId, candidate: ExtConceptId) -> f64 {
        let out = lcs(self.ekg, query, candidate);
        let lcs_depth: f64 = out.concepts.iter().map(|&c| f64::from(self.ekg.depth(c))).sum::<f64>()
            / out.concepts.len() as f64;
        let denom = f64::from(self.ekg.depth(query)) + f64::from(self.ekg.depth(candidate));
        if denom == 0.0 {
            return 1.0;
        }
        (2.0 * lcs_depth / denom).clamp(0.0, 1.0)
    }
}

/// Adapter exposing a [`QrScorer`] (with a fixed context tag) as a
/// [`ConceptRanker`].
pub struct QrRanker<'a> {
    scorer: QrScorer<'a>,
    tag: Option<medkb_snomed::ContextTag>,
}

impl<'a> QrRanker<'a> {
    /// Wrap a scorer with the context it should use.
    pub fn new(
        ekg: &'a Ekg,
        freqs: &'a crate::frequency::Frequencies,
        config: &'a RelaxConfig,
        tag: Option<medkb_snomed::ContextTag>,
    ) -> Self {
        Self { scorer: QrScorer::new(ekg, freqs, config), tag }
    }
}

impl ConceptRanker for QrRanker<'_> {
    fn score(&self, query: ExtConceptId, candidate: ExtConceptId) -> f64 {
        self.scorer.score(query, candidate, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_snomed::figures::paper_fragment;

    #[test]
    fn wu_palmer_prefers_deeper_lcs() {
        let f = paper_fragment();
        let wp = WuPalmerRanker::new(&f.ekg);
        let headache = f.concept("headache");
        let throat = f.concept("pain in throat");
        let bronchitis = f.concept("bronchitis");
        assert!(wp.score(headache, throat) > wp.score(headache, bronchitis));
        assert!((wp.score(headache, headache) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wu_palmer_is_symmetric_and_bounded() {
        let f = paper_fragment();
        let wp = WuPalmerRanker::new(&f.ekg);
        let a = f.concept("pneumonia");
        let b = f.concept("kidney disease");
        assert_eq!(wp.score(a, b), wp.score(b, a));
        assert!((0.0..=1.0).contains(&wp.score(a, b)));
    }

    #[test]
    fn rank_orders_best_first_with_id_ties() {
        struct Constant;
        impl ConceptRanker for Constant {
            fn score(&self, _q: ExtConceptId, _c: ExtConceptId) -> f64 {
                0.5
            }
        }
        let pool = vec![ExtConceptId::new(5), ExtConceptId::new(1), ExtConceptId::new(3)];
        let ranked = Constant.rank(ExtConceptId::new(0), &pool);
        let ids: Vec<u32> = ranked.iter().map(|&(c, _)| c.raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
