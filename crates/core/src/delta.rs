//! Incremental delta ingestion (ROADMAP item 3).
//!
//! Production KBs change continuously; a full re-ingest at SNOMED scale
//! costs minutes (BENCH_store: 335 s with embedding training). This module
//! applies document/instance/concept deltas by updating only the affected
//! state:
//!
//! * mention counts — trie-scoped recount of the touched documents
//!   ([`medkb_corpus::CountTrie`]),
//! * frequency rollups — a topo-ordered recurrence over the dirty ancestor
//!   cone ([`crate::frequency::RawFrequencies`]),
//! * reachability — localized interval/exception repair
//!   ([`medkb_ekg::ReachabilityIndex::repair`]), falling back to a full
//!   rebuild past a dirtiness threshold (counted in obs),
//! * mapping/instance slabs — patched in place at their id-sorted
//!   positions.
//!
//! The correctness contract is absolute: after [`DeltaEngine::apply`], the
//! engine's [`IngestOutput`] is **bit-identical** to an honest full
//! re-ingest of the mutated inputs (same counts, same frozen SIF model,
//! same config). The `medkb-fuzz` delta differential oracle pins this over
//! the 240 adversarial worlds at 1/2/4/8 threads.
//!
//! # Error taxonomy
//!
//! An invalid operation rejects the whole delta with
//! [`MedKbError::Validation`]: every already-applied operation of the
//! failed delta is rolled back (the report's line number is the 1-based
//! index of the offending op). Two documented rollback residues exist, both
//! invisible to derived outputs: instance slots stay allocated (tombstoned)
//! and concepts added by an earlier op of a failed delta remain as retired
//! leaves.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use medkb_corpus::{Corpus, CountTrie, Document, MentionCounts, Sentence};
use medkb_ekg::{Ekg, ReachabilityIndex};
use medkb_embed::SifModel;
use medkb_kb::Kb;
use medkb_snomed::ContextTag;
use medkb_text::tokenize;
use medkb_types::{
    ExtConceptId, Id, InstanceId, MedKbError, OntoConceptId, Result, ValidationReport,
};

use crate::config::RelaxConfig;
use crate::frequency::{Frequencies, RawFrequencies};
use crate::ingest::{discover_shortcuts, ingest, IngestOutput, InstanceIndex, MappingIndex};
use crate::mapping::ConceptMapper;

/// Metric names delta ingestion records (DESIGN.md §15).
pub mod obs_names {
    /// Wall time of one [`super::DeltaEngine::apply`] (µs histogram).
    pub const APPLY_US: &str = "delta.apply_us";
    /// Deltas applied (counter).
    pub const APPLIES: &str = "delta.applies";
    /// Individual operations applied (counter).
    pub const OPS_APPLIED: &str = "delta.ops.applied";
    /// Reachability repairs that fell back to a full rebuild because the
    /// dirty cone crossed the threshold (counter).
    pub const FALLBACK_FULL_REBUILDS: &str = "delta.fallback_full_rebuilds";
    /// Full mention recounts (name churn or a stale trie) (counter).
    pub const FULL_RECOUNTS: &str = "delta.full_recounts";
    /// Full raw-frequency recomputes (full recount, or tf-idf with a
    /// changed document total) (counter).
    pub const FULL_FREQ_RECOMPUTES: &str = "delta.full_freq_recomputes";
    /// Full instance remaps after a name change (counter).
    pub const FULL_REMAPS: &str = "delta.full_remaps";
    /// Documents incrementally recounted (counter).
    pub const DOCS_RECOUNTED: &str = "delta.docs.recounted";
    /// Shortcut-stage reruns (graph, name, or flagged-set change) (counter).
    pub const SHORTCUT_RERUNS: &str = "delta.shortcut_reruns";
}

/// Reachability repair falls back to a full rebuild when the dirty cone
/// covers at least this fraction of the graph (repair's cache hit rate —
/// and with it the win over a fresh build — collapses past that point).
pub const REACH_REBUILD_THRESHOLD: f64 = 0.25;

/// One atomic input mutation. Operations validate before mutating, so a
/// rejected operation has not changed anything.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Append a document to the corpus. Each sentence is a context tag
    /// plus text fragments (tokenized and interned at apply time).
    AddDocument {
        /// Sentences as `(tag, text fragments)`.
        sentences: Vec<(ContextTag, Vec<String>)>,
    },
    /// Insert a document at a position (the inverse of a removal).
    InsertDocumentAt {
        /// Position to insert at (`<= docs.len()`).
        index: usize,
        /// Sentences as `(tag, text fragments)`.
        sentences: Vec<(ContextTag, Vec<String>)>,
    },
    /// Remove the document at `index`.
    RemoveDocument {
        /// Position to remove.
        index: usize,
    },
    /// Add a KB instance of `concept` (id = current slot count).
    AddInstance {
        /// Display name.
        name: String,
        /// Ontology concept of the instance.
        concept: OntoConceptId,
    },
    /// Tombstone a KB instance (triples touching it are dropped).
    RemoveInstance {
        /// Instance to retire.
        id: InstanceId,
    },
    /// Un-tombstone a KB instance (its triples stay gone).
    RestoreInstance {
        /// Instance to restore.
        id: InstanceId,
    },
    /// Append a synonym to an external concept.
    AddSynonym {
        /// Concept to extend.
        concept: ExtConceptId,
        /// The new synonym.
        synonym: String,
    },
    /// Insert a synonym at a position (the inverse of a removal).
    InsertSynonymAt {
        /// Concept to extend.
        concept: ExtConceptId,
        /// Position in the concept's synonym list.
        index: usize,
        /// The synonym.
        synonym: String,
    },
    /// Remove the synonym at `index` of `concept`.
    RemoveSynonym {
        /// Concept to shrink.
        concept: ExtConceptId,
        /// Position in the concept's synonym list.
        index: usize,
    },
    /// Add a native `is_a` edge (appended at the edge-list ends).
    AddIsA {
        /// Sub-concept.
        child: ExtConceptId,
        /// Super-concept.
        parent: ExtConceptId,
    },
    /// Add a native `is_a` edge at exact edge-list positions (the inverse
    /// of a removal; restores byte-stable edge order).
    AddIsAAt {
        /// Sub-concept.
        child: ExtConceptId,
        /// Super-concept.
        parent: ExtConceptId,
        /// Position in the child's up-edge list.
        up_pos: usize,
        /// Position in the parent's down-edge list.
        down_pos: usize,
    },
    /// Remove a native `is_a` edge. The child must keep ≥ 1 parent.
    RemoveIsA {
        /// Sub-concept.
        child: ExtConceptId,
        /// Super-concept.
        parent: ExtConceptId,
    },
    /// Add a new external concept under `parents`.
    ///
    /// **Not invertible**: concept ids never shrink. The generated inverse
    /// is a best-effort [`DeltaOp::RetireConcept`].
    AddConcept {
        /// Primary name (must be new).
        name: String,
        /// Synonyms.
        synonyms: Vec<String>,
        /// Native parents (non-empty).
        parents: Vec<ExtConceptId>,
    },
    /// Retire a concept structurally: its native children are re-homed to
    /// its parents and detached from it, leaving it a leaf. Its names stay
    /// registered (ids and lookup never shrink). Expands to primitive edge
    /// operations, so it is exactly invertible.
    RetireConcept {
        /// Concept to retire (not the root).
        concept: ExtConceptId,
    },
}

/// An ordered batch of input mutations applied atomically: either every
/// operation applies and the derived state is republished, or none do.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Delta {
    /// Operations in application order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// A delta from operations.
    pub fn new(ops: Vec<DeltaOp>) -> Self {
        Self { ops }
    }
}

/// Dirtiness accumulated while mutating the inputs (phase 1), consumed by
/// the derived-state recompute (phase 2).
#[derive(Debug, Default)]
struct DirtyState {
    /// Native edge set or concept count changed.
    graph_changed: bool,
    /// Concept names or synonyms changed (trie + mapper invalidated).
    names_changed: bool,
    /// Documents added this delta (in application order).
    docs_added: Vec<Document>,
    /// Documents removed this delta.
    docs_removed: Vec<Document>,
    /// Instances whose live/mapped status may have changed.
    instances_touched: Vec<InstanceId>,
    /// Seeds of the reachability dirty cone: churned-edge children and
    /// added concepts. The cone is each seed plus its new-graph
    /// descendants.
    reach_seeds: HashSet<ExtConceptId>,
    /// Seeds of the frequency rollup cone: churned-edge children, their
    /// **old**-graph ancestors (captured before the mutation), and added
    /// concepts. The cone is the new-graph ancestor closure of these plus
    /// the touched-direct concepts.
    freq_seeds: HashSet<ExtConceptId>,
}

/// The long-lived incremental-ingestion engine: owns the mutable inputs
/// (KB, corpus, native graph), the intermediate state that makes patching
/// cheap (counts + trie, raw frequency tables, mapping pairs), and the
/// current derived [`IngestOutput`].
///
/// Lifecycle: build once ([`DeltaEngine::new`] runs a full ingest,
/// [`DeltaEngine::from_opened`] adopts a store-opened output), then
/// [`DeltaEngine::apply`] deltas and publish [`DeltaEngine::output`]
/// clones through a `SnapshotStore` epoch swap.
#[derive(Debug)]
pub struct DeltaEngine {
    kb: Kb,
    corpus: Corpus,
    /// The native external graph (no shortcut edges) — the canonical
    /// mutable input. `out.ekg` is derived from it per publish.
    ekg: Ekg,
    sif: Option<Arc<SifModel>>,
    config: RelaxConfig,
    counts: MentionCounts,
    trie: CountTrie,
    raw: RawFrequencies,
    /// Mapping pairs in ascending instance id — exactly the insertion
    /// order the full pipeline's KB scan produces.
    pairs: Vec<(InstanceId, ExtConceptId)>,
    out: IngestOutput,
}

impl DeltaEngine {
    /// Build the engine with a full (honest) ingest of the inputs.
    pub fn new(
        kb: Kb,
        corpus: Corpus,
        ekg: Ekg,
        sif: Option<Arc<SifModel>>,
        config: RelaxConfig,
    ) -> Result<Self> {
        let threads = config.parallel.effective_threads();
        let counts = MentionCounts::count_with_threads(&corpus, &ekg, threads);
        let out = ingest(&kb, ekg.clone(), &counts, sif.clone(), &config)?;
        Ok(Self::assemble(kb, corpus, ekg, sif, config, counts, out))
    }

    /// Adopt a store-opened (or otherwise prebuilt) [`IngestOutput`]
    /// instead of re-running the full ingest. `ekg` must be the native
    /// (shortcut-free) graph `out` was built from; counts and raw
    /// frequency state are recomputed deterministically from the inputs.
    pub fn from_opened(
        kb: Kb,
        corpus: Corpus,
        ekg: Ekg,
        sif: Option<Arc<SifModel>>,
        config: RelaxConfig,
        out: IngestOutput,
    ) -> Self {
        let threads = config.parallel.effective_threads();
        let counts = MentionCounts::count_with_threads(&corpus, &ekg, threads);
        Self::assemble(kb, corpus, ekg, sif, config, counts, out)
    }

    fn assemble(
        kb: Kb,
        corpus: Corpus,
        ekg: Ekg,
        sif: Option<Arc<SifModel>>,
        config: RelaxConfig,
        counts: MentionCounts,
        out: IngestOutput,
    ) -> Self {
        let threads = config.parallel.effective_threads();
        let trie = CountTrie::build(&ekg, &corpus.vocab);
        let raw = RawFrequencies::compute(
            &ekg,
            &counts,
            config.frequency_mode,
            config.use_tfidf,
            threads,
        );
        let pairs = out.mappings.as_slice().to_vec();
        Self { kb, corpus, ekg, sif, config, counts, trie, raw, pairs, out }
    }

    /// The current derived output (publish clones of this through the
    /// snapshot store).
    pub fn output(&self) -> &IngestOutput {
        &self.out
    }

    /// The knowledge base input.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// The corpus input.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The native (shortcut-free) external graph input.
    pub fn native_ekg(&self) -> &Ekg {
        &self.ekg
    }

    /// The current mention counts.
    pub fn counts(&self) -> &MentionCounts {
        &self.counts
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RelaxConfig {
        &self.config
    }

    /// Apply `delta` atomically and recompute the affected derived state.
    ///
    /// On success, returns the **inverse delta**: applying it restores the
    /// previous [`IngestOutput`] bit-identically ([`DeltaOp::AddConcept`]
    /// is the documented exception — see its docs).
    ///
    /// # Errors
    /// [`MedKbError::Validation`] when an operation is invalid; every
    /// operation of the failed delta is rolled back and the derived state
    /// is untouched.
    pub fn apply(&mut self, delta: &Delta) -> Result<Delta> {
        let t = Instant::now();
        let mut dirty = DirtyState::default();
        let mut undo: Vec<DeltaOp> = Vec::new();
        for (at, op) in delta.ops.iter().enumerate() {
            match self.apply_input_op(op, &mut dirty) {
                Ok(mut inv) => undo.append(&mut inv),
                Err(e) => {
                    self.rollback(undo);
                    let mut report = ValidationReport::new();
                    report.defect("delta", Some(at + 1), e.to_string());
                    let Err(err) = report.into_result() else {
                        unreachable!("non-empty report")
                    };
                    return Err(err);
                }
            }
        }
        self.recompute(&dirty);
        if let Some(reg) = self.config.obs.registry() {
            reg.counter(obs_names::APPLIES).inc();
            reg.counter(obs_names::OPS_APPLIED).add(delta.ops.len() as u64);
            reg.latency(obs_names::APPLY_US).record(t.elapsed().as_micros() as u64);
        }
        undo.reverse();
        Ok(Delta { ops: undo })
    }

    /// Undo already-applied operations of a failed delta (inverses applied
    /// newest-first). Inverse application cannot fail.
    fn rollback(&mut self, undo: Vec<DeltaOp>) {
        let mut scratch = DirtyState::default();
        for op in undo.iter().rev() {
            self.apply_input_op(op, &mut scratch).expect("delta rollback must succeed");
        }
    }

    /// Phase 1: apply one operation to the inputs, record its dirtiness,
    /// and return its inverse operation(s). Validation happens before any
    /// mutation, so `Err` means "nothing changed" for this op.
    fn apply_input_op(&mut self, op: &DeltaOp, dirty: &mut DirtyState) -> Result<Vec<DeltaOp>> {
        match op {
            DeltaOp::AddDocument { sentences } => {
                self.insert_document(self.corpus.docs.len(), sentences, dirty)
            }
            DeltaOp::InsertDocumentAt { index, sentences } => {
                self.insert_document(*index, sentences, dirty)
            }
            DeltaOp::RemoveDocument { index } => {
                if *index >= self.corpus.docs.len() {
                    return Err(MedKbError::invalid(format!(
                        "remove_document: index {} out of range ({} docs)",
                        index,
                        self.corpus.docs.len()
                    )));
                }
                let doc = self.corpus.docs.remove(*index);
                let sentences = doc
                    .sentences
                    .iter()
                    .map(|s| {
                        let words = s
                            .tokens
                            .iter()
                            .map(|&tok| self.corpus.vocab.resolve(tok).to_string())
                            .collect();
                        (s.tag, words)
                    })
                    .collect();
                dirty.docs_removed.push(doc);
                Ok(vec![DeltaOp::InsertDocumentAt { index: *index, sentences }])
            }
            DeltaOp::AddInstance { name, concept } => {
                let id = self.kb.add_instance(name, *concept)?;
                dirty.instances_touched.push(id);
                Ok(vec![DeltaOp::RemoveInstance { id }])
            }
            DeltaOp::RemoveInstance { id } => {
                self.kb.remove_instance(*id)?;
                dirty.instances_touched.push(*id);
                Ok(vec![DeltaOp::RestoreInstance { id: *id }])
            }
            DeltaOp::RestoreInstance { id } => {
                self.kb.restore_instance(*id)?;
                dirty.instances_touched.push(*id);
                Ok(vec![DeltaOp::RemoveInstance { id: *id }])
            }
            DeltaOp::AddSynonym { concept, synonym } => {
                let index = self.ekg.add_synonym(*concept, synonym)?;
                dirty.names_changed = true;
                Ok(vec![DeltaOp::RemoveSynonym { concept: *concept, index }])
            }
            DeltaOp::InsertSynonymAt { concept, index, synonym } => {
                let at = self.ekg.insert_synonym_at(*concept, *index, synonym)?;
                dirty.names_changed = true;
                Ok(vec![DeltaOp::RemoveSynonym { concept: *concept, index: at }])
            }
            DeltaOp::RemoveSynonym { concept, index } => {
                let synonym = self.ekg.remove_synonym(*concept, *index)?;
                dirty.names_changed = true;
                Ok(vec![DeltaOp::InsertSynonymAt {
                    concept: *concept,
                    index: *index,
                    synonym,
                }])
            }
            DeltaOp::AddIsA { child, parent } => {
                let anc_old = self.ekg.ancestors(*child);
                self.ekg.add_is_a(*child, *parent)?;
                dirty.note_edge_churn(*child, anc_old);
                Ok(vec![DeltaOp::RemoveIsA { child: *child, parent: *parent }])
            }
            DeltaOp::AddIsAAt { child, parent, up_pos, down_pos } => {
                let anc_old = self.ekg.ancestors(*child);
                self.ekg.add_is_a_at(*child, *parent, *up_pos, *down_pos)?;
                dirty.note_edge_churn(*child, anc_old);
                Ok(vec![DeltaOp::RemoveIsA { child: *child, parent: *parent }])
            }
            DeltaOp::RemoveIsA { child, parent } => {
                let anc_old = self.ekg.ancestors(*child);
                let (up_pos, down_pos) = self.ekg.remove_is_a(*child, *parent)?;
                dirty.note_edge_churn(*child, anc_old);
                Ok(vec![DeltaOp::AddIsAAt {
                    child: *child,
                    parent: *parent,
                    up_pos,
                    down_pos,
                }])
            }
            DeltaOp::AddConcept { name, synonyms, parents } => {
                let id = self.ekg.add_concept(name, synonyms, parents)?;
                dirty.graph_changed = true;
                dirty.names_changed = true;
                dirty.reach_seeds.insert(id);
                dirty.freq_seeds.insert(id);
                Ok(vec![DeltaOp::RetireConcept { concept: id }])
            }
            DeltaOp::RetireConcept { concept } => self.retire_concept(*concept, dirty),
        }
    }

    /// Build (tokenize + intern) and insert a document.
    fn insert_document(
        &mut self,
        index: usize,
        sentences: &[(ContextTag, Vec<String>)],
        dirty: &mut DirtyState,
    ) -> Result<Vec<DeltaOp>> {
        if index > self.corpus.docs.len() {
            return Err(MedKbError::invalid(format!(
                "insert_document: index {} out of range ({} docs)",
                index,
                self.corpus.docs.len()
            )));
        }
        let doc = Document {
            sentences: sentences
                .iter()
                .map(|(tag, fragments)| Sentence {
                    tag: *tag,
                    tokens: fragments
                        .iter()
                        .flat_map(|text| tokenize(text))
                        .map(|word| self.corpus.vocab.intern(&word))
                        .collect(),
                })
                .collect(),
        };
        self.corpus.docs.insert(index, doc.clone());
        dirty.docs_added.push(doc);
        Ok(vec![DeltaOp::RemoveDocument { index }])
    }

    /// Expand a concept retirement into primitive edge operations: re-home
    /// every native child to the concept's parents, then detach it. A
    /// failure mid-expansion (which the preconditions rule out) rolls the
    /// partial expansion back before propagating.
    fn retire_concept(
        &mut self,
        concept: ExtConceptId,
        dirty: &mut DirtyState,
    ) -> Result<Vec<DeltaOp>> {
        if Id::as_usize(concept) >= self.ekg.len() {
            return Err(MedKbError::invalid(format!(
                "retire_concept: concept id {} out of range",
                Id::as_usize(concept)
            )));
        }
        if concept == self.ekg.root() {
            return Err(MedKbError::invalid("retire_concept: cannot retire the root"));
        }
        let children: Vec<ExtConceptId> = self.ekg.native_children(concept).collect();
        let parents: Vec<ExtConceptId> =
            self.ekg.parents(concept).iter().map(|e| e.to).collect();
        let mut undo: Vec<DeltaOp> = Vec::new();
        for &child in &children {
            let mut ops: Vec<DeltaOp> = Vec::new();
            for &p in &parents {
                if !self.ekg.parents(child).iter().any(|e| e.to == p) {
                    ops.push(DeltaOp::AddIsA { child, parent: p });
                }
            }
            ops.push(DeltaOp::RemoveIsA { child, parent: concept });
            for op in &ops {
                match self.apply_input_op(op, dirty) {
                    Ok(mut inv) => undo.append(&mut inv),
                    Err(e) => {
                        self.rollback(undo);
                        return Err(e);
                    }
                }
            }
        }
        Ok(undo)
    }

    /// Phase 2: bring every derived artifact up to date. Each branch
    /// reproduces exactly what a full re-ingest of the mutated inputs
    /// computes (the differential oracle's contract); clean state keeps
    /// its bits by being left untouched.
    fn recompute(&mut self, dirty: &DirtyState) {
        let threads = self.config.parallel.effective_threads();

        // —— Graph derived state ——
        if dirty.graph_changed {
            self.ekg.rebuild_derived().expect("delta graph stays acyclic and rooted");
        }

        // —— Mention counts ——
        let docs_churned = !dirty.docs_added.is_empty() || !dirty.docs_removed.is_empty();
        let counts_full = dirty.names_changed
            || (docs_churned && !self.trie.validate(&self.corpus.vocab));
        let n_docs_changed = dirty.docs_added.len() != dirty.docs_removed.len();
        let mut touched_direct: HashSet<ExtConceptId> = HashSet::new();
        if counts_full {
            self.counts = MentionCounts::count_with_threads(&self.corpus, &self.ekg, threads);
            self.trie = CountTrie::build(&self.ekg, &self.corpus.vocab);
            if let Some(reg) = self.config.obs.registry() {
                reg.counter(obs_names::FULL_RECOUNTS).inc();
            }
        } else if docs_churned {
            // Add before remove: a document added and removed by the same
            // delta must be counted in before it is un-counted.
            touched_direct.extend(self.counts.add_docs(&mut self.trie, &dirty.docs_added));
            touched_direct.extend(self.counts.remove_docs(&mut self.trie, &dirty.docs_removed));
            if let Some(reg) = self.config.obs.registry() {
                reg.counter(obs_names::DOCS_RECOUNTED)
                    .add((dirty.docs_added.len() + dirty.docs_removed.len()) as u64);
            }
        }

        // —— Mapping slabs ——
        let old_flagged = std::mem::take(&mut self.out.flagged);
        let mut mapping_changed = false;
        if dirty.names_changed {
            // Names feed both the mapper's index and exact lookup; rebuild
            // deterministically against the frozen SIF model and remap the
            // full instance scan (bit-identical to the pipeline's sharded
            // scan, which merges in shard order).
            self.out.mapper =
                ConceptMapper::build(&self.ekg, self.config.mapping, self.sif.clone())
                    .expect("mapper rebuild with unchanged config and frozen SIF");
            self.pairs = self
                .kb
                .instances()
                .filter_map(|(id, inst)| {
                    self.out.mapper.map(&self.ekg, &inst.name).map(|c| (id, c))
                })
                .collect();
            mapping_changed = true;
            if let Some(reg) = self.config.obs.registry() {
                reg.counter(obs_names::FULL_REMAPS).inc();
            }
        } else if !dirty.instances_touched.is_empty() {
            // Single-probe patches at the id-sorted position (ascending
            // instance id IS the full scan's insertion order).
            for &id in &dirty.instances_touched {
                let slot = self.pairs.binary_search_by_key(&id, |&(i, _)| i);
                let mapped = if self.kb.is_retired(id) {
                    None
                } else {
                    self.out.mapper.map(&self.ekg, self.kb.name(id))
                };
                match (slot, mapped) {
                    (Ok(at), Some(c)) => self.pairs[at].1 = c,
                    (Ok(at), None) => {
                        self.pairs.remove(at);
                    }
                    (Err(at), Some(c)) => self.pairs.insert(at, (id, c)),
                    (Err(_), None) => {}
                }
            }
            mapping_changed = true;
        }
        if mapping_changed {
            self.out.flagged = self.pairs.iter().map(|&(_, c)| c).collect();
            self.out.instances_of = InstanceIndex::from_run(&self.pairs);
            self.out.mappings = MappingIndex::from_pairs(self.pairs.clone());
        } else {
            self.out.flagged = old_flagged.clone();
        }
        let flagged_changed = self.out.flagged != old_flagged;

        // —— Reachability ——
        if dirty.graph_changed {
            let n = self.ekg.len();
            let mut cone: HashSet<ExtConceptId> = HashSet::new();
            for &seed in &dirty.reach_seeds {
                cone.insert(seed);
                cone.extend(self.ekg.descendants(seed));
            }
            if (cone.len() as f64) >= REACH_REBUILD_THRESHOLD * (n as f64) {
                self.out.reach = ReachabilityIndex::build_with_threads(&self.ekg, threads);
                if let Some(reg) = self.config.obs.registry() {
                    reg.counter(obs_names::FALLBACK_FULL_REBUILDS).inc();
                }
            } else {
                self.out.reach = self.out.reach.repair(&self.ekg, &cone);
            }
        }

        // —— Frequencies ——
        let freq_full = counts_full || (self.config.use_tfidf && n_docs_changed);
        if freq_full {
            self.raw = RawFrequencies::compute(
                &self.ekg,
                &self.counts,
                self.config.frequency_mode,
                self.config.use_tfidf,
                threads,
            );
            self.out.freqs = Frequencies::finish(&self.ekg, &self.raw, Some(&self.out.reach));
            if let Some(reg) = self.config.obs.registry() {
                reg.counter(obs_names::FULL_FREQ_RECOMPUTES).inc();
            }
        } else if !touched_direct.is_empty() || dirty.graph_changed {
            self.raw.grow(self.ekg.len());
            self.raw.patch_direct(
                &self.counts,
                self.config.use_tfidf,
                touched_direct.iter().copied(),
            );
            // The rollup cone: touched-direct concepts, edge-churn seeds
            // (children + their old-graph ancestors), and the new-graph
            // ancestor closure of all of them (transitivity makes one
            // expansion round enough).
            let mut cone: HashSet<ExtConceptId> = HashSet::new();
            for &seed in touched_direct.iter().chain(&dirty.freq_seeds) {
                cone.insert(seed);
                cone.extend(self.ekg.ancestors(seed));
            }
            self.raw.patch_rollup(
                &self.ekg,
                self.config.frequency_mode,
                &self.out.reach,
                &cone,
            );
            self.out.freqs = Frequencies::finish(&self.ekg, &self.raw, Some(&self.out.reach));
        }

        // —— Shortcut customization ——
        // The published graph re-derives whenever its native skeleton,
        // name tables, or the flagged set changed; otherwise the previous
        // customized graph is reused byte-for-byte.
        if dirty.graph_changed || dirty.names_changed || flagged_changed {
            let mut ekg = self.ekg.clone();
            let mut shortcuts_added = 0usize;
            if self.config.add_shortcuts {
                let order: Vec<ExtConceptId> = ekg.topo_children_first().to_vec();
                let mut flag_table = vec![false; ekg.len()];
                for &c in &self.out.flagged {
                    flag_table[Id::as_usize(c)] = true;
                }
                for (a, b, dist) in discover_shortcuts(&ekg, &flag_table, &order) {
                    ekg.add_shortcut_with(a, b, dist, &self.out.reach)
                        .expect("rediscovered shortcut stays valid");
                    shortcuts_added += 1;
                }
            }
            self.out.ekg = ekg;
            self.out.shortcuts_added = shortcuts_added;
            if let Some(reg) = self.config.obs.registry() {
                reg.counter(obs_names::SHORTCUT_RERUNS).inc();
            }
        }
    }
}

impl DirtyState {
    /// Record a native-edge mutation on `child`, with the child's ancestor
    /// set captured **before** the mutation (DescendantSet rollup rows of
    /// former ancestors change too).
    fn note_edge_churn(&mut self, child: ExtConceptId, anc_old: HashSet<ExtConceptId>) {
        self.graph_changed = true;
        self.reach_seeds.insert(child);
        self.freq_seeds.insert(child);
        self.freq_seeds.extend(anc_old);
    }
}

/// Whether two ingest outputs are bit-identical on every artifact the
/// online phase reads — the delta-vs-full differential oracle's equality.
///
/// The mapper is compared with [`crate::mapping::MapperParts::bits_eq`]
/// rather than
/// `PartialEq`: trained embedding tables can legitimately contain NaN
/// rows at SNOMED scale (SGNS divergence is deterministic but not
/// finite), and float `==` would report two bit-identical such mappers
/// as different. The frequency tables stay on `PartialEq` — every entry
/// is a probability or a `ln`-derived IC of one, neither of which can
/// be NaN.
pub fn outputs_identical(a: &IngestOutput, b: &IngestOutput) -> bool {
    a.ekg.to_parts() == b.ekg.to_parts()
        && a.contexts == b.contexts
        && a.tag_of == b.tag_of
        && a.freqs == b.freqs
        && a.mappings == b.mappings
        && a.instances_of == b.instances_of
        && a.flagged == b.flagged
        && a.mapper.to_parts().bits_eq(&b.mapper.to_parts())
        && a.reach == b.reach
        && a.shortcuts_added == b.shortcuts_added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MappingMethod;
    use medkb_corpus::{CorpusConfig, CorpusGenerator};
    use medkb_snomed::{MedWorld, WorldConfig};

    fn engine() -> DeltaEngine {
        let world = MedWorld::generate(&WorldConfig::tiny(71));
        let corpus = CorpusGenerator::new(&world.terminology, &world.oracle)
            .generate(&CorpusConfig::tiny(72));
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        DeltaEngine::new(world.kb, corpus, world.terminology.ekg, None, config).unwrap()
    }

    /// Honest full re-ingest of the engine's current (mutated) inputs.
    fn full_twin(engine: &DeltaEngine) -> IngestOutput {
        let counts = MentionCounts::count(engine.corpus(), engine.native_ekg());
        ingest(
            engine.kb(),
            engine.native_ekg().clone(),
            &counts,
            None,
            engine.config(),
        )
        .unwrap()
    }

    fn doc_delta() -> Delta {
        Delta::new(vec![DeltaOp::AddDocument {
            sentences: vec![(
                ContextTag::Treatment,
                vec!["this drug treats the first finding quickly".to_string()],
            )],
        }])
    }

    #[test]
    fn document_delta_matches_full_reingest() {
        let mut e = engine();
        e.apply(&doc_delta()).unwrap();
        assert!(outputs_identical(e.output(), &full_twin(&e)));
        e.apply(&Delta::new(vec![DeltaOp::RemoveDocument { index: 0 }])).unwrap();
        assert!(outputs_identical(e.output(), &full_twin(&e)));
    }

    #[test]
    fn edge_delta_matches_full_reingest() {
        let mut e = engine();
        // Give the last concept an extra parent (root is always id 0's
        // ancestor; pick a parent that isn't already one and isn't a
        // descendant).
        let ekg = e.native_ekg();
        let child = ekg
            .concepts()
            .last()
            .expect("non-empty world");
        let parent = ekg
            .concepts()
            .find(|&p| {
                p != child
                    && !ekg.parents(child).iter().any(|edge| edge.to == p)
                    && !ekg.is_ancestor(child, p)
            })
            .expect("some valid new parent");
        e.apply(&Delta::new(vec![DeltaOp::AddIsA { child, parent }])).unwrap();
        assert!(outputs_identical(e.output(), &full_twin(&e)));
        e.apply(&Delta::new(vec![DeltaOp::RemoveIsA { child, parent }])).unwrap();
        assert!(outputs_identical(e.output(), &full_twin(&e)));
    }

    #[test]
    fn inverse_delta_round_trips_bit_identically() {
        let mut e = engine();
        let before = e.output().clone();
        let inverse = e.apply(&doc_delta()).unwrap();
        e.apply(&inverse).unwrap();
        assert!(outputs_identical(e.output(), &before));
    }

    #[test]
    fn invalid_op_rejects_whole_delta_and_rolls_back() {
        let mut e = engine();
        let before = e.output().clone();
        let n_docs = e.corpus().len();
        let bad = Delta::new(vec![
            doc_delta().ops[0].clone(),
            DeltaOp::RemoveDocument { index: 9_999_999 },
        ]);
        let err = e.apply(&bad).unwrap_err();
        assert!(matches!(err, MedKbError::Validation(_)), "{err}");
        assert_eq!(e.corpus().len(), n_docs, "applied op must roll back");
        assert!(outputs_identical(e.output(), &before));
        // And the engine still works afterwards.
        e.apply(&doc_delta()).unwrap();
        assert!(outputs_identical(e.output(), &full_twin(&e)));
    }

    #[test]
    fn no_op_delta_changes_nothing() {
        let mut e = engine();
        let before = e.output().clone();
        e.apply(&Delta::default()).unwrap();
        assert!(outputs_identical(e.output(), &before));
    }
}
