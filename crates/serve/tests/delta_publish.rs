//! Continuous-publish soak (ISSUE 8 satellite): a delta engine applies a
//! churn stream and publishes each result through the snapshot swap while
//! reader threads hammer the server.
//!
//! The invariant extends `serve_stress.rs` from two alternating payloads
//! to a 20-epoch evolving world: every answer a reader gets must be
//! **bit-identical to an uncached relax against the exact epoch stamped on
//! it** — no torn reads between the delta engine's publishes, no stale
//! epochs, and the epoch sequence must stay dense and ordered.
//!
//! Expectation tables are built in a first pass (the delta stream is
//! deterministic, so a replay engine reproduces every epoch bit-for-bit —
//! itself a re-assertion of the engine's determinism), then the live pass
//! applies the same deltas under sustained reads.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use medkb_core::{
    Delta, DeltaEngine, MappingMethod, QueryRelaxer, RelaxationResult, RelaxConfig,
};
use medkb_fuzz::{generate_delta, AdversarialWorld, DeltaKind};
use medkb_serve::{RelaxServer, ServeConfig};
use medkb_types::{ContextId, ExtConceptId, Id};

const PUBLISHES: u64 = 20;

/// The churn kinds the soak cycles through — the answer-moving families
/// (documents shift frequencies, instances shift mappings, edges shift
/// paths), plus one no-op epoch to pin "publish of an unchanged world".
const SOAK_KINDS: [DeltaKind; 4] =
    [DeltaKind::DocChurn, DeltaKind::InstanceChurn, DeltaKind::EdgeChurn, DeltaKind::NoOp];

fn fresh_engine(w: &AdversarialWorld) -> DeltaEngine {
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    DeltaEngine::new(w.kb.clone(), w.corpus.clone(), w.ekg.clone(), None, config)
        .expect("engine build")
}

/// Queries fixed at epoch 0 (concept ids are append-only, so they stay
/// valid on every later epoch).
fn query_plan(
    w: &AdversarialWorld,
    relaxer: &QueryRelaxer,
) -> Vec<(ExtConceptId, Option<ContextId>, usize)> {
    let contexts: Vec<Option<ContextId>> = std::iter::once(None)
        .chain(relaxer.ingested().contexts.first().map(|c| Some(c.id)))
        .collect();
    let mut plan = Vec::new();
    for q in w.query_concepts() {
        for &ctx in &contexts {
            for k in [1, 5] {
                plan.push((q, ctx, k));
            }
        }
    }
    plan
}

fn soak(seed: u64, reader_threads: usize) {
    let w = AdversarialWorld::generate(seed);

    // Pass 1: materialize the delta stream and the per-epoch expectation
    // tables from an offline engine.
    let mut offline = fresh_engine(&w);
    let config = offline.config().clone();
    let plan = query_plan(&w, &QueryRelaxer::new(offline.output().clone(), config.clone()));
    assert!(!plan.is_empty(), "{}: no queries", w.label);
    let expect = |engine: &DeltaEngine| -> Vec<RelaxationResult> {
        let plain = QueryRelaxer::new(engine.output().clone(), config.clone());
        plan.iter().map(|&(q, ctx, k)| plain.relax_concept(q, ctx, k).unwrap()).collect()
    };
    let mut deltas: Vec<Delta> = Vec::new();
    let mut expected: Vec<Vec<RelaxationResult>> = vec![expect(&offline)];
    for i in 0..PUBLISHES {
        let kind = SOAK_KINDS[(i as usize) % SOAK_KINDS.len()];
        let delta = generate_delta(seed.wrapping_mul(977).wrapping_add(i), kind, &offline);
        offline.apply(&delta).expect("soak delta applies");
        deltas.push(delta);
        expected.push(expect(&offline));
    }
    // The soak must actually move the answers, or staleness would be
    // invisible to the per-epoch equality (seeds are pinned to satisfy
    // this).
    assert_ne!(
        expected[0],
        expected[PUBLISHES as usize],
        "{}: churn stream left the answers unchanged",
        w.label
    );

    // Pass 2: a fresh engine replays the same deltas live, publishing each
    // epoch under sustained reads.
    let mut live = fresh_engine(&w);
    let server = RelaxServer::new(
        live.output().clone(),
        config,
        ServeConfig { max_in_flight: 1 << 16, ..ServeConfig::default() },
    );
    let stop = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..reader_threads {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for (slot, &(q, ctx, k)) in plan.iter().enumerate() {
                        let served = server.serve_concept(q, ctx, k).unwrap();
                        let want = &expected[served.epoch as usize][slot];
                        assert_eq!(
                            *served.result, *want,
                            "{}: stale or torn answer for query {:?} at epoch {}",
                            w.label,
                            q.as_usize(),
                            served.epoch
                        );
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for (i, delta) in deltas.iter().enumerate() {
            live.apply(delta).expect("live delta applies");
            let epoch = server.publish(live.output().clone());
            assert_eq!(epoch, i as u64 + 1, "{}: epochs must be dense and ordered", w.label);
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(server.epoch(), PUBLISHES);
    assert!(
        checks.load(Ordering::Relaxed) >= plan.len(),
        "{}: readers made no progress — blocked by publishes?",
        w.label
    );
}

#[test]
fn delta_publishes_under_four_readers() {
    soak(3, 4);
}

#[test]
fn delta_publishes_under_eight_readers() {
    soak(6, 8);
}
