//! Property tests for the HTTP request parser: the no-panic contract.
//!
//! Same contract as the PR 4 loaders — arbitrary bytes, arbitrarily
//! split, may produce requests or typed errors but never a panic, never
//! an unbounded buffer, and the split points must be invisible (a valid
//! byte stream parses to the same requests however it is chunked).

use std::fmt::Debug;

use medkb_serve::http::{ParseLimits, Request, RequestParser};
use proptest::prelude::*;
use proptest::sample::Index;

const LIMITS: ParseLimits = ParseLimits { max_header_bytes: 512, max_body_bytes: 256 };

/// Pick one element of a fixed list (the vendored proptest has no
/// `sample::select`).
fn pick<T: Clone + Debug + 'static>(items: Vec<T>) -> impl Strategy<Value = T> {
    (0usize..items.len()).prop_map(move |i| items[i].clone())
}

/// Drive a parser over `bytes` split at `cuts`, collecting requests until
/// the first error (after which the connection would close).
fn drive(bytes: &[u8], cuts: &[Index]) -> Result<Vec<Request>, u16> {
    let mut splits: Vec<usize> = cuts.iter().map(|c| c.index(bytes.len() + 1)).collect();
    splits.push(0);
    splits.push(bytes.len());
    splits.sort_unstable();
    splits.dedup();
    let mut parser = RequestParser::new(LIMITS);
    let mut out = Vec::new();
    for w in splits.windows(2) {
        parser.push(&bytes[w[0]..w[1]]);
        loop {
            match parser.next_request() {
                Ok(Some(req)) => out.push(req),
                Ok(None) => break,
                Err(e) => return Err(e.status()),
            }
        }
    }
    Ok(out)
}

/// Strategy: mostly-structured request bytes (so the happy path gets real
/// coverage), with raw garbage mixed in.
fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    let request_line = (
        pick(vec!["GET", "POST", "PUT", "G\u{0}T", ""]),
        pick(vec!["/relax", "/health", "/", "/x?y=1", "bad target here"]),
        pick(vec!["HTTP/1.1", "HTTP/1.0", "HTTP/2.0", "HTP"]),
    );
    let headers = proptest::collection::vec(
        (
            pick(vec![
                "content-length",
                "x-medkb-client",
                "Content-Length",
                "bad name",
                "transfer-encoding",
            ]),
            pick(vec!["0", "3", "abc", "-1", "chunked", "999999"]),
        ),
        0..4,
    );
    let body = proptest::collection::vec(any::<u8>(), 0..12);
    let structured = (request_line, headers, body).prop_map(|((m, t, v), headers, body)| {
        let mut s = format!("{m} {t} {v}\r\n");
        for (n, val) in headers {
            s.push_str(&format!("{n}: {val}\r\n"));
        }
        s.push_str("\r\n");
        let mut bytes = s.into_bytes();
        bytes.extend_from_slice(&body);
        bytes
    });
    let garbage = proptest::collection::vec(any::<u8>(), 0..64);
    let chunk = (0usize..3, structured, garbage)
        .prop_map(|(which, s, g)| if which == 2 { g } else { s });
    proptest::collection::vec(chunk, 1..4).prop_map(|chunks| chunks.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, arbitrary split points: requests or a typed
    /// 4xx/501 status, never a panic, and the buffer stays bounded by the
    /// limits plus what one stream could legitimately carry.
    #[test]
    fn prop_parser_never_panics_and_buffer_stays_bounded(
        bytes in stream_strategy(),
        cuts in proptest::collection::vec(any::<Index>(), 0..8),
    ) {
        let mut parser = RequestParser::new(LIMITS);
        let mut splits: Vec<usize> = cuts.iter().map(|c| c.index(bytes.len() + 1)).collect();
        splits.push(0);
        splits.push(bytes.len());
        splits.sort_unstable();
        splits.dedup();
        'outer: for w in splits.windows(2) {
            parser.push(&bytes[w[0]..w[1]]);
            loop {
                match parser.next_request() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert!(matches!(e.status(), 400 | 413 | 431 | 501), "{e}");
                        break 'outer;
                    }
                }
            }
            // `Ok(None)` means the parser checked its bounds: an
            // unfinished header section can sit at most one push past the
            // header limit, plus a bounded declared body.
            prop_assert!(
                parser.buffered()
                    <= LIMITS.max_header_bytes + LIMITS.max_body_bytes + bytes.len(),
                "buffer ballooned to {}",
                parser.buffered()
            );
        }
    }

    /// Pure garbage (no structure at all) follows the same contract —
    /// this is the connection-drop-mid-anything case.
    #[test]
    fn prop_raw_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<Index>(), 0..6),
    ) {
        let _ = drive(&bytes, &cuts);
    }

    /// Split points are invisible: a valid pipelined stream parses to the
    /// same request sequence whether it arrives whole or chunked.
    #[test]
    fn prop_split_reads_equal_whole_read(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..4),
        cuts in proptest::collection::vec(any::<Index>(), 0..10),
    ) {
        let mut stream = Vec::new();
        for body in &bodies {
            stream.extend_from_slice(
                format!("POST /relax HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            );
            stream.extend_from_slice(body);
        }
        let whole = drive(&stream, &[]).expect("valid stream parses");
        let split = drive(&stream, &cuts).expect("valid stream parses split");
        prop_assert_eq!(whole.len(), bodies.len());
        prop_assert_eq!(&whole, &split);
        for (req, body) in whole.iter().zip(&bodies) {
            prop_assert_eq!(&req.body, body);
        }
    }
}
