//! Concurrent-serve stress suite (ISSUE 5 satellite): fuzz-world snapshots
//! hammered by reader threads while the main thread repeatedly publishes
//! swaps, at 1/2/4/8 reader threads.
//!
//! The invariant under test is the serving layer's whole contract: every
//! returned answer set is **bit-identical to an uncached relax against the
//! epoch that served it**. Two alternating worlds are built with *different*
//! mention counts — so their answers genuinely differ — and each reader
//! checks the result it got against the expectation table for the epoch
//! stamped on its `ServeResult`. Any stale-epoch answer (old data served
//! under a new epoch label, or vice versa) fails the equality; any blocked
//! reader would hang the generous per-test query budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use medkb_core::{ingest, MappingMethod, QueryRelaxer, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_fuzz::AdversarialWorld;
use medkb_serve::{RelaxServer, ServeConfig};
use medkb_snomed::oracle::N_TAGS;
use medkb_types::{ContextId, ExtConceptId, Id};

/// Deterministic synthetic counts over the world's concepts. Different
/// `salt`s give different frequency tables, hence different Eq. 2/Eq. 5
/// scores — the two epochs must be distinguishable by their answers.
fn counts_variant(w: &AdversarialWorld, salt: u64) -> MentionCounts {
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    for (i, c) in w.ekg.concepts().enumerate() {
        let i = i as u64;
        let mut row = [0u64; N_TAGS];
        row[0] = (i * 7 + salt * 13) % 50;
        row[1] = (i * 3 + salt * 5) % 30;
        direct.insert(c, row);
    }
    MentionCounts::from_direct(direct, HashMap::new(), 40 + salt as usize)
}

/// The fixed query plan a reader cycles through.
fn query_plan(w: &AdversarialWorld, relaxer: &QueryRelaxer) -> Vec<(ExtConceptId, Option<ContextId>, usize)> {
    let contexts: Vec<Option<ContextId>> = std::iter::once(None)
        .chain(relaxer.ingested().contexts.first().map(|c| Some(c.id)))
        .collect();
    let mut plan = Vec::new();
    for q in w.query_concepts() {
        for &ctx in &contexts {
            for k in [1, 5] {
                plan.push((q, ctx, k));
            }
        }
    }
    plan
}

fn stress_world(seed: u64, reader_threads: usize) {
    let w = AdversarialWorld::generate(seed);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };

    // Two genuinely different snapshot payloads of the same graph.
    let out_even = ingest(&w.kb, w.ekg.clone(), &counts_variant(&w, 1), None, &config).unwrap();
    let out_odd = ingest(&w.kb, w.ekg.clone(), &counts_variant(&w, 2), None, &config).unwrap();

    // Uncached expectation tables, one per epoch parity (publish alternates
    // odd/even starting from epoch 0 = `out_even`).
    let plain_even = QueryRelaxer::new(out_even.clone(), config.clone());
    let plain_odd = QueryRelaxer::new(out_odd.clone(), config.clone());
    let plan = query_plan(&w, &plain_even);
    assert!(!plan.is_empty(), "{}: no queries", w.label);
    let expect = |parity: u64| -> Vec<medkb_core::RelaxationResult> {
        let plain = if parity == 0 { &plain_even } else { &plain_odd };
        plan.iter().map(|&(q, ctx, k)| plain.relax_concept(q, ctx, k).unwrap()).collect()
    };
    let expected = [expect(0), expect(1)];
    // The two payloads must be distinguishable by their answers, otherwise
    // a stale-epoch bug would be invisible to the equality check below.
    // The seeds used by the tests are chosen (and pinned here) to satisfy
    // this.
    assert_ne!(expected[0], expected[1], "{}: epochs are answer-identical", w.label);

    let server = RelaxServer::new(
        out_even.clone(),
        config,
        ServeConfig { max_in_flight: 1 << 16, ..ServeConfig::default() },
    );
    let stop = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);
    const SWAPS: u64 = 20;

    std::thread::scope(|scope| {
        for _ in 0..reader_threads {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for (slot, &(q, ctx, k)) in plan.iter().enumerate() {
                        let served = server.serve_concept(q, ctx, k).unwrap();
                        let want = &expected[(served.epoch % 2) as usize][slot];
                        assert_eq!(
                            *served.result, *want,
                            "{}: stale or corrupted answer for query {:?} at epoch {}",
                            w.label,
                            q.as_usize(),
                            served.epoch
                        );
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Swapper: alternate payloads under sustained reads. Epoch n serves
        // `out_even` when n is even, `out_odd` when odd.
        for swap in 1..=SWAPS {
            let payload = if swap % 2 == 1 { out_odd.clone() } else { out_even.clone() };
            let epoch = server.publish(payload);
            assert_eq!(epoch, swap, "{}: epochs must be dense and ordered", w.label);
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(server.epoch(), SWAPS);
    assert!(
        checks.load(Ordering::Relaxed) >= plan.len(),
        "{}: readers made no progress — blocked by swaps?",
        w.label
    );
}

// Seeds picked for answer-distinguishable epoch payloads (asserted above):
// 1 = linear chain, 3 = disconnected forest, 4 = shortcut lattice,
// 6 = linear chain with non-ASCII names.

#[test]
fn swaps_under_sustained_reads_one_thread() {
    stress_world(1, 1);
}

#[test]
fn swaps_under_sustained_reads_two_threads() {
    stress_world(3, 2);
}

#[test]
fn swaps_under_sustained_reads_four_threads() {
    stress_world(4, 4);
}

#[test]
fn swaps_under_sustained_reads_eight_threads() {
    stress_world(6, 8);
}
