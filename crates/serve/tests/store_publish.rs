//! Restart-recovery path: publishing a snapshot from a persisted store
//! file must serve answers bit-identical to the ingest that wrote it, and
//! a corrupted file must be rejected without disturbing the current epoch.

use std::collections::HashMap;

use medkb_core::{ingest, MappingMethod, QueryRelaxer, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_fuzz::AdversarialWorld;
use medkb_serve::SnapshotStore;
use medkb_snomed::oracle::N_TAGS;
use medkb_store::WorldStore;
use medkb_types::{ExtConceptId, MedKbError};

fn counts(w: &AdversarialWorld, salt: u64) -> MentionCounts {
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    for (i, c) in w.ekg.concepts().enumerate() {
        let i = i as u64;
        let mut row = [0u64; N_TAGS];
        row[0] = (i * 7 + salt * 13) % 50;
        row[1] = (i * 3 + salt * 5) % 30;
        direct.insert(c, row);
    }
    MentionCounts::from_direct(direct, HashMap::new(), 40 + salt as usize)
}

#[test]
fn publish_from_store_serves_bit_identical_answers() {
    let w = AdversarialWorld::generate(3);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let out_a = ingest(&w.kb, w.ekg.clone(), &counts(&w, 1), None, &config).unwrap();
    let out_b = ingest(&w.kb, w.ekg.clone(), &counts(&w, 2), None, &config).unwrap();

    let path = std::env::temp_dir().join(format!("medkb-serve-store-{}.bin", std::process::id()));
    WorldStore::save(&out_b, &path).unwrap();

    let store = SnapshotStore::new(out_a, config.clone());
    assert_eq!(store.epoch(), 0);

    // A flipped byte in a section payload must be rejected and leave the
    // serving epoch untouched.
    let mut corrupted = std::fs::read(&path).unwrap();
    let at = corrupted.len() - 9;
    corrupted[at] ^= 0x10;
    let bad = std::env::temp_dir().join(format!("medkb-serve-bad-{}.bin", std::process::id()));
    std::fs::write(&bad, &corrupted).unwrap();
    match store.publish_from_store(&bad) {
        Err(MedKbError::Validation(report)) => assert!(!report.is_empty()),
        other => panic!("corrupted store accepted: {other:?}"),
    }
    let _ = std::fs::remove_file(&bad);
    assert_eq!(store.epoch(), 0, "failed publish must not advance the epoch");

    // The intact file publishes, and serves exactly what a fresh relaxer
    // over the original ingest serves.
    let epoch = store.publish_from_store(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(epoch, 1);
    let plain = QueryRelaxer::new(out_b, config);
    let snap = store.load();
    for q in w.query_concepts() {
        let want = plain.relax_concept(q, None, 5).unwrap();
        let got = snap.relaxer().relax_concept(q, None, 5).unwrap();
        assert_eq!(got, want, "{}: store-published answers diverged", w.label);
    }
}
