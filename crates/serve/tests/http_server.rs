//! Socket-level tests for the HTTP front end: everything the
//! transport-free router tests cannot see — real `TcpStream`s, split
//! writes, pipelining, keep-alive, connection teardown on poisoned
//! parses, cross-connection coalescing, hot reload, and the wire
//! bit-identity contract against in-process serving.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use medkb_core::{ingest, IngestOutput, MappingMethod, ObsConfig, QueryRelaxer, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_fuzz::AdversarialWorld;
use medkb_obs::Registry;
use medkb_serve::http::{CoalesceConfig, HttpConfig, ParseLimits, RateLimitConfig};
use medkb_serve::{HttpServer, RelaxServer, ServeConfig};
use medkb_snomed::oracle::N_TAGS;
use medkb_store::WorldStore;
use medkb_types::ExtConceptId;

fn counts(w: &AdversarialWorld, salt: u64) -> MentionCounts {
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    for (i, c) in w.ekg.concepts().enumerate() {
        let i = i as u64;
        let mut row = [0u64; N_TAGS];
        row[0] = (i * 7 + salt * 13) % 50;
        row[1] = (i * 3 + salt * 5) % 30;
        direct.insert(c, row);
    }
    MentionCounts::from_direct(direct, HashMap::new(), 40 + salt as usize)
}

fn world(seed: u64, salt: u64, config: &RelaxConfig) -> (AdversarialWorld, IngestOutput) {
    let w = AdversarialWorld::generate(seed);
    let out = ingest(&w.kb, w.ekg.clone(), &counts(&w, salt), None, config).unwrap();
    (w, out)
}

fn exact_config() -> RelaxConfig {
    RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() }
}

/// Minimal blocking HTTP/1.1 client: send one request, read one response
/// (Content-Length framed), return `(status, body)`.
fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut req = format!("{method} {path} HTTP/1.1\r\n");
    for (n, v) in headers {
        req.push_str(&format!("{n}: {v}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).unwrap();
    read_response(stream)
}

/// Read one Content-Length-framed response off the stream.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "connection closed mid-response: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).unwrap().to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length header");
    while buf.len() < header_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body =
        String::from_utf8(buf[header_end..header_end + content_length].to_vec()).unwrap();
    // Keep any pipelined surplus out of this simple client: tests that
    // pipeline frame their own reads.
    assert_eq!(buf.len(), header_end + content_length, "unexpected surplus bytes");
    (status, body)
}

fn connect(server: &HttpServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

#[test]
fn wire_answers_bit_identical_to_in_process_serving() {
    let config = exact_config();
    let (w, out) = world(3, 1, &config);
    let plain = QueryRelaxer::new(out.clone(), config.clone());
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(Arc::clone(&server), None, HttpConfig::default()).unwrap();

    let mut stream = connect(&http);
    for q in w.query_concepts().into_iter().take(8) {
        let (status, body) = roundtrip(
            &mut stream,
            "POST",
            "/relax",
            &[],
            &format!("{{\"concept\":{},\"k\":5}}", q.raw()),
        );
        assert_eq!(status, 200, "{body}");
        // The wire `result` object must be byte-for-byte the in-process
        // answer through the shared renderer — scores included.
        let direct = plain.relax_concept(q, None, 5).unwrap();
        let want = medkb_serve::http::render_relaxation(&direct);
        assert!(
            body.ends_with(&format!("\"result\":{want}}}")),
            "wire/in-process divergence for {q:?}:\n  wire: {body}\n  want: {want}"
        );
        // And the in-process serving layer agrees with itself.
        let served = server.serve_concept(q, None, 5).unwrap();
        assert_eq!(*served.result, direct);
    }
    http.shutdown();
}

#[test]
fn keep_alive_pipelining_and_split_writes_over_socket() {
    let config = exact_config();
    let (w, out) = world(4, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(server, None, HttpConfig::default()).unwrap();
    let q = w.query_concepts()[0];

    // Two requests in one write (pipelined), then one split byte-by-byte —
    // all on one keep-alive connection.
    let mut stream = connect(&http);
    let body = format!("{{\"concept\":{},\"k\":3}}", q.raw());
    let one = format!(
        "POST /relax HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(format!("{one}{one}").as_bytes()).unwrap();
    let (s1, b1) = read_two_pipelined(&mut stream);
    assert_eq!(s1, (200, 200), "{b1:?}");

    let health = b"GET /health HTTP/1.1\r\n\r\n";
    for &byte in health.iter() {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
    }
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    http.shutdown();
}

/// Read two pipelined Content-Length responses off one stream.
fn read_two_pipelined(stream: &mut TcpStream) -> ((u16, u16), (String, String)) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut parsed: Vec<(u16, String)> = Vec::new();
    let mut offset = 0usize;
    while parsed.len() < 2 {
        if let Some(pos) = buf[offset..].windows(4).position(|w| w == b"\r\n\r\n") {
            let header_end = offset + pos + 4;
            let head = std::str::from_utf8(&buf[offset..header_end]).unwrap();
            let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
            let len: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from)
                })
                .and_then(|v| v.trim().parse().ok())
                .unwrap();
            if buf.len() >= header_end + len {
                let body =
                    String::from_utf8(buf[header_end..header_end + len].to_vec()).unwrap();
                parsed.push((status, body));
                offset = header_end + len;
                continue;
            }
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "closed with {} responses parsed", parsed.len());
        buf.extend_from_slice(&chunk[..n]);
    }
    let b = parsed.pop().unwrap();
    let a = parsed.pop().unwrap();
    ((a.0, b.0), (a.1, b.1))
}

#[test]
fn malformed_and_oversized_requests_close_with_4xx() {
    let config = exact_config();
    let (_w, out) = world(5, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(
        server,
        None,
        HttpConfig {
            parse_limits: ParseLimits { max_header_bytes: 256, max_body_bytes: 128 },
            ..HttpConfig::default()
        },
    )
    .unwrap();

    // Malformed request line → 400, connection closed after.
    let mut stream = connect(&http);
    stream.write_all(b"TOTAL GARBAGE\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400);
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "connection must close");

    // Oversized headers → 431 even though the request never completes.
    let mut stream = connect(&http);
    stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    stream.write_all(&[b'a'; 512]).unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 431);

    // Oversized declared body → 413 before the body even arrives.
    let mut stream = connect(&http);
    stream.write_all(b"POST /relax HTTP/1.1\r\ncontent-length: 4096\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 413);

    // Transfer-Encoding → 501 (unimplemented framing, not a silent guess).
    let mut stream = connect(&http);
    stream
        .write_all(b"POST /relax HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
        .unwrap();
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 501);

    // A connection dropped mid-body leaves the server healthy.
    let mut stream = connect(&http);
    stream.write_all(b"POST /relax HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"co").unwrap();
    drop(stream);
    let mut stream = connect(&http);
    let (status, body) = roundtrip(&mut stream, "GET", "/health", &[], "");
    assert_eq!(status, 200, "{body}");
    http.shutdown();
}

#[test]
fn rate_limited_client_sees_429_while_others_serve() {
    let config = exact_config();
    let (w, out) = world(6, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(
        server,
        None,
        HttpConfig {
            rate_limit: RateLimitConfig { rate_per_sec: 0.001, burst: 2.0 },
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let q = w.query_concepts()[0];
    let body = format!("{{\"concept\":{},\"k\":3}}", q.raw());

    let mut greedy = connect(&http);
    let mut seen_429 = 0;
    for _ in 0..4 {
        let (status, _) =
            roundtrip(&mut greedy, "POST", "/relax", &[("x-medkb-client", "greedy")], &body);
        if status == 429 {
            seen_429 += 1;
        }
    }
    assert!(seen_429 >= 2, "greedy client must hit the bucket limit");

    // A politely-paced client on its own identity is untouched.
    let mut polite = connect(&http);
    let (status, polite_body) =
        roundtrip(&mut polite, "POST", "/relax", &[("x-medkb-client", "polite")], &body);
    assert_eq!(status, 200, "{polite_body}");
    http.shutdown();
}

#[test]
fn deadline_header_propagates_into_admission_control() {
    let config = exact_config();
    let (w, out) = world(7, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(
        server,
        None,
        // Coalescing off so the deadline path under test is the direct
        // serve path, not the coalescer's shed-at-dispatch.
        HttpConfig { coalesce: None, ..HttpConfig::default() },
    )
    .unwrap();
    let q = w.query_concepts()[0];
    let body = format!("{{\"concept\":{},\"k\":3}}", q.raw());

    let mut stream = connect(&http);
    // 0 ms budget: already expired at routing — shed with 429, same
    // Overloaded taxonomy as in-process admission control.
    let (status, resp) =
        roundtrip(&mut stream, "POST", "/relax", &[("x-medkb-deadline-ms", "0")], &body);
    assert_eq!(status, 429, "{resp}");
    assert!(resp.contains("deadline"), "{resp}");
    // A sane budget serves.
    let (status, resp) =
        roundtrip(&mut stream, "POST", "/relax", &[("x-medkb-deadline-ms", "30000")], &body);
    assert_eq!(status, 200, "{resp}");
    // A malformed header is a client error, not a silent default.
    let (status, resp) =
        roundtrip(&mut stream, "POST", "/relax", &[("x-medkb-deadline-ms", "soon")], &body);
    assert_eq!(status, 400, "{resp}");
    http.shutdown();
}

#[test]
fn concurrent_connections_coalesce_into_batches() {
    let registry = Registry::shared();
    let config = RelaxConfig {
        obs: ObsConfig::with_registry(Arc::clone(&registry)),
        ..exact_config()
    };
    let (w, out) = world(8, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http = HttpServer::start(
        server,
        Some(Arc::clone(&registry)),
        HttpConfig {
            // A wide window so every concurrent connection lands in one
            // dispatch regardless of scheduling jitter.
            coalesce: Some(CoalesceConfig { window: Duration::from_millis(150), max_batch: 64 }),
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let queries: Vec<ExtConceptId> = w.query_concepts().into_iter().take(6).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|&q| {
                let http = &http;
                scope.spawn(move || {
                    let mut stream = connect(http);
                    roundtrip(
                        &mut stream,
                        "POST",
                        "/relax",
                        &[],
                        &format!("{{\"concept\":{},\"k\":3}}", q.raw()),
                    )
                })
            })
            .collect();
        for h in handles {
            let (status, body) = h.join().unwrap();
            assert_eq!(status, 200, "{body}");
        }
    });
    let snap = registry.snapshot();
    assert!(
        snap.counter(medkb_serve::http::obs_names::COALESCE_JOINED) >= 2,
        "concurrent connections must coalesce (joined={})",
        snap.counter(medkb_serve::http::obs_names::COALESCE_JOINED)
    );
    http.shutdown();
}

#[test]
fn hot_reload_over_http_swaps_the_epoch() {
    let config = exact_config();
    let (w, out_a) = world(9, 1, &config);
    let out_b = ingest(&w.kb, w.ekg.clone(), &counts(&w, 2), None, &config).unwrap();
    let plain_b = QueryRelaxer::new(out_b.clone(), config.clone());
    let path =
        std::env::temp_dir().join(format!("medkb-http-reload-{}.bin", std::process::id()));
    WorldStore::save(&out_b, &path).unwrap();

    let server = Arc::new(RelaxServer::new(out_a, config, ServeConfig::default()));
    let http = HttpServer::start(Arc::clone(&server), None, HttpConfig::default()).unwrap();
    let mut stream = connect(&http);

    let (status, body) = roundtrip(&mut stream, "GET", "/health", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"epoch\":0"), "{body}");

    let (status, body) = roundtrip(
        &mut stream,
        "POST",
        "/reload",
        &[],
        &format!("{{\"path\":{}}}", medkb_serve::http::json::escape(path.to_str().unwrap())),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"epoch\":1"), "{body}");
    let _ = std::fs::remove_file(&path);

    // Answers now come from the new world, bit-identical to in-process.
    let q = w.query_concepts()[0];
    let (status, body) = roundtrip(
        &mut stream,
        "POST",
        "/relax",
        &[],
        &format!("{{\"concept\":{},\"k\":5}}", q.raw()),
    );
    assert_eq!(status, 200, "{body}");
    let want = medkb_serve::http::render_relaxation(&plain_b.relax_concept(q, None, 5).unwrap());
    assert!(body.ends_with(&format!("\"result\":{want}}}")), "{body}");
    assert!(body.contains("\"epoch\":1"), "{body}");

    // A bogus path fails without disturbing the published epoch.
    let (status, _) =
        roundtrip(&mut stream, "POST", "/reload", &[], r#"{"path":"/no/such/store.bin"}"#);
    assert!(status >= 400, "bogus reload must fail");
    let (status, body) = roundtrip(&mut stream, "GET", "/health", &[], "");
    assert_eq!(status, 200);
    assert!(body.contains("\"epoch\":1"), "{body}");
    http.shutdown();
}

#[test]
fn metrics_endpoint_serves_the_http_family() {
    let registry = Registry::shared();
    let config = RelaxConfig {
        obs: ObsConfig::with_registry(Arc::clone(&registry)),
        ..exact_config()
    };
    let (w, out) = world(10, 1, &config);
    let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
    let http =
        HttpServer::start(server, Some(Arc::clone(&registry)), HttpConfig::default()).unwrap();
    let q = w.query_concepts()[0];

    let mut stream = connect(&http);
    let (status, _) = roundtrip(
        &mut stream,
        "POST",
        "/relax",
        &[],
        &format!("{{\"concept\":{},\"k\":3}}", q.raw()),
    );
    assert_eq!(status, 200);
    let (status, body) = roundtrip(&mut stream, "GET", "/metrics", &[], "");
    assert_eq!(status, 200);
    assert!(medkb_obs::validate_json(&body), "metrics must be valid JSON");
    for key in ["http.requests", "http.responses.ok", "http.connections", "http.request_us"] {
        assert!(body.contains(key), "metrics missing {key}: {body}");
    }
    http.shutdown();
}
