//! Snapshot-swapped relaxation serving layer (DESIGN.md §12).
//!
//! The paper's online phase (Algorithm 2, §5.2) is built for interactive
//! clinical queries, and the same relaxed terms recur heavily across users
//! — so the serving layer puts a correctness-pinned result cache in front
//! of the relaxation engine and an epoch-based snapshot holder underneath
//! it:
//!
//! - [`SnapshotStore`]: the ingested world behind an atomically swappable
//!   `Arc`. A background re-ingest [`RelaxServer::publish`]es a new epoch
//!   without blocking in-flight readers; an old epoch is reclaimed when
//!   its last reader drops.
//! - [`ResultCache`]: power-of-two shards, per-shard lock, LRU within a
//!   shard, keyed on `(normalized term | concept, context, config
//!   fingerprint, k, epoch)` — a swap implicitly invalidates everything —
//!   with single-flight dedup so N concurrent identical misses compute
//!   once.
//! - [`RelaxServer`]: admission control (bounded in-flight, per-query
//!   deadline, [`medkb_types::MedKbError::Overloaded`] shed distinct from
//!   `NotFound`) over the two, with full `medkb-obs` instrumentation.
//!
//! The invariant everything here is tested against: serving is invisible
//! in the results. Every answer set is bit-identical to an uncached
//! `relax` call against the epoch that served it (the concurrent stress
//! suite pins this under repeated swaps at 1/2/4/8 reader threads).

mod cache;
pub mod http;
mod server;
mod snapshot;

pub use cache::{CacheKey, Lookup, QueryKey, ResultCache};
pub use http::{HttpConfig, HttpServer};
pub use server::{RelaxServer, ServeConfig, ServeResult, ServedFrom};
pub use snapshot::{Snapshot, SnapshotStore};

/// Metric names the serving layer registers (DESIGN.md §12). Hit ratio is
/// `counter_ratio(CACHE_HITS, CACHE_MISSES)` on a
/// [`medkb_obs::MetricsSnapshot`].
pub mod obs_names {
    /// Requests served from the cache, including joined flights (counter).
    pub const CACHE_HITS: &str = "serve.cache.hits";
    /// Requests that computed (single-flight leaders) (counter).
    pub const CACHE_MISSES: &str = "serve.cache.misses";
    /// LRU entries displaced by inserts (counter).
    pub const CACHE_EVICTIONS: &str = "serve.cache.evictions";
    /// Requests that waited on another request's identical in-flight
    /// computation — a subset of [`CACHE_HITS`] (counter).
    pub const SINGLEFLIGHT_WAITS: &str = "serve.cache.singleflight_waits";
    /// Requests shed by admission control or deadline (counter).
    pub const SHED: &str = "serve.shed";
    /// Snapshot swaps published (counter).
    pub const SNAPSHOT_SWAPS: &str = "serve.snapshot.swaps";
    /// Epochs reclaimed — last holder dropped (counter).
    pub const SNAPSHOT_RETIRED: &str = "serve.snapshot.retired";
    /// Currently published epoch (gauge).
    pub const EPOCH: &str = "serve.snapshot.epoch";
    /// In-flight requests at last admission (gauge).
    pub const IN_FLIGHT: &str = "serve.inflight";
    /// Cache probe latency (µs histogram).
    pub const CACHE_LOOKUP_US: &str = "serve.cache.lookup_us";
    /// End-to-end serve latency, sheds included (µs histogram).
    pub const LATENCY_US: &str = "serve.latency_us";
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    use medkb_core::{ingest, MappingMethod, ObsConfig, QueryRelaxer, RelaxConfig};
    use medkb_corpus::MentionCounts;
    use medkb_obs::Registry;
    use medkb_snomed::figures::paper_fragment;
    use medkb_snomed::oracle::N_TAGS;
    use medkb_types::{ContextId, ExtConceptId, MedKbError};

    use super::*;

    /// The paper-fragment world, same construction as the core relax tests.
    fn fragment_world(config: &RelaxConfig) -> medkb_core::IngestOutput {
        let f = paper_fragment();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let indication = ob.concept("Indication");
        let risk = ob.concept("Risk");
        let drug = ob.concept("Drug");
        ob.relationship("treat", drug, indication);
        ob.relationship("cause", drug, risk);
        ob.relationship("hasFinding", indication, finding);
        ob.relationship("hasFinding", risk, finding);
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        let fc = kb.ontology().lookup_concept("Finding").unwrap();
        for name in &f.flagged {
            kb.instance(name, fc);
        }
        let kb = kb.build().unwrap();
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &(name, treat, risk) in &f.fig4_direct_counts {
            let mut row = [0u64; N_TAGS];
            row[medkb_snomed::ContextTag::Treatment.index()] = treat;
            row[medkb_snomed::ContextTag::Risk.index()] = risk;
            direct.insert(f.concept(name), row);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 200);
        ingest(&kb, f.ekg.clone(), &counts, None, config).unwrap()
    }

    fn exact_config() -> RelaxConfig {
        RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() }
    }

    fn treatment_ctx(out: &medkb_core::IngestOutput) -> ContextId {
        out.contexts
            .iter()
            .find(|c| c.label == "Indication-hasFinding-Finding")
            .expect("treatment context")
            .id
    }

    #[test]
    fn serve_matches_uncached_relax_bit_identically() {
        let config = exact_config();
        let out = fragment_world(&config);
        let ctx = treatment_ctx(&out);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = RelaxServer::new(out, config, ServeConfig::default());
        for term in ["fever", "headache", "psychogenic fever", "pertussis"] {
            for context in [None, Some(ctx)] {
                for k in [1, 5, 50] {
                    let served = server.serve(term, context, k).unwrap();
                    let direct = plain.relax(term, context, k).unwrap();
                    assert_eq!(*served.result, direct, "{term} ctx={context:?} k={k}");
                    assert_eq!(served.epoch, 0);
                    // Second call: same Arc out of the cache, same answers.
                    let again = server.serve(term, context, k).unwrap();
                    assert!(again.cached(), "{term} should be resident");
                    assert!(Arc::ptr_eq(&served.result, &again.result));
                }
            }
        }
    }

    /// Score-bounded pruning (DESIGN.md §13) is answer-inert, so the
    /// serving layer treats it as cache-compatible: pruned and exhaustive
    /// configurations share one result fingerprint, and a server running
    /// the bounded scan returns answers bit-identical to an exhaustive
    /// uncached relaxer — cached and uncached alike.
    #[test]
    fn pruned_and_exhaustive_servers_share_fingerprint_and_answers() {
        let pruned_cfg = RelaxConfig { pruning: true, ..exact_config() };
        let exhaustive_cfg = RelaxConfig { pruning: false, ..exact_config() };
        assert_eq!(
            pruned_cfg.result_fingerprint(),
            exhaustive_cfg.result_fingerprint(),
            "pruning must not key the result cache"
        );

        let out = fragment_world(&pruned_cfg);
        let ctx = treatment_ctx(&out);
        let exhaustive = QueryRelaxer::new(out.clone(), exhaustive_cfg);
        let server = RelaxServer::new(out, pruned_cfg, ServeConfig::default());
        for term in ["fever", "headache", "psychogenic fever", "pertussis"] {
            for context in [None, Some(ctx)] {
                for k in [1, 5, 50] {
                    let served = server.serve(term, context, k).unwrap();
                    let direct = exhaustive.relax(term, context, k).unwrap();
                    assert_eq!(*served.result, direct, "{term} ctx={context:?} k={k}");
                    let again = server.serve(term, context, k).unwrap();
                    assert!(again.cached(), "{term} should be resident");
                    assert_eq!(*again.result, direct, "{term} cached answer diverged");
                }
            }
        }
    }

    #[test]
    fn spelling_variants_share_one_entry_after_normalization() {
        let config = exact_config();
        let out = fragment_world(&config);
        let server = RelaxServer::new(out, config, ServeConfig::default());
        let a = server.serve("fever", None, 5).unwrap();
        let b = server.serve("  FEVER  ", None, 5).unwrap();
        assert_eq!(b.served_from, ServedFrom::Cache);
        assert!(Arc::ptr_eq(&a.result, &b.result));
    }

    #[test]
    fn not_found_propagates_and_is_never_cached() {
        let config = exact_config();
        let out = fragment_world(&config);
        let server = RelaxServer::new(out, config, ServeConfig::default());
        for _ in 0..2 {
            match server.serve("no such term", None, 5) {
                Err(MedKbError::NotFound { .. }) => {}
                other => panic!("expected NotFound, got {other:?}"),
            }
        }
        assert_eq!(server.cache_len(), 0, "errors must not occupy cache slots");
    }

    #[test]
    fn admission_sheds_with_overloaded_not_notfound() {
        let config = exact_config();
        let out = fragment_world(&config);
        // max_in_flight = 0 is clamped to 1, and the serving request itself
        // occupies the slot — so a second concurrent one would shed. Here,
        // single-threaded, force it with a zero deadline instead: the
        // already-expired deadline sheds at admission.
        let server = RelaxServer::new(
            out,
            config,
            ServeConfig { deadline: Some(Duration::ZERO), ..ServeConfig::default() },
        );
        match server.serve("fever", None, 5) {
            Err(MedKbError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.cache_len(), 0, "shed requests must not occupy cache slots");
    }

    /// Regression (ISSUE 9): the deadline used to be consulted only before
    /// each query's *own* computation, with a fresh per-query deadline —
    /// so a batch whose deadline had already expired would still happily
    /// complete every slot (warm hits especially: the cache probe ran
    /// before any deadline check). The batch entry points now share one
    /// absolute deadline across all shards and re-check it before every
    /// query: expired mid-batch work is shed with `Overloaded`, never
    /// silently completed.
    #[test]
    fn expired_mid_batch_deadline_sheds_instead_of_completing() {
        let config = exact_config();
        let out = fragment_world(&config);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = RelaxServer::new(out, config, ServeConfig::default());
        let queries: Vec<(ExtConceptId, Option<ContextId>)> =
            ["fever", "headache", "pertussis"]
                .iter()
                .map(|t| (plain.resolve_term(t).unwrap(), None))
                .collect();

        // Warm every key so the old behaviour would have been an instant
        // cache hit — the distinguishing case: completing from cache is
        // exactly what an expired deadline must *not* do.
        for res in server.serve_concepts_batch_with_threads(&queries, 5, 2) {
            res.expect("warming batch serves");
        }
        assert_eq!(server.cache_len(), queries.len());

        let expired = std::time::Instant::now();
        for threads in [1, 2] {
            for res in
                server.serve_concepts_batch_with_deadline(&queries, 5, threads, Some(expired))
            {
                match res {
                    Err(MedKbError::Overloaded { .. }) => {}
                    other => panic!(
                        "expired mid-batch deadline must shed with Overloaded, got {other:?}"
                    ),
                }
            }
        }
        // And with no deadline the same batch still completes (the shed
        // above was the deadline's doing, not a broken batch path).
        for res in server.serve_concepts_batch_with_deadline(&queries, 5, 2, None) {
            res.expect("deadline-free batch serves");
        }
    }

    /// A single-flight leader that panics mid-compute must release its
    /// followers with an error — not leave them parked on the `Flight`
    /// condvar forever — and must clear the in-flight slot so a retry can
    /// become a fresh leader and succeed.
    #[test]
    fn single_flight_leader_panic_releases_followers() {
        use std::sync::Barrier;

        let cache = Arc::new(ResultCache::new(1, 16));
        let key = CacheKey {
            query: QueryKey::Term("poisoned".into()),
            context: None,
            fingerprint: 1,
            k: 5,
            epoch: 0,
        };
        let followers = 4;
        // +1 for the leader: nobody computes until every follower thread is
        // at least spawned and racing toward the wait.
        let ready = Arc::new(Barrier::new(followers + 1));

        let leader = {
            let cache = Arc::clone(&cache);
            let key = key.clone();
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(key, None, || {
                    ready.wait();
                    // Give followers a beat to join the flight before the
                    // leader dies (followers that miss the window still
                    // pass: they become fresh leaders of a clean slot).
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("injected: poisoned query");
                });
            })
        };
        let handles: Vec<_> = (0..followers)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let key = key.clone();
                let ready = Arc::clone(&ready);
                std::thread::spawn(move || {
                    ready.wait();
                    cache.get_or_compute(key, None, || {
                        Ok(medkb_core::RelaxationResult {
                            query_concept: ExtConceptId::new(9),
                            radius_used: 1,
                            answers: Vec::new(),
                        })
                    })
                })
            })
            .collect();

        assert!(leader.join().is_err(), "leader thread must have panicked");
        for h in handles {
            // Followers either joined the doomed flight (released with an
            // error by LeaderGuard) or raced past it and computed cleanly.
            // Both are fine; parking forever (this join hanging) is not.
            match h.join().expect("follower must not panic") {
                Ok((v, _)) => assert_eq!(v.query_concept, ExtConceptId::new(9)),
                Err(MedKbError::Overloaded { .. }) => {}
                Err(other) => panic!("unexpected follower error: {other:?}"),
            }
        }
        // The flight slot is gone: a retry either leads a fresh flight or
        // hits a value a follower-turned-leader cached — never a Joined
        // wait on the dead leader's flight.
        let (v, how) = cache
            .get_or_compute(key, None, || {
                Ok(medkb_core::RelaxationResult {
                    query_concept: ExtConceptId::new(11),
                    radius_used: 1,
                    answers: Vec::new(),
                })
            })
            .expect("retry after a panicked leader must succeed");
        match how {
            Lookup::Miss => assert_eq!(v.query_concept, ExtConceptId::new(11)),
            Lookup::Hit => assert_eq!(v.query_concept, ExtConceptId::new(9)),
            Lookup::Joined => panic!("no flight may survive a panicked leader"),
        }
    }

    #[test]
    fn publish_bumps_epoch_and_invalidates_by_keying() {
        let config = exact_config();
        let out = fragment_world(&config);
        let server = RelaxServer::new(out.clone(), config, ServeConfig::default());
        let before = server.serve("fever", None, 5).unwrap();
        assert_eq!(before.epoch, 0);
        assert_eq!(server.publish(out), 1);
        assert_eq!(server.epoch(), 1);
        let after = server.serve("fever", None, 5).unwrap();
        // Same world republished: same answers, but computed fresh against
        // the new epoch — the old entry is unreachable by construction.
        assert_eq!(after.epoch, 1);
        assert_eq!(after.served_from, ServedFrom::Computed);
        assert_eq!(*after.result, *before.result);
    }

    #[test]
    fn old_epoch_survives_until_last_reader_drops() {
        let registry = Registry::shared();
        let config = RelaxConfig {
            obs: ObsConfig::with_registry(Arc::clone(&registry)),
            ..exact_config()
        };
        let out = fragment_world(&config);
        let server = RelaxServer::new(out.clone(), config, ServeConfig::default());
        let held = server.snapshot();
        assert_eq!(held.epoch(), 0);
        server.publish(out.clone());
        server.publish(out);
        // Epoch 1 had no outside holders: retired at the second publish.
        // Epoch 0 is still pinned by `held`.
        assert_eq!(registry.snapshot().counter(obs_names::SNAPSHOT_RETIRED), 1);
        let q = held.relaxer().resolve_term("fever").unwrap();
        assert!(held.relaxer().relax_concept(q, None, 5).is_ok(), "pinned epoch still serves");
        drop(held);
        assert_eq!(registry.snapshot().counter(obs_names::SNAPSHOT_RETIRED), 2);
        assert_eq!(registry.snapshot().counter(obs_names::SNAPSHOT_SWAPS), 2);
    }

    #[test]
    fn metrics_record_hits_misses_and_ratio() {
        let registry = Registry::shared();
        let config = RelaxConfig {
            obs: ObsConfig::with_registry(Arc::clone(&registry)),
            ..exact_config()
        };
        let out = fragment_world(&config);
        let server = RelaxServer::new(out, config, ServeConfig::default());
        server.serve("fever", None, 5).unwrap();
        for _ in 0..3 {
            server.serve("fever", None, 5).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter(obs_names::CACHE_MISSES), 1);
        assert_eq!(snap.counter(obs_names::CACHE_HITS), 3);
        assert_eq!(snap.counter_ratio(obs_names::CACHE_HITS, obs_names::CACHE_MISSES), 0.75);
        assert_eq!(snap.histogram_count(obs_names::LATENCY_US), 4);
        assert!(snap.histogram_count(obs_names::CACHE_LOOKUP_US) >= 4);
        // The underlying relax engine recorded into the same registry.
        assert_eq!(snap.counter(medkb_core::relax::obs_names::QUERIES), 1);
    }

    #[test]
    fn single_flight_collapses_concurrent_identical_misses() {
        let computed = AtomicUsize::new(0);
        let cache = ResultCache::new(4, 16);
        let key = CacheKey {
            query: QueryKey::Term("fever".into()),
            context: None,
            fingerprint: 1,
            k: 5,
            epoch: 0,
        };
        let make = |q: u32| medkb_core::RelaxationResult {
            query_concept: ExtConceptId::new(q),
            radius_used: 1,
            answers: Vec::new(),
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _how) = cache
                        .get_or_compute(key.clone(), None, || {
                            computed.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so followers really join.
                            std::thread::sleep(Duration::from_millis(20));
                            Ok(make(7))
                        })
                        .unwrap();
                    assert_eq!(v.query_concept, ExtConceptId::new(7));
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "one computation for 8 identical misses");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        // One shard, capacity 2, keys distinguished by k.
        let cache = ResultCache::new(1, 2);
        let key = |k: usize| CacheKey {
            query: QueryKey::Concept(ExtConceptId::new(1)),
            context: None,
            fingerprint: 0,
            k,
            epoch: 0,
        };
        let value = || medkb_core::RelaxationResult {
            query_concept: ExtConceptId::new(1),
            radius_used: 1,
            answers: Vec::new(),
        };
        for k in [1, 2] {
            cache.get_or_compute(key(k), None, || Ok(value())).unwrap();
        }
        // Touch k=1 so k=2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.get_or_compute(key(3), None, || Ok(value())).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some(), "recently used entry survives");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    /// Satellite check: the shared comparator makes exact-tie ranking
    /// bit-identical across cached, uncached, and reference paths — the
    /// symmetric twin-star world from the core suite, served.
    #[test]
    fn exact_ties_rank_identically_cached_uncached_and_reference() {
        let twin_names = ["twin d", "twin b", "twin c", "twin a"];
        let mut eb = medkb_ekg::EkgBuilder::new();
        let root = eb.concept("root finding");
        let twins: Vec<ExtConceptId> = twin_names
            .iter()
            .map(|n| {
                let c = eb.concept(n);
                eb.is_a(c, root);
                c
            })
            .collect();
        let ekg = eb.build().unwrap();
        let mut ob = medkb_ontology::OntologyBuilder::new();
        let finding = ob.concept("Finding");
        let onto = ob.build().unwrap();
        let mut kb = medkb_kb::KbBuilder::new(onto);
        for name in twin_names {
            kb.instance(name, finding);
        }
        let kb = kb.build().unwrap();
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        for &c in &twins {
            direct.insert(c, [7u64; N_TAGS]);
        }
        let counts = MentionCounts::from_direct(direct, HashMap::new(), 10);
        let config = exact_config();
        let out = ingest(&kb, ekg, &counts, None, &config).unwrap();
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = RelaxServer::new(out, config, ServeConfig::default());

        let q = plain.resolve_term("root finding").unwrap();
        let uncached = plain.relax_concept(q, None, 50).unwrap();
        let reference = plain.relax_concept_reference(q, None, 50).unwrap();
        let cold = server.serve_concept(q, None, 50).unwrap();
        let warm = server.serve_concept(q, None, 50).unwrap();
        assert_eq!(warm.served_from, ServedFrom::Cache);
        assert_eq!(uncached, reference);
        assert_eq!(*cold.result, uncached);
        assert_eq!(*warm.result, uncached);
        let ids: Vec<ExtConceptId> = uncached.answers.iter().map(|a| a.concept).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "exact ties must order by concept id on every path");
        // And through the batch-serving surface at several thread counts.
        let queries = vec![(q, None); 8];
        for threads in [1, 2, 4, 8] {
            for res in server.serve_concepts_batch_with_threads(&queries, 50, threads) {
                assert_eq!(*res.unwrap().result, uncached, "threads={threads}");
            }
        }
    }

    /// Satellite check: the strip-modifiers fix holds through the cached
    /// entry point — a two-word decorated term resolves and caches.
    #[test]
    fn stripped_two_word_terms_serve_and_cache() {
        let config = RelaxConfig { strip_modifiers: true, ..exact_config() };
        let out = fragment_world(&config);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = RelaxServer::new(out, config, ServeConfig::default());
        let served = server.serve("severe fever", None, 5).unwrap();
        let direct = plain.relax("severe fever", None, 5).unwrap();
        assert_eq!(*served.result, direct);
        assert_eq!(
            plain.ingested().ekg.name(served.result.query_concept),
            "fever",
            "two-word term must strip to its final word"
        );
        let again = server.serve("severe fever", None, 5).unwrap();
        assert!(again.cached());
    }

    /// The routed endpoint surface, no sockets involved: the router is
    /// transport-free by design, so the endpoint contract (statuses,
    /// envelope shape, error taxonomy) pins here and the socket tests
    /// only have to cover transport concerns.
    #[test]
    fn router_endpoints_round_trip_against_in_process_answers() {
        use crate::http::router::post;
        use crate::http::{Json, RateLimitConfig, RateLimiter, Request, Router};

        let registry = Registry::shared();
        let config = RelaxConfig {
            obs: ObsConfig::with_registry(Arc::clone(&registry)),
            ..exact_config()
        };
        let out = fragment_world(&config);
        let ctx = treatment_ctx(&out);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
        let router = Router::new(
            Arc::clone(&server),
            Some(Arc::clone(&registry)),
            RateLimiter::new(RateLimitConfig::default()),
            None,
            10,
        );
        let now = std::time::Instant::now();
        let get = |target: &str| Request {
            method: "GET".into(),
            target: target.into(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        };

        // /health and /metrics are alive and well-formed.
        let health = router.handle(&get("/health"), "127.0.0.1", now);
        assert_eq!(health.status, 200);
        assert_eq!(
            Json::parse(&health.body).unwrap().get("status").and_then(Json::as_str),
            Some("ok")
        );
        let metrics = router.handle(&get("/metrics"), "127.0.0.1", now);
        assert_eq!(metrics.status, 200);
        assert!(medkb_obs::validate_json(&metrics.body), "metrics JSON well-formed");

        // /relax by term matches the in-process answer through the shared
        // renderer (the wire bit-identity contract).
        let relax =
            router.handle(&post("/relax", r#"{"term":"fever","k":5}"#), "127.0.0.1", now);
        assert_eq!(relax.status, 200, "{}", relax.body);
        let expected = plain.relax("fever", None, 5).unwrap();
        assert!(
            relax.body.ends_with(&format!(
                "\"result\":{}}}",
                crate::http::render_relaxation(&expected)
            )),
            "wire answer must be the in-process answer: {}",
            relax.body
        );

        // /relax by concept with a context, against the concept path.
        let q = plain.resolve_term("fever").unwrap();
        let body = format!("{{\"concept\":{},\"context\":{},\"k\":5}}", q.raw(), ctx.raw());
        let relax_c = router.handle(&post("/relax", &body), "127.0.0.1", now);
        assert_eq!(relax_c.status, 200, "{}", relax_c.body);
        let expected_c = plain.relax_concept(q, Some(ctx), 5).unwrap();
        assert!(relax_c
            .body
            .ends_with(&format!("\"result\":{}}}", crate::http::render_relaxation(&expected_c))));

        // /batch returns per-slot results in input order.
        let q2 = plain.resolve_term("headache").unwrap();
        let batch_body = format!(
            "{{\"queries\":[{{\"concept\":{}}},{{\"concept\":{}}}],\"k\":5}}",
            q.raw(),
            q2.raw()
        );
        let batch = router.handle(&post("/batch", &batch_body), "127.0.0.1", now);
        assert_eq!(batch.status, 200, "{}", batch.body);
        let parsed = Json::parse(&batch.body).unwrap();
        let rows = parsed.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        for (row, q) in rows.iter().zip([q, q2]) {
            assert_eq!(row.get("status").and_then(Json::as_u64), Some(200));
            let result = row.get("value").unwrap().get("result").unwrap();
            assert_eq!(
                result.get("query_concept").and_then(Json::as_u64),
                Some(u64::from(q.raw()))
            );
        }

        // /explain renders the Eq. 1–5 derivation text.
        let explain_body =
            format!("{{\"query\":{},\"candidate\":{}}}", q.raw(), q2.raw());
        let explain = router.handle(&post("/explain", &explain_body), "127.0.0.1", now);
        assert_eq!(explain.status, 200, "{}", explain.body);
        let text = Json::parse(&explain.body).unwrap();
        assert!(
            text.get("explanation").and_then(Json::as_str).unwrap().contains("sim("),
            "{}",
            explain.body
        );

        // Error taxonomy over the wire.
        for (req, want) in [
            (post("/relax", r#"{"term":"no such term"}"#), 404),
            (post("/relax", r#"{"k":5}"#), 400),
            (post("/relax", r#"{"term":"fever","concept":1}"#), 400),
            (post("/relax", r#"{"term":"fever","k":0}"#), 400),
            (post("/relax", "not json"), 400),
            (post("/nope", "{}"), 404),
            (get("/relax"), 405),
        ] {
            let resp = router.handle(&req, "127.0.0.1", now);
            assert_eq!(resp.status, want, "{} {} → {}", req.method, req.target, resp.body);
            assert!(Json::parse(&resp.body).unwrap().get("error").is_some());
        }
    }

    /// One greedy client exhausting its token bucket sees 429s while a
    /// polite client on the same router is untouched — and the rate-limit
    /// decision happens before any body parsing or relaxation work.
    #[test]
    fn rate_limited_client_gets_429_others_unaffected() {
        use crate::http::router::post;
        use crate::http::{Json, RateLimitConfig, RateLimiter, Router, CLIENT_HEADER};

        let config = exact_config();
        let out = fragment_world(&config);
        let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
        let router = Router::new(
            Arc::clone(&server),
            None,
            RateLimiter::new(RateLimitConfig { rate_per_sec: 1.0, burst: 2.0 }),
            None,
            10,
        );
        let now = std::time::Instant::now();
        let tagged = |client: &str| {
            let mut req = post("/relax", r#"{"term":"fever","k":5}"#);
            req.headers.push((CLIENT_HEADER.into(), client.into()));
            req
        };
        // Burst of 2, then the greedy client is cut off (same `now`, so
        // no refill happens between calls — fully deterministic).
        assert_eq!(router.handle(&tagged("greedy"), "10.0.0.1", now).status, 200);
        assert_eq!(router.handle(&tagged("greedy"), "10.0.0.1", now).status, 200);
        let limited = router.handle(&tagged("greedy"), "10.0.0.1", now);
        assert_eq!(limited.status, 429, "{}", limited.body);
        assert!(Json::parse(&limited.body).unwrap().get("error").is_some());
        // Another client — same peer IP, distinct header — is unaffected.
        assert_eq!(router.handle(&tagged("polite"), "10.0.0.1", now).status, 200);
        // Falling back to peer IP when no header: a third identity.
        let bare = post("/relax", r#"{"term":"fever","k":5}"#);
        assert_eq!(router.handle(&bare, "10.0.0.2", now).status, 200);
    }

    /// Concurrent distinct submissions from different "connections" merge
    /// into one `relax_concepts_batch` dispatch, and every member gets
    /// the same answer the in-process path computes.
    #[test]
    fn coalescer_merges_concurrent_submissions_into_one_batch() {
        use crate::http::{obs_names as http_names, CoalesceConfig, Coalescer};
        use std::sync::Barrier;

        let registry = Registry::shared();
        let config = RelaxConfig {
            obs: ObsConfig::with_registry(Arc::clone(&registry)),
            ..exact_config()
        };
        let out = fragment_world(&config);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
        let members = 4;
        let coalescer = Coalescer::start(
            Arc::clone(&server),
            // A wide window so all four submitters make it into one
            // dispatch regardless of scheduling; max_batch closes the
            // window early once everyone is queued.
            CoalesceConfig { window: Duration::from_millis(250), max_batch: members },
            Some(&registry),
        );
        let terms = ["fever", "headache", "pertussis", "psychogenic fever"];
        let queries: Vec<ExtConceptId> =
            terms.iter().map(|t| plain.resolve_term(t).unwrap()).collect();
        let start = Arc::new(Barrier::new(members));
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .iter()
                .map(|&q| {
                    let start = Arc::clone(&start);
                    let coalescer = &coalescer;
                    scope.spawn(move || {
                        start.wait();
                        coalescer.submit(q, None, 5, None)
                    })
                })
                .collect();
            for (h, &q) in handles.into_iter().zip(&queries) {
                let served = h.join().expect("submitter").expect("coalesced serve");
                let direct = plain.relax_concept(q, None, 5).unwrap();
                assert_eq!(*served.result, direct, "coalesced answer must be bit-identical");
            }
        });
        drop(coalescer);
        let snap = registry.snapshot();
        assert!(
            snap.counter(http_names::COALESCE_BATCHES) >= 1,
            "4 simultaneous submissions must form at least one multi-member batch"
        );
        assert!(snap.counter(http_names::COALESCE_JOINED) >= 2);
    }

    /// A member whose deadline expired while queued is shed at dispatch
    /// with `Overloaded`, without poisoning the rest of its batch.
    #[test]
    fn coalescer_sheds_expired_members_at_dispatch() {
        use crate::http::{CoalesceConfig, Coalescer};

        let config = exact_config();
        let out = fragment_world(&config);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = Arc::new(RelaxServer::new(out, config, ServeConfig::default()));
        let coalescer = Coalescer::start(
            Arc::clone(&server),
            CoalesceConfig { window: Duration::from_millis(20), max_batch: 64 },
            None,
        );
        let q = plain.resolve_term("fever").unwrap();
        // Already expired on submission: the window guarantees it is
        // still expired at dispatch.
        let expired = std::time::Instant::now();
        match coalescer.submit(q, None, 5, Some(expired)) {
            Err(MedKbError::Overloaded { .. }) => {}
            other => panic!("expired member must shed, got {other:?}"),
        }
        // A live member afterwards is served normally.
        let served = coalescer.submit(q, None, 5, None).expect("live member serves");
        assert_eq!(*served.result, plain.relax_concept(q, None, 5).unwrap());
    }

    #[test]
    fn batch_serving_preserves_input_order_and_error_slots() {
        let config = exact_config();
        let out = fragment_world(&config);
        let ctx = treatment_ctx(&out);
        let plain = QueryRelaxer::new(out.clone(), config.clone());
        let server = RelaxServer::new(out, config, ServeConfig::default());
        let terms = ["fever", "headache", "pertussis", "psychogenic fever"];
        let queries: Vec<(ExtConceptId, Option<ContextId>)> = terms
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (plain.resolve_term(t).unwrap(), if i % 2 == 0 { Some(ctx) } else { None })
            })
            .collect();
        let expected: Vec<_> =
            queries.iter().map(|&(q, c)| plain.relax_concept(q, c, 5).unwrap()).collect();
        for threads in [1, 2, 4, 8] {
            let batch = server.serve_concepts_batch_with_threads(&queries, 5, threads);
            assert_eq!(batch.len(), expected.len());
            for (res, exp) in batch.into_iter().zip(&expected) {
                assert_eq!(*res.unwrap().result, *exp, "threads={threads}");
            }
        }
    }
}
