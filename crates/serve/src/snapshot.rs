//! Epoch-based snapshot holder: an atomically swappable handle over one
//! ingested world, so a background re-ingest publishes without ever
//! blocking in-flight readers (DESIGN.md §12).
//!
//! The holder is deliberately simple: the current snapshot lives behind a
//! `Mutex<Arc<Snapshot>>` that is locked only long enough to clone or
//! replace the `Arc` — a few nanoseconds, never across a relaxation or an
//! ingest. Readers therefore hold a plain `Arc<Snapshot>` and keep working
//! against their epoch for as long as they like; the old epoch's memory is
//! reclaimed by the last `Arc` drop, wherever that happens. A retirement
//! counter (wired by the server's observability) makes that reclamation
//! observable: it increments exactly when the last reader lets go.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use medkb_core::{IngestOutput, QueryRelaxer, RelaxConfig};
use medkb_obs::Counter;

/// One immutable epoch of the world: an ingested snapshot wrapped in a
/// ready-to-serve [`QueryRelaxer`], labeled with the epoch number it was
/// published under and the config fingerprint its answers depend on.
pub struct Snapshot {
    epoch: u64,
    fingerprint: u64,
    relaxer: QueryRelaxer,
    /// Incremented on drop — i.e. when the *last* holder (store or reader)
    /// releases this epoch. `None` when the owning store is uninstrumented.
    retired: Option<Arc<Counter>>,
}

impl Snapshot {
    /// The epoch this snapshot was published under (0 for the initial one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// [`RelaxConfig::result_fingerprint`] of the serving configuration —
    /// part of the cache key, so config changes can never alias entries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The relaxation engine bound to this epoch's ingest artifacts.
    pub fn relaxer(&self) -> &QueryRelaxer {
        &self.relaxer
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        if let Some(c) = &self.retired {
            c.inc();
        }
    }
}

/// The swappable holder. `load()` is what every request does; `publish()`
/// is what a background re-ingest does. Neither ever blocks the other for
/// longer than an `Arc` clone/store under the mutex.
pub struct SnapshotStore {
    current: Mutex<Arc<Snapshot>>,
    next_epoch: AtomicU64,
    config: RelaxConfig,
    retired: Option<Arc<Counter>>,
}

impl SnapshotStore {
    /// Wrap an ingested world as epoch 0 under `config`. The config is
    /// fixed for the store's lifetime — re-ingests swap *data*, not
    /// semantics; a config change is a new store (and a new fingerprint,
    /// so even a shared cache could never mix the two).
    pub fn new(ingested: IngestOutput, config: RelaxConfig) -> Self {
        Self::with_retired_counter(ingested, config, None)
    }

    /// As [`SnapshotStore::new`], with a counter that fires when an epoch
    /// is reclaimed (last holder dropped). The server wires this to
    /// `serve.snapshot.retired`.
    pub fn with_retired_counter(
        ingested: IngestOutput,
        config: RelaxConfig,
        retired: Option<Arc<Counter>>,
    ) -> Self {
        let snap = Arc::new(Snapshot {
            epoch: 0,
            fingerprint: config.result_fingerprint(),
            relaxer: QueryRelaxer::new(ingested, config.clone()),
            retired: retired.clone(),
        });
        Self { current: Mutex::new(snap), next_epoch: AtomicU64::new(1), config, retired }
    }

    /// The current snapshot. Readers hold the returned `Arc` for the whole
    /// request; a concurrent [`SnapshotStore::publish`] never invalidates
    /// it — it only stops *new* loads from seeing it.
    pub fn load(&self) -> Arc<Snapshot> {
        self.current.lock().expect("snapshot store poisoned").clone()
    }

    /// Publish a re-ingested world as the next epoch and return its number.
    ///
    /// All heavy work (building the relaxer over the new artifacts) happens
    /// before the lock is taken; the critical section is a single pointer
    /// swap. The displaced epoch survives exactly as long as its slowest
    /// in-flight reader.
    pub fn publish(&self, ingested: IngestOutput) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(Snapshot {
            epoch,
            fingerprint: self.config.result_fingerprint(),
            relaxer: QueryRelaxer::new(ingested, self.config.clone()),
            retired: self.retired.clone(),
        });
        *self.current.lock().expect("snapshot store poisoned") = snap;
        epoch
    }

    /// Publish a world persisted by `medkb-store` as the next epoch.
    ///
    /// The restart-recovery path: instead of re-running Algorithm 1 to
    /// refresh a server, open the checksummed store file (bit-identical to
    /// the ingest that wrote it) and swap it in. Corrupted or
    /// version-mismatched files surface as
    /// [`medkb_types::MedKbError::Validation`] and leave the current epoch
    /// serving untouched.
    ///
    /// # Errors
    /// Whatever [`medkb_store::WorldStore::open`] reports; nothing is
    /// published on error.
    pub fn publish_from_store(&self, path: &std::path::Path) -> medkb_types::Result<u64> {
        let ingested = medkb_store::WorldStore::open(path)?;
        Ok(self.publish(ingested))
    }

    /// The currently published epoch number.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// The serving configuration (shared by every epoch of this store).
    pub fn config(&self) -> &RelaxConfig {
        &self.config
    }
}

impl fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotStore").field("epoch", &self.epoch()).finish_non_exhaustive()
    }
}
