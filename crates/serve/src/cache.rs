//! Sharded relaxation result cache with per-shard LRU and single-flight
//! miss deduplication (DESIGN.md §12).
//!
//! The cache key embeds the snapshot epoch and the config fingerprint, so
//! a snapshot swap or a config change is an *implicit total invalidation*:
//! entries for dead epochs simply stop being looked up and age out of the
//! LRU under new traffic — no flush, no coordination with readers.
//!
//! Concurrency model: the shard count is rounded up to a power of two and
//! each shard is an independent `Mutex<_>` guarding a `HashMap` index into
//! a slab-backed intrusive LRU list. A lookup or insert holds exactly one
//! shard lock for a few map operations; the relaxation itself — the
//! expensive part — always runs *outside* every lock. N concurrent misses
//! on the same key collapse to one computation: the first becomes the
//! leader, the rest park on a condvar and receive the leader's result
//! (`Lookup::Joined`).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use medkb_core::RelaxationResult;
use medkb_obs::Counter;
use medkb_types::{ContextId, ExtConceptId, MedKbError, Result};

/// What the query side of a [`CacheKey`] is: a normalized term (the server
/// normalizes before keying *and* before computing, so equal keys imply
/// equal computation inputs) or an already-resolved concept.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryKey {
    /// A textual term, already passed through `medkb_text::normalize`.
    Term(String),
    /// An already-resolved external concept.
    Concept(ExtConceptId),
}

/// The full cache key. Two requests share an entry iff they would compute
/// the same answer set: same query, same context, same result-affecting
/// configuration, same `k`, same snapshot epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Normalized term or resolved concept.
    pub query: QueryKey,
    /// The query context (None = context-free relaxation).
    pub context: Option<ContextId>,
    /// [`medkb_core::RelaxConfig::result_fingerprint`] of the serving
    /// config.
    pub fingerprint: u64,
    /// Requested instance budget.
    pub k: usize,
    /// The snapshot epoch the entry was computed against.
    pub epoch: u64,
}

/// How a [`ResultCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Found in the cache — no computation, no waiting.
    Hit,
    /// This call computed the value (single-flight leader).
    Miss,
    /// Another in-flight call computed it; this one waited for the result.
    Joined,
}

/// Slab sentinel for "no neighbour" in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<RelaxationResult>,
    prev: usize,
    next: usize,
}

/// One leader/followers rendezvous for a single in-flight key.
struct Flight {
    done: Mutex<Option<Result<Arc<RelaxationResult>>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn complete(&self, outcome: Result<Arc<RelaxationResult>>) {
        *self.done.lock().expect("flight poisoned") = Some(outcome);
        self.cv.notify_all();
    }

    /// Block until the leader completes, or until `deadline` passes.
    fn wait(&self, deadline: Option<Instant>) -> Result<Arc<RelaxationResult>> {
        let mut done = self.done.lock().expect("flight poisoned");
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            match deadline {
                None => done = self.cv.wait(done).expect("flight poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(MedKbError::overloaded(
                            "deadline exceeded while waiting on a shared in-flight computation",
                        ));
                    }
                    let (next, _) =
                        self.cv.wait_timeout(done, d - now).expect("flight poisoned");
                    done = next;
                }
            }
        }
    }
}

/// One shard: key → slab index, the slab itself, and the in-flight table.
struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most-recently-used entry, or `NIL` when empty.
    head: usize,
    /// Least-recently-used entry (the eviction victim), or `NIL`.
    tail: usize,
    inflight: HashMap<CacheKey, Arc<Flight>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            inflight: HashMap::new(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<RelaxationResult>> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.slab[i].value))
    }

    /// Insert (or refresh) `key`, evicting the LRU entry if the shard is at
    /// `capacity`. Returns how many entries were evicted (0 or 1).
    fn insert(&mut self, key: CacheKey, value: Arc<RelaxationResult>, capacity: usize) -> u64 {
        if let Some(&i) = self.map.get(&key) {
            // A racing leader already inserted this key; refresh in place.
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= capacity.max(1) {
            let victim = self.tail;
            self.unlink(victim);
            let old = self.slab[victim].key.clone();
            self.map.remove(&old);
            self.free.push(victim);
            evicted = 1;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry { key: key.clone(), value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }
}

/// Removes the in-flight entry and wakes followers even if the leader's
/// computation panics — followers get an error instead of parking forever.
struct LeaderGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: &'a CacheKey,
    flight: &'a Arc<Flight>,
    completed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.shard.lock().expect("cache shard poisoned").inflight.remove(self.key);
            self.flight.complete(Err(MedKbError::overloaded(
                "shared in-flight computation failed before completing",
            )));
        }
    }
}

/// The sharded cache. Capacity is configured per shard, so total capacity
/// is `shards × capacity_per_shard`.
pub struct ResultCache {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    capacity_per_shard: usize,
    /// Eviction counter (`serve.cache.evictions`) when instrumented.
    evictions: Option<Arc<Counter>>,
}

impl ResultCache {
    /// Build with `shards` rounded up to a power of two (minimum 1) and an
    /// LRU capacity per shard (minimum 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self::with_eviction_counter(shards, capacity_per_shard, None)
    }

    /// As [`ResultCache::new`], recording evictions into `evictions`.
    pub fn with_eviction_counter(
        shards: usize,
        capacity_per_shard: usize,
        evictions: Option<Arc<Counter>>,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[Mutex<Shard>]> =
            (0..n).map(|_| Mutex::new(Shard::new())).collect();
        Self { shards, mask: (n - 1) as u64, capacity_per_shard: capacity_per_shard.max(1), evictions }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        // DefaultHasher is fine *inside* one process (shard routing never
        // crosses a process boundary, unlike the config fingerprint).
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probe without computing. Touches the LRU on hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<RelaxationResult>> {
        self.shard_of(key).lock().expect("cache shard poisoned").get(key)
    }

    /// The core read-through: return the cached value, join an in-flight
    /// computation for the same key, or become the leader and run
    /// `compute` (outside all locks). Only `Ok` results are cached —
    /// `NotFound` and friends are returned but never stored, so a
    /// transient failure can't poison the key.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        deadline: Option<Instant>,
        compute: impl FnOnce() -> Result<RelaxationResult>,
    ) -> Result<(Arc<RelaxationResult>, Lookup)> {
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        let shard_mutex = self.shard_of(&key);
        let role = {
            let mut shard = shard_mutex.lock().expect("cache shard poisoned");
            if let Some(v) = shard.get(&key) {
                return Ok((v, Lookup::Hit));
            }
            match shard.inflight.get(&key) {
                Some(f) => Role::Follower(Arc::clone(f)),
                None => {
                    let f = Arc::new(Flight::new());
                    shard.inflight.insert(key.clone(), Arc::clone(&f));
                    Role::Leader(f)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                let mut guard =
                    LeaderGuard { shard: shard_mutex, key: &key, flight: &flight, completed: false };
                let outcome = compute().map(Arc::new);
                {
                    let mut shard = shard_mutex.lock().expect("cache shard poisoned");
                    if let Ok(v) = &outcome {
                        let evicted =
                            shard.insert(key.clone(), Arc::clone(v), self.capacity_per_shard);
                        if evicted > 0 {
                            if let Some(c) = &self.evictions {
                                c.add(evicted);
                            }
                        }
                    }
                    shard.inflight.remove(&key);
                }
                guard.completed = true;
                flight.complete(outcome.clone());
                outcome.map(|v| (v, Lookup::Miss))
            }
            Role::Follower(flight) => flight.wait(deadline).map(|v| (v, Lookup::Joined)),
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("len", &self.len())
            .finish()
    }
}
