//! Incremental HTTP/1.1 request parser (DESIGN.md §16).
//!
//! The parser owns a growable byte buffer the connection loop feeds raw
//! reads into; [`RequestParser::next_request`] carves complete requests
//! off the front. That shape makes the three hard cases fall out
//! naturally:
//!
//! * **split reads** — a request arriving one byte at a time just returns
//!   `Ok(None)` until the final byte lands;
//! * **pipelining** — several requests in one read are drained by calling
//!   `next_request` in a loop; leftover bytes stay buffered for the next
//!   read;
//! * **resource limits** — the header section and the declared body are
//!   bounded *before* being buffered further, so a hostile peer cannot
//!   balloon memory by never finishing a request.
//!
//! Errors are typed with the HTTP status they must produce
//! ([`ParseError::status`]); the no-panic contract over arbitrary byte
//! streams is pinned by `tests/http_parser_prop.rs`, the same contract
//! the PR 4 loaders follow.

use std::fmt;

/// Buffer bounds enforced while parsing, chosen at the edge (the HTTP
/// config) rather than here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum bytes of request line + headers (431 beyond this).
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length` (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self { max_header_bytes: 16 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// One parsed request. Header names are lowercased at parse time; values
/// keep their bytes (trimmed of surrounding whitespace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path plus optional query string).
    pub target: String,
    /// False for `HTTP/1.0` (which defaults to `Connection: close`).
    pub http11: bool,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the connection must close after this request.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => !self.http11,
        }
    }
}

/// A malformed or over-limit request, typed with the status to send back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically malformed request (400).
    BadRequest(String),
    /// Request line + headers exceeded [`ParseLimits::max_header_bytes`]
    /// (431 Request Header Fields Too Large).
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`ParseLimits::max_body_bytes`]
    /// (413 Content Too Large).
    BodyTooLarge,
    /// A protocol feature this server does not implement, e.g.
    /// `Transfer-Encoding: chunked` (501).
    Unsupported(String),
}

impl ParseError {
    /// The HTTP status code this error must produce.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::Unsupported(_) => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequest(d) => write!(f, "malformed request: {d}"),
            ParseError::HeadersTooLarge => write!(f, "request header section too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::Unsupported(d) => write!(f, "unsupported protocol feature: {d}"),
        }
    }
}

/// The incremental parser: feed bytes with [`RequestParser::push`], carve
/// requests with [`RequestParser::next_request`]. After any `Err` the
/// connection is unrecoverable (framing is lost) — respond and close.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    limits: ParseLimits,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: ParseLimits) -> Self {
        Self { buf: Vec::new(), limits }
    }

    /// Append raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (tests and idle-connection accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to carve one complete request off the front of the buffer.
    ///
    /// `Ok(None)` means "need more bytes" — never an error, however the
    /// bytes were split. `Err` means the stream is poisoned at the
    /// current position: send [`ParseError::status`] and close.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        // Robustness (RFC 9112 §2.2): ignore CRLFs between pipelined
        // requests so `...body\r\nGET /` and `...body\r\n\r\nGET /` both
        // frame correctly.
        let mut start = 0usize;
        while self.buf[start..].starts_with(b"\r\n") {
            start += 2;
        }
        let Some(header_len) = find_subslice(&self.buf[start..], b"\r\n\r\n") else {
            // No complete header section yet. A peer that has already
            // sent more than the limit without finishing one is hostile.
            if self.buf.len() - start > self.limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if header_len > self.limits.max_header_bytes {
            return Err(ParseError::HeadersTooLarge);
        }
        let header_end = start + header_len + 4;
        let head = std::str::from_utf8(&self.buf[start..start + header_len])
            .map_err(|_| ParseError::BadRequest("header section is not UTF-8".into()))?;

        let mut lines = head.split("\r\n");
        let request_line =
            lines.next().ok_or_else(|| ParseError::BadRequest("empty request line".into()))?;
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => {
                return Err(ParseError::BadRequest(format!(
                    "bad request line {request_line:?}"
                )))
            }
        };
        if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
            return Err(ParseError::BadRequest(format!("bad method {method:?}")));
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => {
                return Err(ParseError::BadRequest(format!("unsupported version {other:?}")))
            }
        };

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            // Obsolete line folding (leading whitespace) is rejected, not
            // spliced — it is a classic request-smuggling vector.
            let Some((name, value)) = line.split_once(':') else {
                return Err(ParseError::BadRequest(format!("bad header line {line:?}")));
            };
            if name.is_empty()
                || name.starts_with(' ')
                || name.starts_with('\t')
                || !name.bytes().all(is_token_byte)
            {
                return Err(ParseError::BadRequest(format!("bad header name {name:?}")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            // Framing we don't implement; accepting the request anyway
            // would desynchronize the connection.
            return Err(ParseError::Unsupported("transfer-encoding".into()));
        }
        let content_length = match headers.iter().filter(|(n, _)| n == "content-length").count() {
            0 => 0usize,
            1 => {
                let v = headers
                    .iter()
                    .find(|(n, _)| n == "content-length")
                    .map(|(_, v)| v.as_str())
                    .expect("counted above");
                v.parse::<usize>().map_err(|_| {
                    ParseError::BadRequest(format!("bad content-length {v:?}"))
                })?
            }
            _ => {
                return Err(ParseError::BadRequest(
                    "multiple content-length headers".into(),
                ))
            }
        };
        if content_length > self.limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge);
        }
        if self.buf.len() < header_end + content_length {
            // Headers complete, body still arriving. The declared length
            // is already bounds-checked, so buffering it is safe.
            return Ok(None);
        }

        let body = self.buf[header_end..header_end + content_length].to_vec();
        self.buf.drain(..header_end + content_length);
        Ok(Some(Request { method, target, http11, headers, body }))
    }
}

/// RFC 9110 token characters (header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.' | b'^' | b'_'
                | b'`' | b'|' | b'~'
        )
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(ParseLimits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let mut p = parser();
        p.push(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/health");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_split_reads_assemble_one_request() {
        let raw = b"POST /relax HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let mut p = parser();
        for (i, &b) in raw.iter().enumerate() {
            p.push(&[b]);
            let done = p.next_request().unwrap();
            if i + 1 < raw.len() {
                assert!(done.is_none(), "byte {i} must not complete the request");
            } else {
                let req = done.unwrap();
                assert_eq!(req.body, b"{\"a\"");
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = parser();
        p.push(
            b"POST /relax HTTP/1.1\r\nContent-Length: 2\r\n\r\nab\
              GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n",
        );
        let first = p.next_request().unwrap().unwrap();
        assert_eq!(first.body, b"ab");
        assert_eq!(p.next_request().unwrap().unwrap().path(), "/health");
        assert_eq!(p.next_request().unwrap().unwrap().path(), "/metrics");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn oversized_header_section_errors_431() {
        let mut p = RequestParser::new(ParseLimits { max_header_bytes: 64, max_body_bytes: 64 });
        p.push(b"GET / HTTP/1.1\r\n");
        p.push(&[b'x'; 80]); // no terminator, already past the limit
        assert_eq!(p.next_request().unwrap_err(), ParseError::HeadersTooLarge);
    }

    #[test]
    fn oversized_declared_body_errors_413_before_buffering_it() {
        let mut p = RequestParser::new(ParseLimits { max_header_bytes: 1024, max_body_bytes: 8 });
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err(), ParseError::BodyTooLarge);
    }

    #[test]
    fn malformed_inputs_error_400_never_panic() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b" / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\n \tfolded: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"GET /\xff\xfe HTTP/1.1\r\n\r\n",
        ] {
            let mut p = parser();
            p.push(bad);
            let err = p.next_request().expect_err(&format!("{bad:?} must error"));
            assert_eq!(err.status(), 400, "{bad:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_rejected_as_unsupported() {
        let mut p = parser();
        p.push(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn interleaved_crlf_between_pipelined_requests_is_skipped() {
        let mut p = parser();
        p.push(b"\r\n\r\nGET /health HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().path(), "/health");
    }

    #[test]
    fn http10_defaults_to_close() {
        let mut p = parser();
        p.push(b"GET / HTTP/1.0\r\n\r\n");
        assert!(p.next_request().unwrap().unwrap().wants_close());
        p.push(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(p.next_request().unwrap().unwrap().wants_close());
    }
}
