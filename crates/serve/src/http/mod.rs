//! std-only HTTP/1.1 front end for [`RelaxServer`] (DESIGN.md §16).
//!
//! ROADMAP item 2: the serving layer (PR 5) had admission control, a
//! result cache, and epoch swaps but no network surface. This module adds
//! one without leaving the standard library (vendor policy: no registry
//! access, so no tokio/hyper):
//!
//! * **acceptors** — one thread per core parked in `accept()` on clones
//!   of a shared [`TcpListener`]; each accepted connection gets its own
//!   handler thread (connections are long-lived and keep-alive by
//!   default, so per-connection threads amortize well);
//! * **parser** ([`RequestParser`]) — incremental, robust to split reads
//!   and pipelining, with hard header/body limits;
//! * **router** ([`Router`]) — JSON endpoints `relax`, `batch`,
//!   `explain`, `reload`, `metrics`, `health`;
//! * **shaping** ([`RateLimiter`]) — per-client token buckets answering
//!   429 before any relaxation work is spent;
//! * **coalescer** ([`Coalescer`]) — concurrent `/relax` requests from
//!   different connections merge into one
//!   [`RelaxServer::serve_concepts_batch_with_deadline`] call.
//!
//! Deadlines propagate from the `x-medkb-deadline-ms` header into the
//! same admission-control deadline the in-process API uses, and
//! `/reload` drives [`RelaxServer::publish_from_store`] for hot world
//! swaps — the HTTP layer adds no second copy of either mechanism.

pub mod coalesce;
pub mod json;
pub mod parser;
pub mod router;
pub mod shaping;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use medkb_obs::Registry;

pub use coalesce::{Coalescer, CoalesceConfig};
pub use json::Json;
pub use parser::{ParseError, ParseLimits, Request, RequestParser};
pub use router::{
    render_relaxation, render_serve_result, served_from_label, Response, Router, CLIENT_HEADER,
    DEADLINE_HEADER,
};
pub use shaping::{RateLimitConfig, RateLimiter};

use crate::RelaxServer;

/// Metric names the HTTP layer registers (the `http.*` family).
pub mod obs_names {
    /// Connections accepted (counter).
    pub const CONNECTIONS: &str = "http.connections";
    /// Requests routed (counter).
    pub const REQUESTS: &str = "http.requests";
    /// 200 responses (counter).
    pub const RESPONSES_OK: &str = "http.responses.ok";
    /// 4xx responses other than 429 (counter).
    pub const RESPONSES_CLIENT_ERROR: &str = "http.responses.client_error";
    /// 429 responses from the token bucket specifically (counter; a
    /// subset of [`RESPONSES_SHED`]).
    pub const RESPONSES_RATE_LIMITED: &str = "http.responses.rate_limited";
    /// All 429 responses — rate limit, admission shed, blown deadline
    /// (counter).
    pub const RESPONSES_SHED: &str = "http.responses.shed";
    /// 5xx responses (counter).
    pub const RESPONSES_SERVER_ERROR: &str = "http.responses.server_error";
    /// Connections poisoned by a malformed/oversized request (counter).
    pub const PARSE_ERRORS: &str = "http.parse_errors";
    /// Routed request latency, parse excluded (µs histogram).
    pub const REQUEST_US: &str = "http.request_us";
    /// Coalesced dispatches with ≥ 2 members (counter).
    pub const COALESCE_BATCHES: &str = "http.coalesce.batches";
    /// Dispatches that found only one member queued (counter).
    pub const COALESCE_SINGLES: &str = "http.coalesce.singles";
    /// Requests that rode a multi-member batch (counter).
    pub const COALESCE_JOINED: &str = "http.coalesce.joined";
    /// Members per dispatch (histogram, bounds 1..128).
    pub const COALESCE_BATCH_SIZE: &str = "http.coalesce.batch_size";
    /// Requests that carried an `x-medkb-deadline-ms` header (counter).
    pub const DEADLINE_PROPAGATED: &str = "http.deadline.propagated";
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, tier1 smoke).
    pub addr: String,
    /// Acceptor threads; 0 means one per core.
    pub acceptors: usize,
    /// `k` used when a request omits it.
    pub default_k: usize,
    /// Per-client token bucket; `rate_per_sec <= 0` disables limiting.
    pub rate_limit: RateLimitConfig,
    /// Cross-connection coalescing; `None` serves `/relax` inline.
    pub coalesce: Option<CoalesceConfig>,
    /// Parser limits (header/body size caps).
    pub parse_limits: ParseLimits,
    /// Socket read timeout — the cadence at which idle keep-alive
    /// connections notice server shutdown.
    pub read_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            acceptors: 0,
            default_k: 10,
            rate_limit: RateLimitConfig::default(),
            coalesce: Some(CoalesceConfig::default()),
            parse_limits: ParseLimits::default(),
            read_timeout: Duration::from_millis(100),
        }
    }
}

/// The running front end. Dropping it (or calling
/// [`HttpServer::shutdown`]) stops the acceptors; handler threads drain
/// as their connections close or hit the read-timeout shutdown check.
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind and start serving `server` per `config`.
    ///
    /// # Errors
    /// Propagates bind/clone failures from the listener socket.
    pub fn start(
        server: Arc<RelaxServer>,
        registry: Option<Arc<Registry>>,
        config: HttpConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let coalescer = config
            .coalesce
            .map(|c| Coalescer::start(Arc::clone(&server), c, registry.as_deref()));
        let router = Arc::new(Router::new(
            server,
            registry.clone(),
            RateLimiter::new(config.rate_limit),
            coalescer,
            config.default_k,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let n_acceptors = if config.acceptors == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            config.acceptors
        };
        let connections = registry.as_deref().map(|r| r.counter(obs_names::CONNECTIONS));
        let parse_errors = registry.as_deref().map(|r| r.counter(obs_names::PARSE_ERRORS));
        let mut acceptors = Vec::with_capacity(n_acceptors);
        for i in 0..n_acceptors {
            let listener = listener.try_clone()?;
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let connections = connections.clone();
            let parse_errors = parse_errors.clone();
            let limits = config.parse_limits;
            let read_timeout = config.read_timeout;
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("medkb-http-accept-{i}"))
                    .spawn(move || {
                        accept_loop(
                            &listener,
                            &router,
                            &stop,
                            limits,
                            read_timeout,
                            connections.as_deref(),
                            parse_errors,
                        );
                    })
                    .expect("spawn http acceptor"),
            );
        }
        Ok(Self { local_addr, stop, acceptors })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the acceptor threads.
    pub fn shutdown(mut self) {
        self.stop_acceptors();
    }

    fn stop_acceptors(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Acceptors are parked in blocking `accept()`; poke each one
        // awake with a throwaway connection so they observe the flag.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_acceptors();
    }
}

fn accept_loop(
    listener: &TcpListener,
    router: &Arc<Router>,
    stop: &Arc<AtomicBool>,
    limits: ParseLimits,
    read_timeout: Duration,
    connections: Option<&medkb_obs::Counter>,
    parse_errors: Option<Arc<medkb_obs::Counter>>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if let Some(c) = connections {
            c.inc();
        }
        let router = Arc::clone(router);
        let stop = Arc::clone(stop);
        let parse_errors = parse_errors.clone();
        // Handler threads are detached: they exit on client EOF, on a
        // poisoned parse, or at the next read-timeout tick after
        // shutdown. The acceptor must get back to `accept()` immediately.
        let _ = std::thread::Builder::new().name("medkb-http-conn".into()).spawn(move || {
            handle_connection(
                stream,
                peer,
                &router,
                &stop,
                limits,
                read_timeout,
                parse_errors.as_deref(),
            );
        });
    }
}

fn handle_connection(
    mut stream: TcpStream,
    peer: SocketAddr,
    router: &Router,
    stop: &AtomicBool,
    limits: ParseLimits,
    read_timeout: Duration,
    parse_errors: Option<&medkb_obs::Counter>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let peer_ip = peer.ip().to_string();
    let mut parser = RequestParser::new(limits);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Drain everything already buffered (pipelining) before blocking
        // on the socket again.
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    let keep_alive = !req.wants_close();
                    let response = router.handle(&req, &peer_ip, Instant::now());
                    if stream.write_all(&response.to_bytes(keep_alive)).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable past a bad request:
                    // answer with its status and drop the connection.
                    if let Some(c) = parse_errors {
                        c.inc();
                    }
                    let response =
                        router::parse_error_response(e.status(), &e.to_string());
                    let _ = stream.write_all(&response.to_bytes(false));
                    return;
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => parser.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive tick: loop to re-check the stop flag.
            }
            Err(_) => return,
        }
    }
}
