//! Per-client token-bucket rate limiting (DESIGN.md §16).
//!
//! Each client key (the `x-medkb-client` header when present, else the
//! peer IP) owns a bucket holding up to `burst` tokens refilled at
//! `rate_per_sec`. A request costs one token; an empty bucket means 429.
//! Buckets are lazy: they are created full on first sight and evicted
//! once idle long enough to have refilled completely, so the map stays
//! proportional to the *active* client set, not to every key ever seen.
//!
//! Time is injected (`try_admit` takes `now`) so tests and the bench can
//! drive the refill deterministically instead of sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters. `rate_per_sec <= 0` disables limiting
/// entirely (every request admitted, no bookkeeping).
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Steady-state tokens added per second.
    pub rate_per_sec: f64,
    /// Bucket capacity — the size of an allowed burst.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        // Generous defaults: shaping is opt-in pressure relief, not a
        // default throttle on a single-box deployment.
        Self { rate_per_sec: 0.0, burst: 64.0 }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Shared limiter; one per [`super::HttpServer`], hit from every
/// connection thread. A single mutex suffices — admission is a few ns of
/// float math, orders of magnitude below the relaxation work it gates.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// A limiter with the given parameters.
    pub fn new(config: RateLimitConfig) -> Self {
        Self { config, buckets: Mutex::new(HashMap::new()) }
    }

    /// Whether limiting is active at all.
    pub fn enabled(&self) -> bool {
        self.config.rate_per_sec > 0.0
    }

    /// Spend one token for `client` at time `now`. Returns false when the
    /// bucket is empty — the caller answers 429.
    pub fn try_admit(&self, client: &str, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().expect("rate limiter poisoned");
        // Evict buckets idle long enough to be full again: remembering
        // them is indistinguishable from recreating them.
        let idle_to_full = self.config.burst / self.config.rate_per_sec;
        buckets.retain(|_, b| {
            now.saturating_duration_since(b.last_refill).as_secs_f64() < idle_to_full
        });
        let bucket = buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket { tokens: self.config.burst, last_refill: now });
        let elapsed = now.saturating_duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_limiter_admits_everything() {
        let rl = RateLimiter::new(RateLimitConfig { rate_per_sec: 0.0, burst: 1.0 });
        let now = Instant::now();
        for _ in 0..1000 {
            assert!(rl.try_admit("anyone", now));
        }
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let rl = RateLimiter::new(RateLimitConfig { rate_per_sec: 10.0, burst: 3.0 });
        let t0 = Instant::now();
        assert!(rl.try_admit("c", t0));
        assert!(rl.try_admit("c", t0));
        assert!(rl.try_admit("c", t0));
        assert!(!rl.try_admit("c", t0), "burst exhausted");
        // 100ms at 10 tokens/sec refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(rl.try_admit("c", t1));
        assert!(!rl.try_admit("c", t1));
    }

    #[test]
    fn clients_have_independent_buckets() {
        let rl = RateLimiter::new(RateLimitConfig { rate_per_sec: 1.0, burst: 1.0 });
        let now = Instant::now();
        assert!(rl.try_admit("greedy", now));
        assert!(!rl.try_admit("greedy", now));
        assert!(rl.try_admit("polite", now), "other clients unaffected");
    }

    #[test]
    fn idle_buckets_are_evicted_and_recreated_full() {
        let rl = RateLimiter::new(RateLimitConfig { rate_per_sec: 10.0, burst: 2.0 });
        let t0 = Instant::now();
        assert!(rl.try_admit("c", t0));
        assert!(rl.try_admit("c", t0));
        assert!(!rl.try_admit("c", t0));
        // Long idle: bucket would be full anyway; map must not grow
        // without bound across distinct one-shot clients.
        let t1 = t0 + Duration::from_secs(60);
        for i in 0..100 {
            assert!(rl.try_admit(&format!("client-{i}"), t1));
        }
        let t2 = t1 + Duration::from_secs(60);
        assert!(rl.try_admit("c", t2), "evicted bucket comes back full");
        assert!(rl.try_admit("c", t2));
        assert!(!rl.try_admit("c", t2));
    }
}
