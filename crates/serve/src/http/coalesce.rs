//! Cross-connection request coalescing (DESIGN.md §16).
//!
//! Single-flight (PR 5) already dedups *identical* concurrent queries;
//! coalescing amortizes *distinct* ones. Connection threads enqueue
//! `(query, context, k, deadline)` and block on a per-request slot; a
//! dispatcher thread drains the queue after a short window (or as soon as
//! a batch fills), groups by `k`, and runs each group through
//! [`RelaxServer::serve_concepts_batch_with_deadline`] — so N concurrent
//! users pay one sharded batch instead of N independent serves.
//!
//! Deadline semantics (pinned by tests):
//! * a member already past its deadline **at dispatch** is shed without
//!   entering the batch;
//! * the batch runs under the **latest** member deadline (a member with
//!   `None` disables the batch deadline) — results that complete after an
//!   individual member's deadline are still returned to it, because the
//!   work is done and cached either way and delivering is cheaper than
//!   recomputing on retry.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use medkb_obs::{Counter, Histogram, Registry};
use medkb_types::{ContextId, ExtConceptId, MedKbError, Result};

use crate::http::obs_names;
use crate::{RelaxServer, ServeResult};

/// Coalescing window parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// How long the dispatcher waits after the first enqueue for more
    /// requests to join the batch. Zero still batches whatever is queued
    /// while the previous batch was computing.
    pub window: Duration,
    /// Dispatch immediately once this many requests are queued.
    pub max_batch: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self { window: Duration::from_millis(2), max_batch: 64 }
    }
}

struct CoalesceMetrics {
    batches: Arc<Counter>,
    singles: Arc<Counter>,
    joined: Arc<Counter>,
    batch_size: Arc<Histogram>,
}

impl CoalesceMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            batches: registry.counter(obs_names::COALESCE_BATCHES),
            singles: registry.counter(obs_names::COALESCE_SINGLES),
            joined: registry.counter(obs_names::COALESCE_JOINED),
            batch_size: registry
                .histogram(obs_names::COALESCE_BATCH_SIZE, &[1, 2, 4, 8, 16, 32, 64, 128]),
        }
    }
}

/// One caller's parking spot: filled exactly once by the dispatcher.
struct Slot {
    result: Mutex<Option<Result<ServeResult>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self { result: Mutex::new(None), cv: Condvar::new() }
    }

    fn fill(&self, value: Result<ServeResult>) {
        let mut guard = self.result.lock().expect("slot poisoned");
        *guard = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<ServeResult> {
        let mut guard = self.result.lock().expect("slot poisoned");
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            guard = self.cv.wait(guard).expect("slot poisoned");
        }
    }
}

struct Pending {
    query: ExtConceptId,
    context: Option<ContextId>,
    k: usize,
    deadline: Option<Instant>,
    slot: Arc<Slot>,
}

struct Shared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

struct Queue {
    pending: Vec<Pending>,
    shutdown: bool,
}

/// The coalescer: owns the dispatcher thread; dropped on server shutdown
/// (drains remaining members with [`MedKbError::Overloaded`]).
pub struct Coalescer {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Coalescer {
    /// Start a coalescer over `server`. Metrics (the `http.coalesce.*`
    /// family) record into `registry` when one is attached.
    pub fn start(
        server: Arc<RelaxServer>,
        config: CoalesceConfig,
        registry: Option<&Registry>,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { pending: Vec::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let metrics = registry.map(CoalesceMetrics::resolve);
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("medkb-coalesce".into())
                .spawn(move || dispatch_loop(&shared, &server, config, metrics.as_ref()))
                .expect("spawn coalesce dispatcher")
        };
        Self { shared, dispatcher: Some(dispatcher) }
    }

    /// Enqueue one query and block until the dispatcher delivers its
    /// result. Called from connection threads; never called on the
    /// dispatcher thread.
    pub fn submit(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<ServeResult> {
        let slot = Arc::new(Slot::new());
        {
            let mut queue = self.shared.queue.lock().expect("coalesce queue poisoned");
            if queue.shutdown {
                return Err(MedKbError::overloaded("server shutting down"));
            }
            queue.pending.push(Pending {
                query,
                context,
                k,
                deadline,
                slot: Arc::clone(&slot),
            });
            self.shared.cv.notify_all();
        }
        slot.wait()
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("coalesce queue poisoned");
            queue.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        // The dispatcher drains before exiting, but a member enqueued in
        // the race with the shutdown flag could remain — never leave a
        // waiter parked on an unfillable slot.
        let mut queue = self.shared.queue.lock().expect("coalesce queue poisoned");
        for p in queue.pending.drain(..) {
            p.slot.fill(Err(MedKbError::overloaded("server shutting down")));
        }
    }
}

fn dispatch_loop(
    shared: &Shared,
    server: &RelaxServer,
    config: CoalesceConfig,
    metrics: Option<&CoalesceMetrics>,
) {
    loop {
        let drained = {
            let mut queue = shared.queue.lock().expect("coalesce queue poisoned");
            // Sleep until there is work (or shutdown).
            while queue.pending.is_empty() && !queue.shutdown {
                queue = shared.cv.wait(queue).expect("coalesce queue poisoned");
            }
            if queue.pending.is_empty() && queue.shutdown {
                return;
            }
            // Hold the door open for the window so concurrent arrivals
            // join this batch; wake early when the batch fills or the
            // server is shutting down.
            let window_ends = Instant::now() + config.window;
            while queue.pending.len() < config.max_batch && !queue.shutdown {
                let now = Instant::now();
                if now >= window_ends {
                    break;
                }
                let (q, _timeout) = shared
                    .cv
                    .wait_timeout(queue, window_ends - now)
                    .expect("coalesce queue poisoned");
                queue = q;
            }
            std::mem::take(&mut queue.pending)
        };
        serve_batch(server, drained, metrics);
    }
}

/// Run one drained batch: shed dead-on-arrival members, group survivors
/// by `k`, serve each group as a single sharded batch, deliver per-slot.
fn serve_batch(server: &RelaxServer, drained: Vec<Pending>, metrics: Option<&CoalesceMetrics>) {
    let now = Instant::now();
    let mut groups: HashMap<usize, Vec<Pending>> = HashMap::new();
    for p in drained {
        if p.deadline.is_some_and(|d| now >= d) {
            p.slot
                .fill(Err(MedKbError::overloaded("deadline exceeded in coalesce queue")));
            continue;
        }
        groups.entry(p.k).or_default().push(p);
    }
    for (k, members) in groups {
        if let Some(m) = metrics {
            m.batch_size.record(members.len() as u64);
            if members.len() > 1 {
                m.batches.inc();
                m.joined.add(members.len() as u64);
            } else {
                m.singles.inc();
            }
        }
        // The batch deadline is the most permissive member deadline: a
        // `None` member means the batch must be allowed to finish.
        let batch_deadline = members
            .iter()
            .map(|p| p.deadline)
            .reduce(|a, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.max(y)),
                _ => None,
            })
            .flatten();
        let queries: Vec<(ExtConceptId, Option<ContextId>)> =
            members.iter().map(|p| (p.query, p.context)).collect();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(queries.len());
        let results =
            server.serve_concepts_batch_with_deadline(&queries, k, threads, batch_deadline);
        debug_assert_eq!(results.len(), members.len());
        for (p, r) in members.into_iter().zip(results) {
            p.slot.fill(r);
        }
    }
}
