//! A minimal JSON value — parser and string escaping — for the HTTP
//! request bodies (DESIGN.md §16).
//!
//! The vendor policy (no registry access) rules out serde, and the
//! serving path only needs to *read* small request objects; responses are
//! rendered with `format!` like every other JSON emitter in the
//! workspace. The grammar here matches `medkb_obs::validate_json`
//! (numbers, strings with the standard escapes, arrays, objects) with one
//! serving-specific restriction: duplicate object keys are rejected
//! rather than last-wins, so a smuggled `{"k":1,"k":9999}` can't mean
//! different things to different layers.

use std::fmt;

/// One parsed JSON value. Object fields keep insertion order (requests
/// are tiny — linear lookup beats a map allocation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value (with only whitespace around it).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes after JSON value at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (None for missing fields and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (rejects
    /// fractional and negative numbers rather than truncating).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escape a string for embedding in a JSON document (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, b"true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, b"false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, b"null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at offset {pos}")),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8], v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = string(b, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate object key {key:?}"));
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let v = value(b, pos)?;
        fields.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => match b.get(*pos + 1) {
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| "truncated \\u escape".to_string())?;
                    let code = std::str::from_utf8(hex)
                        .ok()
                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                        .ok_or_else(|| "bad \\u escape".to_string())?;
                    // Surrogates would need pairing; the serving protocol
                    // never emits them, so reject rather than mis-decode.
                    let c = char::from_u32(code)
                        .ok_or_else(|| "\\u escape is not a scalar value".to_string())?;
                    out.push(c);
                    *pos += 6;
                }
                Some(&e) => {
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        _ => return Err(format!("bad escape \\{}", e as char)),
                    });
                    *pos += 2;
                }
                None => return Err("truncated escape".into()),
            },
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte {c:#04x} in string"));
            }
            Some(_) => {
                // Multi-byte UTF-8: the input is a &str, so sequences are
                // valid — copy the whole scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digits at offset {pos}"));
    }
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err("leading zeros are not valid JSON".into());
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac {
            return Err("digits required after '.'".into());
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp {
            return Err("digits required in exponent".into());
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n:?}"),
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shaped_objects() {
        let v = Json::parse(r#"{"term": "fever", "context": null, "k": 5}"#).unwrap();
        assert_eq!(v.get("term").and_then(Json::as_str), Some("fever"));
        assert!(v.get("context").unwrap().is_null());
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_duplicate_keys_and_trailing_bytes() {
        assert!(Json::parse(r#"{"k":1,"k":2}"#).is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn rejects_fractional_and_negative_as_u64() {
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["plain", "with \"quotes\"", "tab\there", "nl\nthere", "unicode Δέλτα"] {
            let enc = escape(s);
            assert_eq!(Json::parse(&enc).unwrap().as_str(), Some(s), "{enc}");
        }
    }

    #[test]
    fn display_is_parseable(){
        let v = Json::parse(r#"{"a":[1,2.5,null,true],"b":"x\ny"}"#).unwrap();
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }
}
